/**
 * @file
 * Fuzz harness for IndexCodec::decode, the field that places every
 * sequenced molecule inside the file.  The first input byte selects the
 * codec width; the rest is treated as the (untrusted) read prefix.
 *
 * Properties checked:
 *  - decode never throws or crashes on arbitrary input;
 *  - an accepted index is within maxIndex() and re-encodes to the exact
 *    index field that was decoded;
 *  - strands shorter than the field width are always rejected.
 */

#include <cstdint>
#include <cstdlib>
#include <string>

#include "codec/index_codec.hh"

namespace
{

void
check(bool condition)
{
    if (!condition)
        std::abort();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size == 0)
        return 0;
    const std::size_t width = data[0] % 32 + 1;
    const dnastore::IndexCodec codec(width);
    const std::string s(reinterpret_cast<const char *>(data + 1), size - 1);

    const auto index = codec.decode(s);
    if (s.size() < width) {
        check(!index);
    }
    if (index) {
        check(*index <= codec.maxIndex());
        check(codec.encode(*index) == s.substr(0, width));
    }
    return 0;
}
