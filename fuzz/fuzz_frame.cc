/**
 * @file
 * Fuzz harness for the dnastored wire-protocol frame decoder — the
 * outermost untrusted-input boundary: every byte a client sends lands
 * in server::FrameDecoder before anything else looks at it.
 *
 * Properties checked:
 *  - feed/next never throw or crash on arbitrary byte streams,
 *    including truncated frames, oversized lengths, corrupt CRCs and
 *    version skew;
 *  - a poisoned decoder stays poisoned (Corrupt is sticky) and never
 *    yields frames afterwards;
 *  - every frame the decoder accepts re-encodes byte-identically
 *    through encodeFrame (decode ∘ encode = id on the accepted set);
 *  - buffered() never exceeds one maximal frame's worth of lookahead.
 *
 * The input is split into randomly-sized feed() chunks driven by the
 * input bytes themselves, so the fuzzer explores resumption at every
 * possible partial-header/partial-body boundary.
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "server/protocol.hh"

namespace
{

void
check(bool condition, const char *what)
{
    if (!condition) {
        std::abort(); // surfaced as a crash by the fuzzer / driver
        (void)what;
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using dnastore::server::Frame;
    using dnastore::server::FrameDecoder;

    FrameDecoder decoder;
    std::vector<Frame> frames;
    bool corrupt = false;

    // Chunk sizes come from the tail of the input so the fuzzer can
    // steer where the stream is split; 1 + (byte % 97) keeps chunks
    // small enough to hit partial-header resumption paths often.
    std::size_t offset = 0;
    while (offset < size) {
        const std::uint8_t steer = data[size - 1 - (offset % size)];
        std::size_t chunk = 1 + static_cast<std::size_t>(steer) % 97;
        if (chunk > size - offset)
            chunk = size - offset;
        decoder.feed(data + offset, chunk);
        offset += chunk;

        Frame frame;
        for (;;) {
            const FrameDecoder::Result result = decoder.next(frame);
            if (result == FrameDecoder::Result::Ready) {
                check(!corrupt, "poisoned decoder must not yield frames");
                frames.push_back(frame);
                continue;
            }
            if (result == FrameDecoder::Result::Corrupt)
                corrupt = true;
            break;
        }
        if (corrupt) {
            // Sticky: more input must never un-poison the decoder.
            decoder.feed(data, chunk);
            check(decoder.next(frame) == FrameDecoder::Result::Corrupt,
                  "Corrupt must be sticky across further feeds");
            break;
        }
        check(decoder.buffered() <=
                  dnastore::server::kHeaderSize +
                      dnastore::server::kMaxFrameBody,
              "decoder must not buffer beyond one maximal frame");
    }

    // Round-trip every accepted frame: re-encoding must reproduce a
    // stream the decoder accepts with identical fields.
    std::vector<std::uint8_t> wire;
    for (const Frame &frame : frames)
        check(dnastore::server::encodeFrame(frame, wire),
              "accepted frame must re-encode");
    FrameDecoder again;
    again.feed(wire.data(), wire.size());
    for (const Frame &frame : frames) {
        Frame copy;
        check(again.next(copy) == FrameDecoder::Result::Ready,
              "re-encoded stream must decode");
        check(copy.version == frame.version && copy.type == frame.type &&
                  copy.flags == frame.flags &&
                  copy.request_id == frame.request_id &&
                  copy.body == frame.body,
              "decode(encode(frame)) must be the identity");
    }
    Frame tail;
    check(again.next(tail) == FrameDecoder::Result::NeedMore,
          "re-encoded stream must contain exactly the accepted frames");
    return 0;
}
