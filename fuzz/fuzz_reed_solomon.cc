/**
 * @file
 * Fuzz harness for ReedSolomon errors-and-erasures decoding, the outer
 * code that turns lost molecules into erasures and corrupted molecules
 * into symbol errors.
 *
 * The input selects a geometry (n, k), a message, and an errata plan
 * (error positions/values plus erasure positions).  Properties checked:
 *  - decode never crashes on any codeword, corrupted or random;
 *  - within the guaranteed radius (2*errors + erasures <= n - k) the
 *    decoder MUST recover the original codeword exactly and report ok;
 *  - whenever decode reports ok the result verifies (isCodeword).
 */

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "ecc/reed_solomon.hh"

namespace
{

void
check(bool condition)
{
    if (!condition)
        std::abort();
}

/** Sequential byte reader over the fuzz input. */
struct Input
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    std::uint8_t
    next()
    {
        return pos < size ? data[pos++] : 0;
    }
    bool exhausted() const { return pos >= size; }
};

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size < 2)
        return 0;
    Input in{data, size};

    const std::size_t n = 2 + in.next() % 254;      // [2, 255]
    const std::size_t k = 1 + in.next() % (n - 1);  // [1, n-1]
    const dnastore::ReedSolomon rs(n, k);

    std::vector<std::uint8_t> message(k);
    for (auto &symbol : message)
        symbol = in.next();
    const auto original = rs.encode(message);
    check(rs.isCodeword(original));
    check(rs.message(original) == message);

    // Errata plan: alternate (position, value) error pairs and erasure
    // positions until the input runs dry.
    auto codeword = original;
    std::vector<std::size_t> erasures;
    const std::size_t num_errors = in.next() % (n + 1);
    for (std::size_t e = 0; e < num_errors && !in.exhausted(); ++e) {
        const std::size_t pos = in.next() % n;
        codeword[pos] ^= in.next(); // XOR 0 keeps the symbol intact
    }
    const std::size_t num_erasures = in.next() % (n + 1);
    for (std::size_t e = 0; e < num_erasures && !in.exhausted(); ++e)
        erasures.push_back(in.next() % n);

    // Count the actual damage (deduplicated, erasures excluded).
    std::vector<bool> erased(n, false);
    for (std::size_t pos : erasures)
        erased[pos] = true;
    std::size_t true_errors = 0;
    std::size_t true_erasures = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (erased[i])
            ++true_erasures;
        else if (codeword[i] != original[i])
            ++true_errors;
    }

    const auto result = rs.decode(codeword, erasures);
    if (2 * true_errors + true_erasures <= n - k) {
        check(result.ok);
        check(codeword == original);
        check(rs.message(codeword) == message);
    }
    if (result.ok)
        check(rs.isCodeword(codeword));

    // Arbitrary-garbage codeword: anything goes except a crash.
    std::vector<std::uint8_t> garbage(n);
    for (auto &symbol : garbage)
        symbol = in.next();
    const auto garbage_result = rs.decode(garbage);
    if (garbage_result.ok)
        check(rs.isCodeword(garbage));
    return 0;
}
