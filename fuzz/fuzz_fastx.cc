/**
 * @file
 * Fuzz harness for the FASTQ/FASTA parsers — the boundary where raw
 * sequencer output enters the toolkit (paper Section VIII).
 *
 * Properties checked:
 *  - readFastq/readFasta either parse or throw std::exception; no other
 *    escape (crash, hang, non-std exception) is allowed;
 *  - whatever the parsers accept survives a serialise/re-parse
 *    round-trip unchanged (writer and parser agree on the format).
 */

#include <cstdint>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "dna/fastx.hh"

namespace
{

void
check(bool condition)
{
    if (!condition)
        std::abort();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);

    try {
        std::istringstream in(text);
        const auto records = dnastore::readFastq(in);
        for (const auto &record : records)
            check(record.sequence.size() == record.quality.size());

        // A field can end in '\r' when the raw line ended in "\r\r"; the
        // writer cannot re-emit that unambiguously (the re-parse strips
        // one), so only CR-free records are required to round-trip.
        const bool writer_safe = [&records] {
            for (const auto &record : records)
                if (record.id.find('\r') != std::string::npos ||
                    record.sequence.find('\r') != std::string::npos ||
                    record.quality.find('\r') != std::string::npos)
                    return false;
            return true;
        }();
        if (writer_safe) {
            std::ostringstream out;
            dnastore::writeFastq(out, records);
            std::istringstream again(out.str());
            const auto reparsed = dnastore::readFastq(again);
            check(reparsed.size() == records.size());
            for (std::size_t i = 0; i < records.size(); ++i) {
                check(reparsed[i].id == records[i].id);
                check(reparsed[i].sequence == records[i].sequence);
                check(reparsed[i].quality == records[i].quality);
            }
        }
    } catch (const std::exception &) {
        // Structural errors are the documented reject path.
    }

    try {
        std::istringstream in(text);
        const auto records = dnastore::readFasta(in);

        // The lenient parser accepts sequence bytes ('>', '\r') that the
        // 70-column writer cannot re-emit unambiguously; only writer-safe
        // records are required to round-trip.
        const bool writer_safe = [&records] {
            for (const auto &record : records)
                if (record.sequence.find('>') != std::string::npos ||
                    record.sequence.find('\r') != std::string::npos ||
                    record.id.find('\r') != std::string::npos)
                    return false;
            return true;
        }();
        if (writer_safe) {
            std::ostringstream out;
            dnastore::writeFasta(out, records);
            std::istringstream again(out.str());
            const auto reparsed = dnastore::readFasta(again);
            check(reparsed.size() == records.size());
            for (std::size_t i = 0; i < records.size(); ++i) {
                check(reparsed[i].id == records[i].id);
                check(reparsed[i].sequence == records[i].sequence);
            }
        }
    } catch (const std::exception &) {
    }
    return 0;
}
