/**
 * @file
 * Standalone driver used when the toolchain has no libFuzzer (gcc, or
 * clang without -fsanitize=fuzzer).  Every command-line argument is a
 * corpus file or a directory of corpus files; each file's bytes are fed
 * to LLVMFuzzerTestOneInput once per pass, repeated --runs times (so a
 * 30-second soak can be approximated by a high run count).  Under a
 * libFuzzer build this file is not compiled at all — libFuzzer provides
 * its own main().
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

std::vector<std::uint8_t>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::filesystem::path> files;
    unsigned long runs = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--runs=", 0) == 0) {
            runs = std::stoul(arg.substr(7));
            continue;
        }
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (const auto &entry :
                 std::filesystem::directory_iterator(arg)) {
                if (entry.is_regular_file())
                    files.push_back(entry.path());
            }
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--runs=N] corpus-file-or-dir...\n",
                     argv[0]);
        return 2;
    }

    std::size_t executions = 0;
    for (unsigned long pass = 0; pass < runs; ++pass) {
        for (const auto &file : files) {
            const auto bytes = readFile(file);
            LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
            ++executions;
        }
    }
    std::printf("driver: %zu inputs x %lu passes = %zu executions, no "
                "crashes\n",
                files.size(), runs, executions);
    return 0;
}
