/**
 * @file
 * Fuzz harness for the strand byte/number codecs — the innermost
 * untrusted-input boundary: every sequenced read eventually lands in
 * strand::tryToBytes / strand::tryDecodeNumber.
 *
 * Properties checked:
 *  - tryToBytes/tryDecodeNumber never throw or crash on arbitrary bytes;
 *  - an accepted strand round-trips exactly (fromBytes/encodeNumber);
 *  - acceptance implies the strand was valid ACGT of the right shape;
 *  - reverseComplement is an involution on accepted strands.
 */

#include <cstdint>
#include <cstdlib>
#include <string>

#include "dna/base.hh"
#include "dna/strand.hh"

namespace
{

void
check(bool condition, const char *what)
{
    if (!condition) {
        std::abort(); // surfaced as a crash by the fuzzer / driver
        (void)what;
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string s(reinterpret_cast<const char *>(data), size);

    // The codecs accept soft-masked (lowercase) bases but re-serialize
    // canonically in uppercase, so round-trips are asserted against the
    // canonical form of the input.
    std::string canonical = s;
    bool decodable = true;
    for (char &c : canonical) {
        const std::uint8_t code = dnastore::charToCode(c);
        if (code == 0xff) {
            decodable = false;
            break;
        }
        c = dnastore::baseToChar(code);
    }

    const auto bytes = dnastore::strand::tryToBytes(s);
    check(bytes.has_value() == (decodable && s.size() % 4 == 0),
          "tryToBytes acceptance must match shape + alphabet");
    if (bytes) {
        check(dnastore::strand::isValid(canonical),
              "canonicalized accepted input must be valid ACGT");
        check(dnastore::strand::fromBytes(*bytes) == canonical,
              "fromBytes(tryToBytes(s)) != canonical(s)");
        const auto rc = dnastore::strand::reverseComplement(canonical);
        check(dnastore::strand::reverseComplement(rc) == canonical,
              "reverseComplement must be an involution");
    }

    const auto value = dnastore::strand::tryDecodeNumber(s);
    check(value.has_value() == (decodable && s.size() <= 32),
          "tryDecodeNumber acceptance must match shape + alphabet");
    if (value) {
        check(dnastore::strand::encodeNumber(*value, s.size()) == canonical,
              "encodeNumber(tryDecodeNumber(s)) != canonical(s)");
    }

    // Statistics helpers must tolerate anything the codecs accepted or
    // rejected alike.
    (void)dnastore::strand::gcContent(s);
    (void)dnastore::strand::maxHomopolymerRun(s);
    return 0;
}
