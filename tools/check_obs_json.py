#!/usr/bin/env python3
"""Validate the observability artifacts one pipeline run produces.

Usage:
    tools/check_obs_json.py --metrics run_report.json --trace trace.json
                            [--manifest manifest.json]
                            [--fsck fsck_report.json]
                            [--min-counters N] [--min-depth D]

Checks, without any third-party dependency:
  * the metrics file parses, carries schema `dnastore.run_report` at a
    known schema_version, and contains every required section
    (run, stages with per-stage latency, pipeline, faults,
    recovery_attempts, errors, metrics);
  * schema_version >= 2 reports additionally carry the attribution
    layer: per-stage cpu_seconds + utilization, stages.total_cpu_seconds,
    a contention section (per-mutex wait histograms with consistent
    buckets) and an alloc section (per-stage sampled/estimated byte and
    allocation counts); when the thread pool ran tasks, the queue-wait
    histogram must be present.  Version 1 documents skip these checks,
    so old reports keep validating;
  * the metrics section holds at least --min-counters distinct module
    counters/histograms and every fault counter;
  * the trace file is a well-formed Chrome trace_event document whose
    spans nest at least --min-depth levels deep (computed from
    timestamp containment per thread, exactly as chrome://tracing and
    Perfetto render it);
  * the manifest file is a valid `dnastore.archive_manifest` document:
    schema + version, structurally consistent objects/shards (unique
    names and primer pair ids, shard sizes summing to object sizes) and
    a crc32 field matching the CRC-32 of the raw payload bytes;
  * the fsck file is a valid `dnastore.fsck_report` document: schema +
    version, a known status, findings with known kinds/severities, and
    clean/healthy/repaired_count fields consistent with those findings.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys
import zlib

REQUIRED_SECTIONS = (
    "run",
    "stages",
    "pipeline",
    "faults",
    "recovery_attempts",
    "errors",
    "metrics",
)

REQUIRED_STAGES = (
    "encoding",
    "simulation",
    "clustering",
    "reconstruction",
    "decoding",
)

REQUIRED_FAULT_KEYS = (
    "dropped_strands",
    "truncated_reads",
    "elongated_reads",
    "corrupted_indices",
    "duplicate_conflicts",
    "garbage_reads",
    "emptied_clusters",
    "merged_clusters",
    "total",
)


def fail(message):
    print(f"check_obs_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_metrics_v2(path, doc):
    """Attribution checks for schema_version >= 2 run reports."""
    stages = doc["stages"]
    for stage in REQUIRED_STAGES:
        entry = stages[stage]
        for field in ("cpu_seconds", "utilization"):
            value = entry.get(field)
            if not isinstance(value, (int, float)):
                fail(f"{path}: stage {stage!r} lacks numeric {field} "
                     "(required at schema_version >= 2)")
            if value < 0:
                fail(f"{path}: stage {stage!r} {field} is negative")
    if not isinstance(stages.get("total_cpu_seconds"), (int, float)):
        fail(f"{path}: stages.total_cpu_seconds missing (v2)")

    contention = doc.get("contention")
    if not isinstance(contention, dict):
        fail(f"{path}: contention section missing (v2)")
    if not isinstance(contention.get("enabled"), bool):
        fail(f"{path}: contention.enabled missing or not a boolean")
    sample = contention.get("sample_every")
    if not isinstance(sample, int) or sample < 1:
        fail(f"{path}: contention.sample_every must be an integer >= 1")
    mutexes = contention.get("mutexes")
    if not isinstance(mutexes, dict):
        fail(f"{path}: contention.mutexes missing or not an object")
    for name, mutex in mutexes.items():
        counts = mutex.get("counts")
        bounds = mutex.get("upper_bounds")
        if not isinstance(counts, list) or not isinstance(bounds, list) \
                or len(counts) != len(bounds) + 1:
            fail(f"{path}: contention mutex {name!r} bucket/bound "
                 "count mismatch")
        if sum(counts) != mutex.get("count"):
            fail(f"{path}: contention mutex {name!r} counts do not "
                 "sum to count")
        if not isinstance(mutex.get("sum_seconds"), (int, float)):
            fail(f"{path}: contention mutex {name!r} lacks sum_seconds")

    alloc = doc.get("alloc")
    if not isinstance(alloc, dict):
        fail(f"{path}: alloc section missing (v2)")
    if not isinstance(alloc.get("enabled"), bool):
        fail(f"{path}: alloc.enabled missing or not a boolean")
    sample = alloc.get("sample_every")
    if not isinstance(sample, int) or sample < 1:
        fail(f"{path}: alloc.sample_every must be an integer >= 1")
    alloc_stages = alloc.get("stages")
    if not isinstance(alloc_stages, dict):
        fail(f"{path}: alloc.stages missing or not an object")
    for tag, entry in alloc_stages.items():
        for field in ("estimated_allocs", "estimated_bytes",
                      "sampled_allocs", "sampled_bytes"):
            if not isinstance(entry.get(field), int):
                fail(f"{path}: alloc stage {tag!r} lacks integer {field}")
        if entry["sampled_allocs"] > entry["estimated_allocs"]:
            fail(f"{path}: alloc stage {tag!r} sampled_allocs exceeds "
                 "estimated_allocs")

    # If the thread pool executed work during this run, its queue-wait
    # attribution must have been recorded alongside.
    counters = doc["metrics"]["counters"]
    if counters.get("util.thread_pool.tasks_total", 0) > 0 and \
            "util.thread_pool.queue_wait_seconds" \
            not in doc["metrics"]["histograms"]:
        fail(f"{path}: thread pool ran tasks but "
             "util.thread_pool.queue_wait_seconds histogram is absent")


def check_metrics(path, min_counters):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "dnastore.run_report":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'dnastore.run_report'")
    if not isinstance(doc.get("schema_version"), int):
        fail(f"{path}: schema_version missing or not an integer")
    for section in REQUIRED_SECTIONS:
        if section not in doc:
            fail(f"{path}: missing section {section!r}")

    stages = doc["stages"]
    for stage in REQUIRED_STAGES:
        entry = stages.get(stage)
        if not isinstance(entry, dict) or "seconds" not in entry \
                or "status" not in entry:
            fail(f"{path}: stage {stage!r} lacks status/seconds")
        if not isinstance(entry["seconds"], (int, float)):
            fail(f"{path}: stage {stage!r} seconds is not a number")
    if "total_seconds" not in stages:
        fail(f"{path}: stages.total_seconds missing")

    faults = doc["faults"]
    for key in REQUIRED_FAULT_KEYS:
        if key not in faults:
            fail(f"{path}: faults.{key} missing")

    metrics = doc["metrics"]
    for kind in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(kind), dict):
            fail(f"{path}: metrics.{kind} missing or not an object")
    names = list(metrics["counters"]) + list(metrics["histograms"])
    modules = {name.split(".")[0] for name in names}
    if len(names) < min_counters:
        fail(f"{path}: only {len(names)} counters/histograms, "
             f"need >= {min_counters}")
    for name in names:
        if "." not in name:
            fail(f"{path}: metric {name!r} does not follow "
                 "module.noun_unit naming")
    for hist in metrics["histograms"].values():
        if len(hist["counts"]) != len(hist["upper_bounds"]) + 1:
            fail(f"{path}: histogram bucket/bound count mismatch")
        if sum(hist["counts"]) != hist["count"]:
            fail(f"{path}: histogram counts do not sum to count")
    if doc["schema_version"] >= 2:
        check_metrics_v2(path, doc)
    print(f"check_obs_json: {path}: {len(names)} counters/histograms "
          f"across modules {sorted(modules)}, "
          f"schema_version {doc['schema_version']}")


def trace_depth(events):
    """Maximum nesting depth from per-thread timestamp containment."""
    depth = 0
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event)
    for spans in by_tid.values():
        # Parents sort before children: earlier start, longer on ties.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for span in spans:
            end = span["ts"] + span["dur"]
            while stack and span["ts"] >= stack[-1]:
                stack.pop()
            stack.append(end)
            depth = max(depth, len(stack))
    return depth


def check_trace(path, min_depth):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    for event in events:
        for field in ("name", "ph", "ts", "dur", "pid", "tid"):
            if field not in event:
                fail(f"{path}: event lacks field {field!r}: {event}")
        if event["ph"] != "X":
            fail(f"{path}: unexpected event phase {event['ph']!r}")
        if "/" not in event["name"]:
            fail(f"{path}: span {event['name']!r} does not follow "
                 "module/what naming")
    depth = trace_depth(events)
    if depth < min_depth:
        fail(f"{path}: span nesting depth {depth} < required {min_depth}")
    print(f"check_obs_json: {path}: {len(events)} events, "
          f"max nesting depth {depth}")


def check_manifest(path):
    with open(path, "rb") as handle:
        raw = handle.read()
    doc = json.loads(raw)

    if doc.get("schema") != "dnastore.archive_manifest":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'dnastore.archive_manifest'")
    if not isinstance(doc.get("schema_version"), int):
        fail(f"{path}: schema_version missing or not an integer")
    if not isinstance(doc.get("crc32"), int):
        fail(f"{path}: crc32 missing or not an integer")
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        fail(f"{path}: payload missing or not an object")

    # The writer emits a canonical document, so the payload's raw bytes
    # sit verbatim between '"payload":' and ',"schema"'; the stored CRC
    # must match those exact bytes.
    start = raw.find(b'"payload":')
    end = raw.rfind(b',"schema"')
    if start < 0 or end < 0 or end <= start:
        fail(f"{path}: not a canonical manifest document")
    payload_bytes = raw[start + len(b'"payload":'):end]
    actual = zlib.crc32(payload_bytes) & 0xFFFFFFFF
    if actual != doc["crc32"]:
        fail(f"{path}: payload CRC-32 is {actual:#010x}, "
             f"manifest claims {doc['crc32']:#010x}")

    params = payload.get("params")
    if not isinstance(params, dict):
        fail(f"{path}: payload.params missing")
    for key in ("codec", "primer", "primer_seed", "max_shard_bytes"):
        if key not in params:
            fail(f"{path}: payload.params.{key} missing")
    objects = payload.get("objects")
    if not isinstance(objects, list):
        fail(f"{path}: payload.objects missing or not an array")

    names, pair_ids = set(), set()
    total_shards = 0
    for obj in objects:
        name = obj.get("name")
        if not name or name in names:
            fail(f"{path}: missing or duplicate object name {name!r}")
        names.add(name)
        shards = obj.get("shards")
        if not isinstance(shards, list) or not shards:
            fail(f"{path}: object {name!r} has no shards")
        sharded = 0
        for shard in shards:
            pair = shard.get("pair_id")
            if not isinstance(pair, int) or pair == 0:
                fail(f"{path}: object {name!r} shard has bad pair_id "
                     f"{pair!r} (0 is reserved for the manifest)")
            if pair in pair_ids:
                fail(f"{path}: primer pair {pair} addresses two shards")
            pair_ids.add(pair)
            sharded += shard.get("size_bytes", 0)
            total_shards += 1
        if sharded != obj.get("size_bytes"):
            fail(f"{path}: object {name!r} shard sizes sum to {sharded}, "
                 f"object claims {obj.get('size_bytes')}")
    if pair_ids != set(range(1, total_shards + 1)):
        fail(f"{path}: shard pair_ids are not the contiguous block "
             f"[1, {total_shards}] (loaders size per-pair tables "
             f"from that invariant)")
    print(f"check_obs_json: {path}: {len(objects)} objects, "
          f"{total_shards} shards, payload CRC verified")


FSCK_FINDING_KINDS = {
    "stale_temp_file",
    "orphan_pool_record",
    "malformed_pool_record",
    "strand_count_mismatch",
    "missing_manifest",
    "corrupt_manifest",
    "missing_pool",
    "unreadable_pool",
    "missing_dna_manifest",
    "stale_dna_manifest",
    "undecodable_dna_manifest",
    "shard_undecodable",
    "object_crc_mismatch",
}

FSCK_SEVERITIES = {"note", "warning", "error"}

FSCK_STATUSES = {
    "ok",
    "not-found",
    "already-exists",
    "invalid-argument",
    "io-error",
    "corrupt-manifest",
    "corrupt-pool",
    "encode-failed",
    "decode-failed",
}


def check_fsck(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "dnastore.fsck_report":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'dnastore.fsck_report'")
    if not isinstance(doc.get("schema_version"), int):
        fail(f"{path}: schema_version missing or not an integer")
    if doc.get("status") not in FSCK_STATUSES:
        fail(f"{path}: unknown status {doc.get('status')!r}")
    for field in ("clean", "healthy", "deep", "repair"):
        if not isinstance(doc.get(field), bool):
            fail(f"{path}: {field} missing or not a boolean")
    checked = doc.get("checked")
    if not isinstance(checked, dict):
        fail(f"{path}: checked section missing")
    for field in ("objects", "pool_records", "shards"):
        if not isinstance(checked.get(field), int):
            fail(f"{path}: checked.{field} missing or not an integer")

    findings = doc.get("findings")
    if not isinstance(findings, list):
        fail(f"{path}: findings missing or not an array")
    repaired = 0
    has_error = False
    for finding in findings:
        if finding.get("kind") not in FSCK_FINDING_KINDS:
            fail(f"{path}: unknown finding kind {finding.get('kind')!r}")
        if finding.get("severity") not in FSCK_SEVERITIES:
            fail(f"{path}: unknown finding severity "
                 f"{finding.get('severity')!r}")
        for field in ("repairable", "repaired"):
            if not isinstance(finding.get(field), bool):
                fail(f"{path}: finding.{field} missing or not a boolean")
        if finding["repaired"] and not finding["repairable"]:
            fail(f"{path}: finding claims repaired but not repairable")
        repaired += finding["repaired"]
        has_error = has_error or finding["severity"] == "error"

    # The summary booleans must agree with the findings they summarise.
    if doc["clean"] != (not findings):
        fail(f"{path}: clean={doc['clean']} but {len(findings)} findings")
    if doc["healthy"] != (not has_error):
        fail(f"{path}: healthy={doc['healthy']} disagrees with "
             "error-severity findings")
    if doc.get("repaired_count") != repaired:
        fail(f"{path}: repaired_count={doc.get('repaired_count')!r} but "
             f"{repaired} findings marked repaired")
    print(f"check_obs_json: {path}: status {doc['status']}, "
          f"{len(findings)} findings, {repaired} repaired")


SERVER_COUNTER_KEYS = (
    "batched_gets",
    "batches",
    "coalesced_gets",
    "rejected_draining",
    "rejected_overload",
    "rejected_quota",
    "requests",
)


def check_server(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "dnastore.server_report":
        fail(f"{path}: schema is {doc.get('schema')!r}, "
             "expected 'dnastore.server_report'")
    if not isinstance(doc.get("schema_version"), int):
        fail(f"{path}: schema_version missing or not an integer")
    info = doc.get("info")
    if not isinstance(info, dict):
        fail(f"{path}: info section missing or not an object")
    for key, value in info.items():
        if not isinstance(value, str):
            fail(f"{path}: info.{key} must be a string")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: counters section missing or not an object")
    for key in SERVER_COUNTER_KEYS:
        value = counters.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counters.{key} missing or not a "
                 "non-negative integer")
    # Coalesced and batched gets are both subsets of admitted requests.
    if counters["coalesced_gets"] > counters["requests"]:
        fail(f"{path}: coalesced_gets exceeds requests")
    if counters["batches"] > counters["batched_gets"] and \
            counters["batched_gets"] > 0:
        fail(f"{path}: more batches than batched gets")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: metrics section missing or not an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"{path}: metrics.{section} missing or not an object")
    # Cross-check: the scheduler's lifetime counter and the obs counter
    # delta describe the same stream of admitted requests.
    obs_requests = metrics["counters"].get("server.requests_total")
    if obs_requests is not None and obs_requests != counters["requests"]:
        fail(f"{path}: server.requests_total={obs_requests} disagrees "
             f"with counters.requests={counters['requests']}")
    for name, gauge in metrics["gauges"].items():
        if not isinstance(gauge, dict) or "value" not in gauge:
            fail(f"{path}: gauge {name!r} lacks a value")
    for name, hist in metrics["histograms"].items():
        counts = hist.get("counts")
        bounds = hist.get("upper_bounds")
        if not isinstance(counts, list) or not isinstance(bounds, list) \
                or len(counts) != len(bounds) + 1:
            fail(f"{path}: histogram {name!r} bucket/bound mismatch")
        if sum(counts) != hist.get("count"):
            fail(f"{path}: histogram {name!r} counts do not sum")
    print(f"check_obs_json: {path}: {counters['requests']} requests, "
          f"{counters['coalesced_gets']} coalesced, "
          f"{counters['batches']} batches")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="run report JSON to validate")
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument("--manifest",
                        help="archive manifest JSON to validate")
    parser.add_argument("--fsck", help="fsck report JSON to validate")
    parser.add_argument("--server",
                        help="dnastored server report JSON to validate")
    args_given = ("--metrics", "--trace", "--manifest", "--fsck",
                  "--server")
    parser.add_argument("--min-counters", type=int, default=10)
    parser.add_argument("--min-depth", type=int, default=4)
    args = parser.parse_args()
    if not args.metrics and not args.trace and not args.manifest \
            and not args.fsck and not args.server:
        parser.error("nothing to do: pass " + ", ".join(args_given))
    if args.metrics:
        check_metrics(args.metrics, args.min_counters)
    if args.trace:
        check_trace(args.trace, args.min_depth)
    if args.manifest:
        check_manifest(args.manifest)
    if args.fsck:
        check_fsck(args.fsck)
    if args.server:
        check_server(args.server)
    print("check_obs_json: OK")


if __name__ == "__main__":
    main()
