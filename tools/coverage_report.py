#!/usr/bin/env python3
"""Per-module line-coverage table with a checked-in ratchet.

Consumes coverage data from an instrumented build (DNASTORE_COVERAGE=ON)
after the test suite has run, aggregates line coverage per module
(src/<module>/), prints a table, and enforces tools/coverage_ratchet.txt:
every module (and the total) must stay at or above its recorded floor,
so coverage can only go up.

Two collection modes:
  gcov  GCC builds: walks BUILD_DIR for .gcda files and parses
        `gcov --json-format --stdout` output, merging per-line execution
        counts across translation units (a header's inline code is
        instrumented in many TUs).
  llvm  Clang builds: merges .profraw profiles with llvm-profdata and
        reads `llvm-cov export -summary-only` JSON over the test
        binaries.

Exit status: 0 when all floors hold (after printing the table), 1 when
a module fell below its floor, 2 on usage/environment errors.
"""

import argparse
import glob
import gzip
import json
import os
import subprocess
import sys


def run(cmd, **kwargs):
    result = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, **kwargs)
    if result.returncode != 0:
        sys.stderr.write(
            f"coverage_report: {' '.join(cmd[:2])} failed:\n"
            + result.stderr.decode(errors="replace")[:2000])
        sys.exit(2)
    return result.stdout


def collect_gcov(build_dir, src_root):
    """Per-file {line: max_count} maps from every .gcda in the build."""
    per_file = {}
    gcda = [os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(build_dir)
            for name in names if name.endswith(".gcda")]
    if not gcda:
        sys.stderr.write(
            "coverage_report: no .gcda files found; build with "
            "-DDNASTORE_COVERAGE=ON and run the tests first\n")
        sys.exit(2)
    for path in gcda:
        out = run(["gcov", "--json-format", "--stdout", path],
                  cwd=os.path.dirname(path))
        # --stdout emits one JSON document per .gcno processed.
        for line in out.splitlines():
            if not line.startswith(b"{"):
                continue
            doc = json.loads(line)
            for entry in doc.get("files", []):
                source = entry["file"]
                if not os.path.isabs(source):
                    source = os.path.normpath(
                        os.path.join(os.path.dirname(path), source))
                if not source.startswith(src_root + os.sep):
                    continue
                rel = os.path.relpath(source, src_root)
                lines = per_file.setdefault(rel, {})
                for rec in entry.get("lines", []):
                    num = rec["line_number"]
                    lines[num] = max(lines.get(num, 0), rec["count"])
    return per_file


def collect_llvm(build_dir, src_root):
    """Same shape as collect_gcov, from llvm-cov export JSON."""
    profraw = glob.glob(os.path.join(build_dir, "**", "*.profraw"),
                        recursive=True)
    if not profraw:
        sys.stderr.write(
            "coverage_report: no .profraw files; run ctest with "
            "LLVM_PROFILE_FILE set (see tools/coverage.sh)\n")
        sys.exit(2)
    profdata = os.path.join(build_dir, "coverage.profdata")
    run(["llvm-profdata", "merge", "-sparse", "-o", profdata] + profraw)

    binaries = []
    for dirpath, _, names in os.walk(build_dir):
        for name in names:
            path = os.path.join(dirpath, name)
            if (os.access(path, os.X_OK) and not os.path.islink(path)
                    and "CMakeFiles" not in path
                    and (name.startswith("test_") or name == "dnastore")):
                binaries.append(path)
    if not binaries:
        sys.stderr.write("coverage_report: no instrumented binaries\n")
        sys.exit(2)
    cmd = ["llvm-cov", "export", "-instr-profile", profdata,
           binaries[0]]
    for extra in binaries[1:]:
        cmd += ["-object", extra]
    doc = json.loads(run(cmd))

    per_file = {}
    for data in doc.get("data", []):
        for entry in data.get("files", []):
            source = entry["filename"]
            if not source.startswith(src_root + os.sep):
                continue
            rel = os.path.relpath(source, src_root)
            lines = per_file.setdefault(rel, {})
            # Segment format: [line, col, count, has_count, is_entry, ...]
            for seg in entry.get("segments", []):
                line, _, count, has_count = seg[0], seg[1], seg[2], seg[3]
                if has_count:
                    lines[line] = max(lines.get(line, 0), count)
    return per_file


def module_of(rel_path):
    return rel_path.split(os.sep)[0] if os.sep in rel_path else "(top)"


def aggregate(per_file):
    modules = {}
    for rel, lines in per_file.items():
        total, covered = len(lines), sum(1 for c in lines.values() if c > 0)
        stats = modules.setdefault(module_of(rel), [0, 0])
        stats[0] += total
        stats[1] += covered
    return modules


def load_ratchet(path):
    floors = {}
    if not os.path.exists(path):
        return floors
    with open(path) as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            name, value = line.split()
            floors[name] = float(value)
    return floors


def save_ratchet(path, floors):
    with open(path, "w") as fh:
        fh.write(
            "# Per-module line-coverage floors (percent), enforced by\n"
            "# tools/coverage.sh: measured coverage must be >= the floor,\n"
            "# so coverage can only go up.  Regenerate with\n"
            "# `tools/coverage.sh --update` after genuinely raising\n"
            "# coverage; floors carry a small slack below the measured\n"
            "# value to absorb gcov/llvm-cov accounting differences.\n")
        for name in sorted(floors):
            fh.write(f"{name} {floors[name]:.1f}\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["gcov", "llvm"], required=True)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--src-root", required=True,
                        help="absolute path of the src/ directory")
    parser.add_argument("--ratchet", required=True)
    parser.add_argument("--update", action="store_true",
                        help="raise floors to the measured values")
    parser.add_argument("--slack", type=float, default=2.0,
                        help="floor slack (percentage points) on --update")
    args = parser.parse_args()

    src_root = os.path.abspath(args.src_root)
    collect = collect_gcov if args.mode == "gcov" else collect_llvm
    modules = aggregate(collect(os.path.abspath(args.build_dir), src_root))

    total = [sum(m[0] for m in modules.values()),
             sum(m[1] for m in modules.values())]
    floors = load_ratchet(args.ratchet)

    def pct(stats):
        return 100.0 * stats[1] / stats[0] if stats[0] else 100.0

    failures = []
    print(f"{'module':<16} {'lines':>7} {'covered':>8} {'%':>6}  floor")
    for name in sorted(modules):
        stats = modules[name]
        floor = floors.get(name)
        measured = pct(stats)
        mark = ""
        if floor is not None and measured < floor:
            failures.append((name, measured, floor))
            mark = "  << below floor"
        floor_text = f"{floor:.1f}" if floor is not None else "-"
        print(f"{name:<16} {stats[0]:>7} {stats[1]:>8} "
              f"{measured:>6.1f}  {floor_text}{mark}")
    measured_total = pct(total)
    floor = floors.get("total")
    mark = ""
    if floor is not None and measured_total < floor:
        failures.append(("total", measured_total, floor))
        mark = "  << below floor"
    floor_text = f"{floor:.1f}" if floor is not None else "-"
    print(f"{'total':<16} {total[0]:>7} {total[1]:>8} "
          f"{measured_total:>6.1f}  {floor_text}{mark}")

    if args.update:
        for name, stats in modules.items():
            candidate = max(0.0, pct(stats) - args.slack)
            floors[name] = max(floors.get(name, 0.0), candidate)
        floors["total"] = max(floors.get("total", 0.0),
                              max(0.0, measured_total - args.slack))
        save_ratchet(args.ratchet, floors)
        print(f"coverage_report: ratchet updated: {args.ratchet}")
        return 0

    if failures:
        for name, measured, floor in failures:
            sys.stderr.write(
                f"coverage_report: {name} coverage {measured:.1f}% fell "
                f"below the ratchet floor {floor:.1f}%\n")
        return 1
    print("coverage_report: all ratchet floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
