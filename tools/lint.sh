#!/usr/bin/env bash
# Lint runner for the DNA storage toolkit.
#
# Usage:
#   tools/lint.sh [--strict] [--build-dir DIR]    run clang-tidy over all
#                                                 translation units
#   tools/lint.sh --format-check [--strict]       verify .clang-format
#                                                 compliance (no rewrite)
#   tools/lint.sh --format                        reformat the tree in place
#   tools/lint.sh --seed-audit                    grep for ad-hoc randomness
#                                                 outside src/util/random
#                                                 (src, tools, bench,
#                                                 examples, tests, fuzz)
#   tools/lint.sh --dnalint [--strict]            build and run the
#                                                 project-contract checker
#                                                 (rules R1-R11) plus the
#                                                 header self-containment
#                                                 target; findings are
#                                                 also written to
#                                                 BUILD_DIR/dnalint-findings.txt
#                                                 and, as SARIF 2.1.0, to
#                                                 BUILD_DIR/dnalint.sarif
#                                                 (validated with
#                                                 tools/check_sarif.py)
#
# clang-tidy needs a compile_commands.json; the script configures one in
# BUILD_DIR (default build-tidy; --dnalint uses build-dnalint).
#
# Tool discovery: $CLANG_TIDY / $CLANG_FORMAT env vars win, then
# unversioned names, then versioned names (newest first).  Without
# --strict a missing tool is a SKIP (exit 0) so developer machines
# without LLVM stay usable; CI passes --strict so a missing tool fails.

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

MODE="tidy"
STRICT=0
BUILD_DIR=""

while [ $# -gt 0 ]; do
    case "$1" in
        --format-check) MODE="format-check" ;;
        --format) MODE="format" ;;
        --seed-audit) MODE="seed-audit" ;;
        --dnalint) MODE="dnalint" ;;
        --strict) STRICT=1 ;;
        --build-dir)
            shift
            BUILD_DIR="${1:?--build-dir needs an argument}"
            ;;
        -h | --help)
            sed -n '2,28p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "lint.sh: unknown argument: $1" >&2
            exit 2
            ;;
    esac
    shift
done

find_tool() {
    # $1: env override value (may be empty), $2: base name
    if [ -n "$1" ] && command -v "$1" > /dev/null 2>&1; then
        echo "$1"
        return 0
    fi
    if command -v "$2" > /dev/null 2>&1; then
        echo "$2"
        return 0
    fi
    for ver in 20 19 18 17 16 15 14; do
        if command -v "$2-$ver" > /dev/null 2>&1; then
            echo "$2-$ver"
            return 0
        fi
    done
    return 1
}

skip_or_fail() {
    # $1: tool name
    if [ "$STRICT" -eq 1 ]; then
        echo "lint.sh: ERROR: $1 not found (required with --strict)" >&2
        exit 1
    fi
    echo "lint.sh: SKIP: $1 not found on this machine"
    exit 0
}

# All first-party C++ sources and headers.
cxx_files() {
    find src tools bench examples tests fuzz \
        \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' -o -name '*.h' \) \
        -type f 2> /dev/null | sort
}

# Translation units only (for clang-tidy).
cxx_tus() {
    cxx_files | grep -E '\.(cc|cpp)$'
}

# Per-mode build-dir defaults, unless --build-dir was given.
if [ -z "$BUILD_DIR" ]; then
    case "$MODE" in
        dnalint) BUILD_DIR="build-dnalint" ;;
        *) BUILD_DIR="build-tidy" ;;
    esac
fi

case "$MODE" in
    dnalint)
        # Project-contract checker (R1-R11) plus the generated header
        # self-containment target (R3's enforcement mechanism).  Only
        # needs CMake and the C++ toolchain, so it runs everywhere.
        # Bench TUs stay ON so the call-graph rules see every
        # first-party translation unit CI compiles.  The configure step
        # is skipped when a compile database already exists (CI caches
        # BUILD_DIR keyed on the CMake files; incremental builds below
        # stay correct either way).
        if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
            cmake -B "$BUILD_DIR" -S . \
                -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
                -DDNASTORE_BUILD_TESTS=OFF \
                -DDNASTORE_BUILD_BENCH=ON \
                -DDNASTORE_BUILD_EXAMPLES=OFF > /dev/null || exit 1
        fi
        if ! cmake --build "$BUILD_DIR" --target dnalint \
            -j "$(nproc)" > /dev/null; then
            echo "lint.sh: dnalint failed to build" >&2
            exit 1
        fi
        if ! cmake --build "$BUILD_DIR" --target header_selfcontained \
            -j "$(nproc)"; then
            echo "lint.sh: [R3] header self-containment build FAILED" >&2
            exit 1
        fi
        # Keep a copy of the findings so CI can attach them as an
        # artifact when the job fails (pipefail preserves dnalint's
        # exit status through the tee), and a SARIF mirror for code
        # scanning upload.
        set -o pipefail
        "$BUILD_DIR/tools/dnalint" --root . -p "$BUILD_DIR" \
            --sarif "$BUILD_DIR/dnalint.sarif" 2>&1 |
            tee "$BUILD_DIR/dnalint-findings.txt"
        lint_status=$?
        if ! python3 tools/check_sarif.py "$BUILD_DIR/dnalint.sarif"; then
            echo "lint.sh: dnalint SARIF output failed validation" >&2
            exit 1
        fi
        if [ "$lint_status" -eq 0 ]; then
            echo "lint.sh: dnalint OK"
            exit 0
        fi
        echo "lint.sh: dnalint reported findings" >&2
        exit 1
        ;;

    seed-audit)
        # Every stochastic component must draw from the seeded Rng in
        # src/util/random so experiments reproduce from one 64-bit seed.
        # tools/dnalint is excluded: its R5 rule definitions name the
        # banned identifiers in comments and string literals, which this
        # grep cannot tell apart from code (the token-level audit in
        # `tools/lint.sh --dnalint` still covers those files).
        matches="$(grep -rn \
            -e 'std::rand\b' -e '\bsrand(' -e 'time(NULL)' \
            -e 'time(nullptr)' -e 'std::mt19937' -e 'random_device' \
            --include='*.cc' --include='*.hh' --include='*.cpp' \
            --include='*.h' \
            src tools bench examples tests fuzz 2> /dev/null |
            grep -v 'src/util/random' | grep -v 'tools/dnalint' |
            grep -v 'tests/tools' || true)"
        if [ -n "$matches" ]; then
            echo "lint.sh: ad-hoc randomness outside src/util/random:" >&2
            echo "$matches" >&2
            exit 1
        fi
        echo "lint.sh: seed audit OK (all randomness routed through Rng)"
        exit 0
        ;;

    format | format-check)
        CLANG_FORMAT_BIN="$(find_tool "${CLANG_FORMAT:-}" clang-format)" ||
            skip_or_fail clang-format
        if [ "$MODE" = "format" ]; then
            cxx_files | xargs "$CLANG_FORMAT_BIN" -i
            echo "lint.sh: reformatted $(cxx_files | wc -l) files"
            exit 0
        fi
        if cxx_files | xargs "$CLANG_FORMAT_BIN" --dry-run -Werror; then
            echo "lint.sh: format check OK"
            exit 0
        fi
        echo "lint.sh: format check FAILED (run tools/lint.sh --format)" >&2
        exit 1
        ;;

    tidy)
        CLANG_TIDY_BIN="$(find_tool "${CLANG_TIDY:-}" clang-tidy)" ||
            skip_or_fail clang-tidy
        if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
            cmake -B "$BUILD_DIR" -S . \
                -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
                -DDNASTORE_STRICT=OFF > /dev/null || exit 1
        fi
        status=0
        for tu in $(cxx_tus); do
            # Fuzz TUs are not in the compile database unless DNASTORE_FUZZ
            # was on; pass explicit flags for them.
            case "$tu" in
                fuzz/*)
                    "$CLANG_TIDY_BIN" --quiet "$tu" -- \
                        -std=c++20 -Isrc -Ifuzz || status=1
                    ;;
                *)
                    "$CLANG_TIDY_BIN" --quiet -p "$BUILD_DIR" "$tu" ||
                        status=1
                    ;;
            esac
        done
        if [ "$status" -eq 0 ]; then
            echo "lint.sh: clang-tidy OK"
        else
            echo "lint.sh: clang-tidy reported findings" >&2
        fi
        exit "$status"
        ;;
esac
