#!/usr/bin/env python3
"""Structural validator for dnalint's SARIF 2.1.0 output.

The container has no `jsonschema` package and CI must not hit the
network, so this checks the invariants GitHub code scanning actually
relies on instead of validating against the full schema:

  * top level: $schema pointing at sarif-schema-2.1.0, version "2.1.0",
    a non-empty `runs` array;
  * each run: tool.driver.name, a rules array of {id, shortDescription};
  * each result: ruleId (declared in the driver's rules), level,
    message.text, and — when locations are present — a physicalLocation
    with a relative artifactLocation.uri and a positive startLine.

Usage: check_sarif.py <file.sarif>     (exit 0 = valid, 1 = not)
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_sarif: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def check_run(run: dict) -> None:
    driver = run.get("tool", {}).get("driver", {})
    expect(driver.get("name") == "dnalint",
           f"tool.driver.name is {driver.get('name')!r}, want 'dnalint'")
    rules = driver.get("rules")
    expect(isinstance(rules, list) and rules,
           "tool.driver.rules missing or empty")
    rule_ids = set()
    for rule in rules:
        expect(isinstance(rule.get("id"), str) and rule["id"],
               "rule without a string id")
        expect(rule["id"] not in rule_ids,
               f"duplicate rule id {rule['id']!r}")
        rule_ids.add(rule["id"])
        expect(isinstance(rule.get("shortDescription", {}).get("text"),
                          str),
               f"rule {rule['id']!r} lacks shortDescription.text")

    results = run.get("results")
    expect(isinstance(results, list),
           "run.results missing (must be [] even when clean)")
    for i, result in enumerate(results):
        where = f"results[{i}]"
        expect(result.get("ruleId") in rule_ids,
               f"{where}.ruleId {result.get('ruleId')!r} not declared "
               "in tool.driver.rules")
        expect(result.get("level") in ("error", "warning", "note"),
               f"{where}.level {result.get('level')!r} invalid")
        expect(isinstance(result.get("message", {}).get("text"), str)
               and result["message"]["text"],
               f"{where}.message.text missing or empty")
        for loc in result.get("locations", []):
            phys = loc.get("physicalLocation", {})
            uri = phys.get("artifactLocation", {}).get("uri")
            expect(isinstance(uri, str) and uri,
                   f"{where} location lacks artifactLocation.uri")
            expect(not uri.startswith("/") and "://" not in uri,
                   f"{where} uri {uri!r} must be repo-relative")
            region = phys.get("region", {})
            expect(isinstance(region.get("startLine"), int)
                   and region["startLine"] >= 1,
                   f"{where} region.startLine must be a positive int")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_sarif.py <file.sarif>")
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {sys.argv[1]}: {err}")

    expect("sarif-schema-2.1.0" in doc.get("$schema", ""),
           f"$schema {doc.get('$schema')!r} is not the 2.1.0 schema")
    expect(doc.get("version") == "2.1.0",
           f"version {doc.get('version')!r}, want '2.1.0'")
    runs = doc.get("runs")
    expect(isinstance(runs, list) and runs, "runs missing or empty")
    for run in runs:
        check_run(run)

    n_results = sum(len(run.get("results", [])) for run in runs)
    print(f"check_sarif: OK ({len(runs)} run(s), {n_results} result(s))")


if __name__ == "__main__":
    main()
