/**
 * @file
 * dnastored — the concurrent DNA archive daemon (docs/SERVER.md).
 *
 * Serves one archive directory over the length-prefixed wire protocol
 * on 127.0.0.1: put/get/ls/stat/ping with request scheduling (get
 * coalescing + pool batching), admission control and graceful drain.
 *
 *   dnastored --dir ARCHIVE [--create] [--port P] [--port-file PATH]
 *             [--threads N] [--max-inflight N] [--per-client-inflight N]
 *             [--batch-max N] [--max-batches N]
 *             [--metrics-json PATH]
 *             [retrieval opts: --channel --error-rate --coverage --seed
 *              --retries --decode-threads]
 *
 * --port 0 (default) binds an ephemeral port; the chosen port is
 * printed as "listening on PORT" and, with --port-file, written there
 * so scripts can wait for readiness without races.
 *
 * SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish
 * admitted requests, flush replies, then exit 0.  With --metrics-json
 * a dnastore.server_report document (lifetime counters + server.*
 * metrics delta) is written after the drain.
 */

#include <csignal>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>

#include <unistd.h>

#include "archive/archive.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "server/archive_backend.hh"
#include "server/server.hh"
#include "util/args.hh"

using namespace dnastore;

namespace
{

/**
 * Signal handling: the handler may only do async-signal-safe work, so
 * it writes one drain byte to the server's wakeup pipe and nothing
 * else.  Plain volatile int is enough — the fd is written once before
 * signals are installed and never changes afterwards.
 */
volatile int g_drain_fd = -1;

extern "C" void
onTermSignal(int)
{
    const int fd = g_drain_fd;
    if (fd >= 0) {
        const char byte = 'q';
        // A failed write means the pipe is full, which already
        // guarantees a wakeup; nothing useful to do with the result.
        (void)!::write(fd, &byte, 1);
    }
}

archive::RetrievalConfig
retrievalConfig(const ArgParser &args)
{
    archive::RetrievalConfig cfg;
    if (args.get("channel", "iid") == "wetlab")
        cfg.channel = archive::RetrievalChannel::Wetlab;
    cfg.error_rate = args.getDouble("error-rate", cfg.error_rate);
    cfg.coverage = args.getDouble("coverage", cfg.coverage);
    cfg.seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
    // Per-request decode parallelism; scheduler-level batches already
    // run concurrently, so the default keeps each shard decode serial.
    cfg.num_threads =
        static_cast<std::size_t>(args.getInt("decode-threads", 1));
    cfg.max_decode_retries =
        static_cast<std::size_t>(args.getInt("retries", 1));
    return cfg;
}

int
usage()
{
    std::cerr
        << "usage: dnastored --dir ARCHIVE [--create] [--port P]\n"
           "  [--port-file PATH] [--threads N] [--max-inflight N]\n"
           "  [--per-client-inflight N] [--batch-max N] "
           "[--max-batches N]\n"
           "  [--metrics-json PATH] [--channel iid|wetlab "
           "--error-rate R\n"
           "   --coverage C --seed S --retries N --decode-threads N]\n"
           "serves the archive on 127.0.0.1 (ephemeral port when "
           "--port 0);\n"
           "SIGTERM drains gracefully (docs/SERVER.md)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string dir = args.get("dir", "");
    if (dir.empty())
        return usage();

    archive::OpenResult opened = archive::Archive::open(dir);
    if (opened.status == archive::ArchiveStatus::NotFound &&
        args.getBool("create", false))
        opened = archive::Archive::create(dir, archive::ArchiveParams{});
    if (!opened.ok()) {
        std::cerr << "dnastored: cannot open archive '" << dir
                  << "': " << opened.error << "\n";
        return 1;
    }

    server::ServerConfig config;
    config.port = static_cast<std::uint16_t>(args.getInt("port", 0));
    config.scheduler.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 0));
    config.scheduler.max_inflight =
        static_cast<std::size_t>(args.getInt("max-inflight", 64));
    config.scheduler.per_client_inflight = static_cast<std::size_t>(
        args.getInt("per-client-inflight", 8));
    config.scheduler.batch_max =
        static_cast<std::size_t>(args.getInt("batch-max", 4));
    config.scheduler.max_concurrent_batches =
        static_cast<std::size_t>(args.getInt("max-batches", 2));

    server::ArchiveBackend backend(*opened.archive,
                                   retrievalConfig(args),
                                   config.scheduler.num_threads);
    server::Server server(backend, config);
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    if (server.start() != server::ServerStatus::Ok) {
        std::cerr << "dnastored: cannot bind 127.0.0.1:" << config.port
                  << "\n";
        return 1;
    }

    g_drain_fd = server.drainNotifyFd();
    struct sigaction action = {};
    action.sa_handler = onTermSignal;
    sigemptyset(&action.sa_mask);
    (void)sigaction(SIGTERM, &action, nullptr);
    (void)sigaction(SIGINT, &action, nullptr);
    (void)signal(SIGPIPE, SIG_IGN);

    std::cout << "listening on " << server.port() << "\n" << std::flush;
    const std::string port_file = args.get("port-file", "");
    if (!port_file.empty() &&
        !obs::writeTextFile(port_file, std::to_string(server.port())))
        std::cerr << "dnastored: warning: could not write " << port_file
                  << "\n";

    server.serve(); // Returns after a drain completes.

    const server::SchedulerCounters counters = server.counters();
    std::cout << "drained: " << counters.requests << " request(s), "
              << counters.coalesced_gets << " coalesced get(s), "
              << counters.batches << " batch(es), "
              << counters.rejected_overload + counters.rejected_quota +
                     counters.rejected_draining
              << " rejected\n";

    const std::string metrics_path = args.get("metrics-json", "");
    if (!metrics_path.empty()) {
        std::map<std::string, std::string> info;
        info["archive_dir"] = dir;
        info["port"] = std::to_string(server.port());
        info["sessions_accepted"] =
            std::to_string(server.sessionsAccepted());
        const std::string report = server::serverReportJson(
            counters, info, obs::metrics().snapshot().delta(before));
        if (!obs::writeTextFile(metrics_path, report))
            std::cerr << "dnastored: warning: could not write "
                      << metrics_path << "\n";
    }
    return 0;
}
