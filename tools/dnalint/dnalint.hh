/**
 * @file
 * dnalint: project-contract static analysis for the DNA storage toolkit.
 *
 * A compile_commands-driven checker with its own lightweight C++ lexer
 * (no libclang dependency) that enforces contracts clang-tidy cannot
 * express:
 *
 *   R1  every value-returning function whose name carries a fallible-
 *       API prefix (try, decode, encode, to, from, make, create) and is
 *       declared in a public header under src/ must be [[nodiscard]],
 *       so a caller cannot silently drop a failure result;
 *   R2  the `throw` keyword appears only in a whitelisted set of
 *       boundary files under src/, keeping the Pipeline::run no-throw
 *       StageStatus taxonomy sound (stale whitelist entries are also
 *       reported);
 *   R3  the header self-containment harness
 *       (cmake/HeaderSelfContainment.cmake) is wired into the build, so
 *       every header under src/ compiles as a standalone TU;
 *   R4  include hygiene: project headers are included by their full
 *       path from src/ (or from the including tree's top-level
 *       directory), quoted includes resolve to first-party files, and
 *       every header opens with `#pragma once`;
 *   R5  seeded-randomness audit: no ad-hoc randomness (std::rand,
 *       srand, mt19937, random_device, time(NULL), ...) outside
 *       src/util/random, across src/, tools/, bench/, examples/,
 *       tests/ and fuzz/;
 *   R6  lock discipline: every mutex data member under src/ must have
 *       at least one DNASTORE_GUARDED_BY/DNASTORE_PT_GUARDED_BY peer
 *       annotation naming it (or an allowlisted justification in
 *       tools/dnalint_lock_allowlist.txt), and naked .lock()/.unlock()
 *       calls outside the RAII guard types are findings
 *       (src/util/sync.hh, the annotated wrapper, is the one exempt
 *       home of a bare std::mutex);
 *   R7  atomic memory-order audit: every std::atomic load/store/RMW
 *       under src/ must spell an explicit memory_order; relaxed is
 *       allowed only in files on the reviewed allowlist
 *       (tools/dnalint_relaxed_allowlist.txt), and an implicitly
 *       seq_cst operation is a finding pointing at hot-path cost;
 *   R8  module layering: src/ modules form a declared dependency DAG
 *       (obs < util < dna/ecc < nn/codec/clustering/reconstruction <
 *       simulator/wetlab < core < archive); any #include that points
 *       upward or sideways across the DAG is a finding, with
 *       util/thread_annotations.hh + util/sync.hh + util/hot.hh exempt
 *       as the layer-free annotation vocabulary — and an exemption that
 *       has gone stale (header deleted, or never included across a
 *       layer boundary any more) is itself a finding;
 *   R9  no-throw reachability (interprocedural, callgraph.hh): no call
 *       path from Pipeline::run/runFromReads, Server::serve, or a
 *       public Archive method may reach a `throw` outside the R2
 *       boundary whitelist
 *       or a known-throwing stdlib call outside
 *       tools/dnalint_nothrow_allowlist.txt;
 *   R10 hot-path allocation ratchet (interprocedural): transitive
 *       allocation-site counts of DNASTORE_HOT functions are pinned in
 *       tools/dnalint_alloc_ratchet.txt and may never increase;
 *   R11 blocking-under-lock (interprocedural): calls inside a
 *       MutexLock scope must not transitively reach file I/O,
 *       ThreadPool::submit or another mutex acquisition unless
 *       justified in tools/dnalint_blocking_allowlist.txt.
 *
 * The library operates on (repo-relative path, file content) pairs plus
 * a LintContext describing the project, so every rule is unit-testable
 * against fixture sources without touching the filesystem.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dnalint
{

/** Token kinds produced by the lightweight lexer. */
enum class TokenKind : std::uint8_t
{
    Identifier, //!< Identifier or keyword.
    Number,     //!< Numeric literal.
    Punct,      //!< Operator / punctuation (some multi-char, e.g. "::").
    Directive,  //!< Whole preprocessor line, continuations folded.
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    std::size_t line = 0;
};

/**
 * Lex C++ source.  Comments, string literals (including raw strings)
 * and character literals are consumed and never produce tokens, so
 * rules cannot be fooled by `throw` in a doc comment or fixture string.
 */
std::vector<Token> lex(const std::string &content);

/** Rule identifiers, usable as a bitmask. */
enum Rule : unsigned
{
    R1_Nodiscard = 1U << 0,
    R2_ThrowBoundary = 1U << 1,
    R3_SelfContainment = 1U << 2,
    R4_IncludeHygiene = 1U << 3,
    R5_SeedAudit = 1U << 4,
    R6_LockDiscipline = 1U << 5,
    R7_AtomicOrder = 1U << 6,
    R8_Layering = 1U << 7,
    R9_NoThrowReach = 1U << 8,
    R10_AllocRatchet = 1U << 9,
    R11_BlockingUnderLock = 1U << 10,
    /** The interprocedural rules needing the call graph (callgraph.hh). */
    GraphRules = R9_NoThrowReach | R10_AllocRatchet | R11_BlockingUnderLock,
    AllRules = R1_Nodiscard | R2_ThrowBoundary | R3_SelfContainment |
               R4_IncludeHygiene | R5_SeedAudit | R6_LockDiscipline |
               R7_AtomicOrder | R8_Layering | GraphRules,
};

/** Short name ("R1") and one-line description for --list-rules. */
struct RuleInfo
{
    Rule rule;
    const char *name;
    const char *summary;
};

/** Static table of all rules. */
const std::vector<RuleInfo> &ruleTable();

/** One violation. */
struct Finding
{
    std::string file;  //!< Repo-relative path ("" for project-level).
    std::size_t line = 0;
    Rule rule = R1_Nodiscard;
    std::string message;
};

/** Everything the rules need to know about the project. */
struct LintContext
{
    /** Repo-relative paths of all first-party files (src, tests, ...). */
    std::set<std::string> project_files;
    /** Files under src/ allowed to contain `throw` (repo-relative). */
    std::set<std::string> throw_allowlist;
    /** The throw allowlist exactly as loaded, in file order and with
     *  duplicates preserved, so R2 can flag duplicate and overlapping
     *  entries the deduplicated set above would hide. */
    std::vector<std::string> throw_allowlist_entries;
    /** R6: "file:mutex_name" entries justified to stay unannotated
     *  (tools/dnalint_lock_allowlist.txt). */
    std::set<std::string> lock_allowlist;
    /** R7: files reviewed to use memory_order_relaxed
     *  (tools/dnalint_relaxed_allowlist.txt). */
    std::set<std::string> relaxed_allowlist;
    /** R9: "file:Qualified::Function" entries whose throwing stdlib
     *  calls were reviewed as bounds-safe
     *  (tools/dnalint_nothrow_allowlist.txt). */
    std::set<std::string> nothrow_allowlist;
    /** R11: "file:Qualified::Function" entries justified to block while
     *  holding a lock (tools/dnalint_blocking_allowlist.txt). */
    std::set<std::string> blocking_allowlist;
    /** R10: checked-in per-hot-function allocation-site ceilings
     *  (tools/dnalint_alloc_ratchet.txt). */
    std::map<std::string, std::size_t> alloc_ratchet;
    /** True when cmake/HeaderSelfContainment.cmake exists and the
     *  top-level CMakeLists.txt includes it. */
    bool selfcontain_harness_wired = false;
};

/**
 * Per-file facts the project-level checks aggregate: which files still
 * contain `throw` (R2 staleness), which use memory_order_relaxed (R7
 * staleness) and which mutex members remain unannotated (R6 staleness).
 */
struct ProjectFacts
{
    std::set<std::string> throw_files;
    std::set<std::string> relaxed_files;
    std::set<std::string> unguarded_mutexes; //!< "file:mutex_name".
    /** R8: exempt vocabulary headers whose inclusion actually crossed a
     *  layer boundary somewhere (exemption-staleness detection). */
    std::set<std::string> exempt_headers_crossing;
};

/** The R8 layer-free vocabulary headers (exempt from the DAG). */
const std::vector<std::string> &layeringExemptHeaders();

/**
 * Run the per-file rules (R1, R2, R4, R5, R6, R7, R8) selected in
 * @p rules over one file.  @p rel_path must be repo-relative with
 * forward slashes.  @p facts, when given, accumulates the per-file
 * facts checkProject needs for its staleness checks.
 */
std::vector<Finding> checkFile(const std::string &rel_path,
                               const std::string &content,
                               const LintContext &ctx,
                               unsigned rules = AllRules,
                               ProjectFacts *facts = nullptr);

/**
 * Run the project-level rules: R2 stale/duplicate/overlapping whitelist
 * entries, R3 harness wiring, and R6/R7 stale allowlist entries.
 * @p facts is the aggregate produced by the checkFile calls.
 */
std::vector<Finding> checkProject(const LintContext &ctx,
                                  const ProjectFacts &facts,
                                  unsigned rules = AllRules);

/** "R1".."R8" for a rule bit. */
const char *ruleName(Rule rule);

/** Render a finding as "path:line: [R#] message". */
std::string format(const Finding &finding);

} // namespace dnalint
