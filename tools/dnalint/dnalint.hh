/**
 * @file
 * dnalint: project-contract static analysis for the DNA storage toolkit.
 *
 * A compile_commands-driven checker with its own lightweight C++ lexer
 * (no libclang dependency) that enforces contracts clang-tidy cannot
 * express:
 *
 *   R1  every value-returning function whose name carries a fallible-
 *       API prefix (try, decode, encode, to, from, make, create) and is
 *       declared in a public header under src/ must be [[nodiscard]],
 *       so a caller cannot silently drop a failure result;
 *   R2  the `throw` keyword appears only in a whitelisted set of
 *       boundary files under src/, keeping the Pipeline::run no-throw
 *       StageStatus taxonomy sound (stale whitelist entries are also
 *       reported);
 *   R3  the header self-containment harness
 *       (cmake/HeaderSelfContainment.cmake) is wired into the build, so
 *       every header under src/ compiles as a standalone TU;
 *   R4  include hygiene: project headers are included by their full
 *       path from src/ (or from the including tree's top-level
 *       directory), quoted includes resolve to first-party files, and
 *       every header opens with `#pragma once`;
 *   R5  seeded-randomness audit: no ad-hoc randomness (std::rand,
 *       srand, mt19937, random_device, time(NULL), ...) outside
 *       src/util/random, across src/, tools/, bench/, examples/,
 *       tests/ and fuzz/.
 *
 * The library operates on (repo-relative path, file content) pairs plus
 * a LintContext describing the project, so every rule is unit-testable
 * against fixture sources without touching the filesystem.
 */

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace dnalint
{

/** Token kinds produced by the lightweight lexer. */
enum class TokenKind : std::uint8_t
{
    Identifier, //!< Identifier or keyword.
    Number,     //!< Numeric literal.
    Punct,      //!< Operator / punctuation (some multi-char, e.g. "::").
    Directive,  //!< Whole preprocessor line, continuations folded.
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokenKind kind = TokenKind::Punct;
    std::string text;
    std::size_t line = 0;
};

/**
 * Lex C++ source.  Comments, string literals (including raw strings)
 * and character literals are consumed and never produce tokens, so
 * rules cannot be fooled by `throw` in a doc comment or fixture string.
 */
std::vector<Token> lex(const std::string &content);

/** Rule identifiers, usable as a bitmask. */
enum Rule : unsigned
{
    R1_Nodiscard = 1U << 0,
    R2_ThrowBoundary = 1U << 1,
    R3_SelfContainment = 1U << 2,
    R4_IncludeHygiene = 1U << 3,
    R5_SeedAudit = 1U << 4,
    AllRules = R1_Nodiscard | R2_ThrowBoundary | R3_SelfContainment |
               R4_IncludeHygiene | R5_SeedAudit,
};

/** Short name ("R1") and one-line description for --list-rules. */
struct RuleInfo
{
    Rule rule;
    const char *name;
    const char *summary;
};

/** Static table of all rules. */
const std::vector<RuleInfo> &ruleTable();

/** One violation. */
struct Finding
{
    std::string file;  //!< Repo-relative path ("" for project-level).
    std::size_t line = 0;
    Rule rule = R1_Nodiscard;
    std::string message;
};

/** Everything the rules need to know about the project. */
struct LintContext
{
    /** Repo-relative paths of all first-party files (src, tests, ...). */
    std::set<std::string> project_files;
    /** Files under src/ allowed to contain `throw` (repo-relative). */
    std::set<std::string> throw_allowlist;
    /** True when cmake/HeaderSelfContainment.cmake exists and the
     *  top-level CMakeLists.txt includes it. */
    bool selfcontain_harness_wired = false;
};

/**
 * Run the per-file rules (R1, R2, R4, R5) selected in @p rules over one
 * file.  @p rel_path must be repo-relative with forward slashes.
 */
std::vector<Finding> checkFile(const std::string &rel_path,
                               const std::string &content,
                               const LintContext &ctx,
                               unsigned rules = AllRules,
                               std::set<std::string> *throw_files = nullptr);

/**
 * Run the project-level rules: R2 stale-whitelist entries (an entry
 * whose file is missing or no longer contains `throw`) and R3 harness
 * wiring.  @p throw_files is the set of files actually containing a
 * `throw` token, as accumulated by checkFile calls.
 */
std::vector<Finding> checkProject(const LintContext &ctx,
                                  const std::set<std::string> &throw_files,
                                  unsigned rules = AllRules);

/** "R1".."R5" for a rule bit. */
const char *ruleName(Rule rule);

/** Render a finding as "path:line: [R#] message". */
std::string format(const Finding &finding);

} // namespace dnalint
