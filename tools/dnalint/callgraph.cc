#include "dnalint/callgraph.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <set>

namespace dnalint
{

namespace
{

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Split "a::b::c" into components. */
std::vector<std::string>
splitQualified(const std::string &written)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t sep = written.find("::", begin);
        if (sep == std::string::npos) {
            parts.push_back(written.substr(begin));
            return parts;
        }
        parts.push_back(written.substr(begin, sep - begin));
        begin = sep + 2;
    }
}

/** Keywords and cast/control constructs that look like `name(` but are
 *  never call sites. */
bool
isNotACall(const std::string &name)
{
    static const std::set<std::string> kNotCalls = {
        "if",       "for",         "while",     "switch",  "return",
        "sizeof",   "alignof",     "alignas",   "decltype", "catch",
        "noexcept", "static_cast", "dynamic_cast", "const_cast",
        "reinterpret_cast", "typeid", "throw",   "new",     "delete",
        "assert",   "static_assert", "defined", "co_await", "co_return"};
    return kNotCalls.count(name) != 0;
}

/** Statement keywords that may directly precede a call expression:
 *  `return foo(x)` lexes as `ident ident (` yet foo is a call, not a
 *  declarator. */
bool
isStmtKeyword(const std::string &name)
{
    static const std::set<std::string> kStmt = {
        "return", "co_return", "co_yield", "else", "do",
        "case",   "goto",      "default"};
    return kStmt.count(name) != 0;
}

/**
 * Member names owned by the standard library: a member call with one of
 * these names is never linked to a project function, so `ptr.get()`
 * cannot alias Archive::get.  Qualified calls ("Archive::get") resolve
 * regardless.
 */
bool
isStdMemberName(const std::string &name)
{
    static const std::set<std::string> kStd = {
        "at",        "substr",    "get",       "reset",    "release",
        "c_str",     "data",      "str",       "value",    "value_or",
        "size",      "empty",     "begin",     "end",      "rbegin",
        "rend",      "cbegin",    "cend",      "front",    "back",
        "push_back", "pop_back",  "emplace_back", "emplace", "insert",
        "erase",     "clear",     "find",      "count",    "contains",
        "reserve",   "resize",    "shrink_to_fit", "capacity", "swap",
        "load",      "store",     "exchange",  "fetch_add", "fetch_sub",
        "fetch_and", "fetch_or",  "fetch_xor", "compare_exchange_weak",
        "compare_exchange_strong", "lock",     "unlock",   "try_lock",
        "wait",      "wait_for",  "notify_one", "notify_all", "append",
        "length",    "push",      "pop",       "top",      "first",
        "second",    "has_value", "string",    "what",     "good",
        "fail",      "eof",       "is_open",   "open",     "close",
        "rdbuf",     "tellg",     "seekg",     "write",    "read"};
    return kStd.count(name) != 0;
}

/** Stdlib calls R9 treats as throwing when they survive resolution. */
bool
isThrowingStdCall(const CallSite &call)
{
    static const std::set<std::string> kThrowing = {
        "at",   "stoi", "stol", "stoll", "stoul", "stoull", "stof",
        "stod", "stold"};
    if (kThrowing.count(call.name) != 0)
        return true;
    // substr(pos, n) throws std::out_of_range iff pos > size();
    // substr(0, n) is provably safe and stays exempt.
    return call.name == "substr" && !call.first_arg_zero;
}

/** What a throwing stdlib call may raise (finding text). */
std::string
throwingStdWhat(const CallSite &call)
{
    if (call.name == "at")
        return "std::out_of_range from ." + call.name + "()";
    if (call.name == "substr")
        return "std::out_of_range from .substr(pos != 0, ...)";
    return "std::invalid_argument/std::out_of_range from " + call.name +
           "()";
}

/** Direct I/O primitives (R11): stream types, the C FILE API and the
 *  std console streams.  std::filesystem calls are matched separately
 *  by their qualifier. */
bool
isIoPrimitive(const std::string &name)
{
    static const std::set<std::string> kIo = {
        "ofstream", "ifstream", "fstream", "fopen",  "fclose", "fwrite",
        "fread",    "fprintf",  "fputs",   "fgets",  "fflush", "fsync",
        "cout",     "cerr",     "clog",    "getline"};
    return kIo.count(name) != 0;
}

/** RAII lock guard type names opening a MutexLock scope. */
bool
isLockGuardType(const std::string &name)
{
    return name == "MutexLock" || name == "lock_guard" ||
           name == "unique_lock" || name == "scoped_lock" ||
           name == "shared_lock";
}

// ------------------------------------------------------------ extractor

/** One entry of the lexical scope stack. */
struct Scope
{
    enum class Kind : std::uint8_t
    {
        Namespace,
        Class,
        Block, //!< enum/extern/initializer braces at decl scope
    };
    Kind kind = Scope::Kind::Block;
    std::string name;         //!< Namespace or class name ("" for anon).
    bool is_public = true;    //!< Current access (Class scopes).
};

class Extractor
{
  public:
    Extractor(std::string rel_path, const std::vector<Token> &tokens)
        : file_(std::move(rel_path)), toks_(tokens)
    {
    }

    FileFunctions
    run()
    {
        std::size_t i = 0;
        while (i < toks_.size())
            i = declStep(i);
        return std::move(out_);
    }

  private:
    const Token &
    tok(std::size_t i) const
    {
        return toks_[i];
    }

    bool
    is(std::size_t i, const char *text) const
    {
        return i < toks_.size() && toks_[i].text == text;
    }

    bool
    isIdent(std::size_t i) const
    {
        return i < toks_.size() && toks_[i].kind == TokenKind::Identifier;
    }

    /** Index just past the matching closer for the opener at @p i. */
    std::size_t
    skipBalanced(std::size_t i, const char *open, const char *close) const
    {
        std::size_t depth = 0;
        for (; i < toks_.size(); ++i) {
            if (toks_[i].text == open) {
                ++depth;
            } else if (toks_[i].text == close) {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return i;
    }

    /** Scope-joined qualified name for @p last. */
    std::string
    qualify(const std::vector<std::string> &name_parts) const
    {
        std::string out;
        for (const Scope &scope : scopes_) {
            if (scope.name.empty())
                continue; // anonymous namespace: omitted
            out += scope.name;
            out += "::";
        }
        for (std::size_t p = 0; p < name_parts.size(); ++p) {
            out += name_parts[p];
            if (p + 1 < name_parts.size())
                out += "::";
        }
        return out;
    }

    /** Innermost class scope name ("" when at namespace scope). */
    std::string
    innerClass() const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (it->kind == Scope::Kind::Class)
                return it->name;
        }
        return "";
    }

    /**
     * One step at declaration scope (namespace / class / top level).
     * Recognises namespace/class/enum openers, access labels, function
     * definitions and plain declarations; returns the next index.
     */
    std::size_t
    declStep(std::size_t i)
    {
        const Token &t = tok(i);
        if (t.kind == TokenKind::Directive)
            return i + 1;

        if (t.text == "template" && is(i + 1, "<"))
            return skipAngles(i + 1);

        if (t.text == "namespace") {
            std::size_t j = i + 1;
            std::string name;
            while (isIdent(j) || is(j, "::")) {
                if (isIdent(j))
                    name = name.empty() ? toks_[j].text
                                        : name + "::" + toks_[j].text;
                ++j;
            }
            if (is(j, "{")) {
                scopes_.push_back(
                    {Scope::Kind::Namespace, name, true});
                open_depths_.push_back(brace_depth_);
                ++brace_depth_;
                return j + 1;
            }
            return j; // namespace alias etc.
        }

        if (t.text == "class" || t.text == "struct" || t.text == "union") {
            // enum class is handled by the "enum" branch below.
            std::size_t j = i + 1;
            // Skip attributes and macros before the name.
            while (is(j, "[[")) {
                while (j < toks_.size() && !is(j, "]]"))
                    ++j;
                ++j;
            }
            std::string name;
            while (isIdent(j)) {
                name = toks_[j].text;
                ++j;
                if (is(j, "<"))
                    j = skipAngles(j); // explicit specialisation
            }
            if (is(j, "final"))
                ++j;
            // Base clause: skip to the opening brace or a ';'.
            while (j < toks_.size() && !is(j, "{") && !is(j, ";") &&
                   tok(j).kind != TokenKind::Directive)
                ++j;
            if (is(j, "{")) {
                scopes_.push_back({Scope::Kind::Class, name,
                                   t.text != "class"});
                open_depths_.push_back(brace_depth_);
                ++brace_depth_;
                return j + 1;
            }
            return j; // forward declaration
        }

        if (t.text == "enum") {
            std::size_t j = i + 1;
            while (j < toks_.size() && !is(j, "{") && !is(j, ";"))
                ++j;
            if (is(j, "{"))
                return skipBalanced(j, "{", "}");
            return j;
        }

        if (t.text == "extern" && i + 1 < toks_.size() &&
            is(i + 2, "{")) // extern "C" { — the literal was stripped
            return i + 1;

        if (t.text == "public" || t.text == "private" ||
            t.text == "protected") {
            if (!scopes_.empty() &&
                scopes_.back().kind == Scope::Kind::Class)
                scopes_.back().is_public = t.text == "public";
            return is(i + 1, ":") ? i + 2 : i + 1;
        }

        if (t.text == "using" || t.text == "typedef" ||
            t.text == "friend" || t.text == "static_assert") {
            while (i < toks_.size() && !is(i, ";"))
                i = is(i, "{") ? skipBalanced(i, "{", "}") : i + 1;
            return i + 1;
        }

        if (t.text == "}") {
            --brace_depth_;
            if (!open_depths_.empty() &&
                open_depths_.back() == brace_depth_) {
                open_depths_.pop_back();
                scopes_.pop_back();
            }
            return i + 1;
        }
        if (t.text == "{") { // stray initializer braces at decl scope
            return skipBalanced(i, "{", "}");
        }

        // Anything else: try to parse one declaration / definition.
        return parseDeclaration(i);
    }

    /** Skip a balanced <...> run starting at the '<' at @p i. */
    std::size_t
    skipAngles(std::size_t i) const
    {
        std::size_t depth = 0;
        for (; i < toks_.size(); ++i) {
            if (toks_[i].text == "<") {
                ++depth;
            } else if (toks_[i].text == ">") {
                if (--depth == 0)
                    return i + 1;
            } else if (toks_[i].text == ">>") {
                if (depth <= 2)
                    return i + 1;
                depth -= 2;
            } else if (toks_[i].text == ";" || toks_[i].text == "{") {
                return i; // not template args after all; bail out
            }
        }
        return i;
    }

    /**
     * Parse one declaration starting at @p i: scan for a declarator
     * `qualified-id (`; when the parameter list is followed (after
     * modifiers / init list) by `{`, record a function definition and
     * walk its body.  Everything else is consumed up to the next `;`.
     */
    std::size_t
    parseDeclaration(std::size_t i)
    {
        bool saw_hot = false;
        std::vector<std::string> name; // qualified declarator components
        std::size_t name_line = 0;
        std::size_t j = i;

        while (j < toks_.size()) {
            const Token &t = tok(j);
            if (t.kind == TokenKind::Directive)
                return j; // let declStep handle it
            if (t.text == ";")
                return j + 1;
            if (t.text == "}" ||
                (t.text == "{" && name.empty())) // give up; resync
                return j;
            if (t.text == "DNASTORE_HOT") {
                saw_hot = true;
                ++j;
                continue;
            }
            if (t.text == "[[") {
                while (j < toks_.size() && !is(j, "]]"))
                    ++j;
                ++j;
                continue;
            }
            if (t.text == "operator") {
                // operator+ / operator() / operator"" — collect symbol.
                std::string op = "operator";
                ++j;
                while (j < toks_.size() && !is(j, "(") &&
                       tok(j).kind == TokenKind::Punct) {
                    op += toks_[j].text;
                    ++j;
                }
                // operator() is followed by the *call* parens next.
                if (op == "operator" && is(j, "(") && is(j + 1, ")")) {
                    op += "()";
                    j += 2;
                }
                name = {op};
                name_line = tok(j > 0 ? j - 1 : 0).line;
                if (is(j, "("))
                    return parseAfterParams(j, name, name_line, saw_hot);
                ++j;
                continue;
            }
            if ((t.kind == TokenKind::Identifier &&
                 !isNotACall(t.text)) ||
                (t.text == "~" && isIdent(j + 1))) {
                // Collect a (possibly qualified, possibly ~dtor) id.
                std::vector<std::string> candidate;
                std::size_t k = j;
                for (;;) {
                    std::string part;
                    if (is(k, "~")) {
                        part = "~";
                        ++k;
                    }
                    if (!isIdent(k))
                        break;
                    part += toks_[k].text;
                    candidate.push_back(part);
                    ++k;
                    if (is(k, "<")) {
                        const std::size_t after = skipAngles(k);
                        if (after == k)
                            break;
                        k = after;
                    }
                    if (is(k, "::")) {
                        ++k;
                        continue;
                    }
                    break;
                }
                if (!candidate.empty() && is(k, "(")) {
                    name = std::move(candidate);
                    name_line = tok(j).line;
                    return parseAfterParams(k, name, name_line, saw_hot);
                }
                if (!candidate.empty()) {
                    j = k;
                    continue;
                }
            }
            ++j;
        }
        return j;
    }

    /**
     * @p i points at the declarator's opening '('.  Skip the parameter
     * list, then modifiers (const/noexcept/override/trailing return /
     * ctor init list); on `{` record the definition and walk the body;
     * on `;` / `=` record a method declaration (class scope) only.
     */
    std::size_t
    parseAfterParams(std::size_t i, const std::vector<std::string> &name,
                     std::size_t name_line, bool saw_hot)
    {
        std::size_t j = skipBalanced(i, "(", ")");
        bool is_noexcept = false;

        for (;;) {
            if (j >= toks_.size())
                return j;
            const Token &t = tok(j);
            if (t.text == "const" || t.text == "override" ||
                t.text == "final" || t.text == "&" || t.text == "&&" ||
                t.text == "mutable" || t.text == "volatile" ||
                t.text == "DNASTORE_HOT") {
                saw_hot = saw_hot || t.text == "DNASTORE_HOT";
                ++j;
                continue;
            }
            if (t.text == "noexcept") {
                is_noexcept = true;
                ++j;
                if (is(j, "(")) {
                    const std::size_t close = skipBalanced(j, "(", ")");
                    for (std::size_t p = j; p < close; ++p) {
                        if (toks_[p].text == "false")
                            is_noexcept = false;
                    }
                    j = close;
                }
                continue;
            }
            if (t.text == "[[") {
                while (j < toks_.size() && !is(j, "]]"))
                    ++j;
                ++j;
                continue;
            }
            if (t.kind == TokenKind::Identifier &&
                startsWith(t.text, "DNASTORE_")) {
                ++j; // thread-safety annotation macro
                if (is(j, "("))
                    j = skipBalanced(j, "(", ")");
                continue;
            }
            if (t.text == "->") {
                // Trailing return type: skip to the body/terminator.
                ++j;
                while (j < toks_.size() && !is(j, "{") && !is(j, ";") &&
                       !is(j, "=")) {
                    ++j;
                }
                continue;
            }
            if (t.text == ":") {
                // Constructor initializer list.
                ++j;
                while (j < toks_.size()) {
                    while (isIdent(j) || is(j, "::") || is(j, "~"))
                        ++j;
                    if (is(j, "<"))
                        j = skipAngles(j);
                    if (is(j, "("))
                        j = skipBalanced(j, "(", ")");
                    else if (is(j, "{"))
                        j = skipBalanced(j, "{", "}");
                    if (is(j, ",")) {
                        ++j;
                        continue;
                    }
                    break;
                }
                continue;
            }
            if (t.text == "=") {
                // = default / = delete / = 0, or a variable initializer.
                recordDecl(name);
                while (j < toks_.size() && !is(j, ";"))
                    j = is(j, "{") ? skipBalanced(j, "{", "}") : j + 1;
                return j + 1;
            }
            if (t.text == ";") {
                recordDecl(name);
                return j + 1;
            }
            if (t.text == "{") {
                FunctionInfo fn;
                fn.qualified = qualify(name);
                fn.name = name.back();
                fn.file = file_;
                fn.line = name_line;
                fn.is_noexcept = is_noexcept;
                fn.is_hot = saw_hot;
                fn.class_name = name.size() > 1
                                    ? name[name.size() - 2]
                                    : innerClass();
                const std::size_t end = skipBalanced(j, "{", "}");
                walkBody(j + 1, end > 0 ? end - 1 : end, fn);
                recordDecl(name);
                out_.functions.push_back(std::move(fn));
                return end;
            }
            // Unexpected token (e.g. this was a call in an initializer,
            // not a declarator): consume until the statement ends.
            while (j < toks_.size() && !is(j, ";"))
                j = is(j, "{") ? skipBalanced(j, "{", "}") : j + 1;
            return j + 1;
        }
    }

    /** Record a method declaration with its access level (class scope). */
    void
    recordDecl(const std::vector<std::string> &name)
    {
        if (scopes_.empty() ||
            scopes_.back().kind != Scope::Kind::Class || name.size() != 1)
            return;
        out_.method_decls.push_back(
            {scopes_.back().name, name.back(), scopes_.back().is_public});
    }

    /** An active lexical region inside a function body. */
    struct BodyFrame
    {
        std::size_t depth = 0;
        bool is_try = false;
        bool opens_lock = false; //!< A lock guard lives in this frame.
    };

    /**
     * Walk one function body: tokens [begin, end) between the outer
     * braces.  Records call sites, throw statements, allocation
     * expressions, direct I/O and lock scopes into @p fn.
     */
    void
    walkBody(std::size_t begin, std::size_t end, FunctionInfo &fn)
    {
        // Pre-scan: receivers that had .reserve() called anywhere in the
        // body are exempt from the unreserved-push_back count.
        std::set<std::string> reserved;
        for (std::size_t i = begin; i + 2 < end; ++i) {
            if ((toks_[i].text == "." || toks_[i].text == "->") &&
                is(i + 1, "reserve") && is(i + 2, "(") && i > begin &&
                isIdent(i - 1)) {
                reserved.insert(toks_[i - 1].text);
            }
        }

        std::vector<BodyFrame> frames;
        std::size_t depth = 1; // the body's own braces
        std::size_t try_depth = 0;
        std::size_t lock_depth = 0;
        bool pending_try = false;

        auto underLock = [&]() { return lock_depth > 0; };
        auto inTry = [&]() { return try_depth > 0; };

        for (std::size_t i = begin; i < end; ++i) {
            const Token &t = toks_[i];
            if (t.kind == TokenKind::Directive)
                continue;

            if (t.text == "{") {
                BodyFrame frame;
                frame.depth = depth;
                frame.is_try = pending_try;
                pending_try = false;
                if (frame.is_try)
                    ++try_depth;
                frames.push_back(frame);
                ++depth;
                continue;
            }
            if (t.text == "}") {
                --depth;
                if (!frames.empty() && frames.back().depth == depth) {
                    if (frames.back().is_try)
                        --try_depth;
                    if (frames.back().opens_lock)
                        --lock_depth;
                    frames.pop_back();
                }
                continue;
            }
            if (t.text == "try") {
                pending_try = true;
                continue;
            }

            if (t.kind != TokenKind::Identifier)
                continue;

            // ---- throw statements -------------------------------------
            if (t.text == "throw") {
                fn.throw_sites.push_back({t.line, inTry()});
                continue;
            }

            // ---- allocation expressions (R10) -------------------------
            if (t.text == "new") {
                fn.alloc_sites.push_back({AllocKind::New, t.line});
                continue;
            }
            if (t.text == "std" && is(i + 1, "::")) {
                if (is(i + 2, "string") &&
                    (is(i + 3, "(") || is(i + 3, "{"))) {
                    fn.alloc_sites.push_back(
                        {AllocKind::StringTemp, t.line});
                } else if (is(i + 2, "function")) {
                    fn.alloc_sites.push_back(
                        {AllocKind::StdFunction, t.line});
                }
                // fall through: std::f(...) is also a call site below
            }

            // ---- lock guard scopes (R11) ------------------------------
            if (isLockGuardType(t.text) &&
                (isIdent(i + 1) || is(i + 1, "<"))) {
                std::size_t k = i + 1;
                if (is(k, "<"))
                    k = skipAngles(k);
                if (isIdent(k) && (is(k + 1, "(") || is(k + 1, "{"))) {
                    fn.lock_sites.push_back(
                        {t.line, underLock(), t.text});
                    if (frames.empty()) {
                        // Guard declared directly at body scope: locked
                        // until the function returns.
                        ++lock_depth;
                        // Re-use a synthetic frame at depth 0 so the
                        // count balances on body exit (never popped).
                    } else if (!frames.back().opens_lock) {
                        frames.back().opens_lock = true;
                        ++lock_depth;
                    }
                    i = k + 1;
                    continue;
                }
            }

            // ---- blocking stream declarations (R11) -------------------
            // `std::ofstream out(path)` opens a file with declaration
            // syntax, not call syntax; the declarator is the blocking
            // site.  (Temporaries like `std::ofstream(path)` have call
            // syntax and are caught by isIoPrimitive below.)
            if ((t.text == "ofstream" || t.text == "ifstream" ||
                 t.text == "fstream") &&
                isIdent(i + 1) && (is(i + 2, "(") || is(i + 2, "{"))) {
                fn.io_sites.push_back(
                    {t.line, underLock(), "std::" + t.text});
                i += 2;
                continue;
            }

            // ---- call sites -------------------------------------------
            const bool member_call =
                i > begin && (toks_[i - 1].text == "." ||
                              toks_[i - 1].text == "->");

            // Collect the longest a::b::c chain starting here.
            std::vector<std::string> parts;
            std::size_t k = i;
            while (isIdent(k)) {
                parts.push_back(toks_[k].text);
                if (is(k + 1, "::") && isIdent(k + 2)) {
                    k += 2;
                    continue;
                }
                break;
            }
            if (parts.empty() || !is(k + 1, "("))
                continue;
            const std::string &simple = parts.back();
            if (isNotACall(simple) || isLockGuardType(simple)) {
                i = k;
                continue;
            }
            // `throw Exc(...)` constructs the exception object; the
            // throw site itself is already recorded, and the ctor name
            // must not alias a project function.
            if (i > begin && toks_[i - 1].text == "throw") {
                i = k;
                continue;
            }
            // A declaration like `Foo bar(...)` is not a call: the
            // token before the chain being an identifier (a type name)
            // and the chain having a following identifier… declarator
            // shapes at body scope are `Type name(args)`; a call never
            // has two adjacent identifiers.  Detect `ident ident (`,
            // excluding statement keywords (`return foo(x)` is a call).
            if (!member_call && parts.size() == 1 && i > begin &&
                isIdent(i - 1) && !isStmtKeyword(toks_[i - 1].text)) {
                i = k;
                continue;
            }

            CallSite call;
            call.name = simple;
            for (std::size_t p = 0; p < parts.size(); ++p) {
                call.written += parts[p];
                if (p + 1 < parts.size())
                    call.written += "::";
            }
            call.line = toks_[k].line;
            call.member = member_call;
            call.in_try = inTry();
            call.under_lock = underLock();
            call.first_arg_zero = is(k + 2, "0") &&
                                  (is(k + 3, ",") || is(k + 3, ")"));

            // ---- unreserved push_back (R10) ---------------------------
            if (member_call &&
                (simple == "push_back" || simple == "emplace_back")) {
                const bool receiver_reserved =
                    i >= begin + 2 && isIdent(i - 2) &&
                    reserved.count(toks_[i - 2].text) != 0;
                if (!receiver_reserved) {
                    fn.alloc_sites.push_back(
                        {AllocKind::PushBack, call.line});
                }
            }

            // ---- direct blocking primitives (R11) ---------------------
            if (isIoPrimitive(simple) ||
                (parts.size() > 1 &&
                 (parts[parts.size() - 2] == "filesystem" ||
                  parts[parts.size() - 2] == "fs"))) {
                fn.io_sites.push_back({call.line, call.under_lock,
                                       call.written});
            }
            if (member_call &&
                (simple == "lock" || simple == "try_lock")) {
                fn.lock_sites.push_back(
                    {call.line, call.under_lock, "." + simple + "()"});
            }

            fn.calls.push_back(std::move(call));
            i = k;
        }

        // std::cout/std::cerr stream writes have no call syntax; scan
        // for the bare identifiers too.
        const std::size_t precisely_tracked = fn.io_sites.size();
        for (std::size_t i = begin; i < end; ++i) {
            const Token &t = toks_[i];
            if (t.kind == TokenKind::Identifier &&
                (t.text == "cout" || t.text == "cerr" ||
                 t.text == "clog") &&
                (i + 1 >= end || toks_[i + 1].text != "(")) {
                fn.io_sites.push_back({t.line, false, "std::" + t.text});
            }
        }
        // The loop above cannot know lock scopes; recover the flag from
        // recorded guard lines: a stream write between a guard's line
        // and the body end is conservatively treated as under-lock only
        // when the function has exactly one guard covering the rest of
        // the body.  Precise per-token tracking happens in the main
        // walk; this fallback only affects `os << x` style writes.
        if (fn.lock_sites.size() == 1) {
            for (std::size_t s = precisely_tracked;
                 s < fn.io_sites.size(); ++s) {
                BlockSite &io = fn.io_sites[s];
                if (!io.under_lock && io.line >= fn.lock_sites[0].line)
                    io.under_lock = true;
            }
        }
    }

    std::string file_;
    const std::vector<Token> &toks_;
    std::vector<Scope> scopes_;
    std::vector<std::size_t> open_depths_; //!< Brace depth per scope.
    std::size_t brace_depth_ = 0;
    FileFunctions out_;
};

/** Component-suffix match: written "Pipeline::run" matches qualified
 *  "dnastore::Pipeline::run" but not "dnastore::DryRunPipeline::run". */
bool
suffixMatches(const std::string &qualified, const std::string &written)
{
    const std::vector<std::string> q = splitQualified(qualified);
    const std::vector<std::string> w = splitQualified(written);
    if (w.empty() || w.size() > q.size())
        return false;
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (q[q.size() - w.size() + i] != w[i])
            return false;
    }
    return true;
}

} // namespace

const char *
allocKindName(AllocKind kind)
{
    switch (kind) {
    case AllocKind::New:
        return "new";
    case AllocKind::PushBack:
        return "unreserved push_back";
    case AllocKind::StringTemp:
        return "std::string temporary";
    case AllocKind::StdFunction:
        return "std::function";
    }
    return "?";
}

FileFunctions
extractFunctions(const std::string &rel_path,
                 const std::vector<Token> &tokens)
{
    return Extractor(rel_path, tokens).run();
}

std::vector<std::size_t>
CallGraph::findBySuffix(const std::string &written) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < functions.size(); ++i) {
        if (suffixMatches(functions[i].qualified, written))
            out.push_back(i);
    }
    return out;
}

CallGraph
buildCallGraph(const std::vector<FileFunctions> &files)
{
    CallGraph graph;
    for (const FileFunctions &file : files) {
        graph.functions.insert(graph.functions.end(),
                               file.functions.begin(),
                               file.functions.end());
        graph.method_decls.insert(graph.method_decls.end(),
                                  file.method_decls.begin(),
                                  file.method_decls.end());
    }

    std::map<std::string, std::vector<std::size_t>> by_name;
    for (std::size_t i = 0; i < graph.functions.size(); ++i)
        by_name[graph.functions[i].name].push_back(i);

    graph.targets.resize(graph.functions.size());
    for (std::size_t f = 0; f < graph.functions.size(); ++f) {
        const FunctionInfo &fn = graph.functions[f];
        graph.targets[f].resize(fn.calls.size());
        for (std::size_t c = 0; c < fn.calls.size(); ++c) {
            const CallSite &call = fn.calls[c];
            std::vector<std::size_t> &out = graph.targets[f][c];

            const auto candidates = by_name.find(call.name);
            if (candidates == by_name.end())
                continue;

            if (call.written.find("::") != std::string::npos) {
                // Qualified call: precise component-suffix match.
                for (const std::size_t idx : candidates->second) {
                    if (suffixMatches(graph.functions[idx].qualified,
                                      call.written))
                        out.push_back(idx);
                }
                continue;
            }
            if (call.member) {
                // Member call: over-approximate virtual dispatch by
                // name, but never alias stdlib member names.
                if (isStdMemberName(call.name))
                    continue;
                for (const std::size_t idx : candidates->second) {
                    if (!graph.functions[idx].class_name.empty())
                        out.push_back(idx);
                }
                continue;
            }
            // Unqualified free call: prefer methods of the caller's own
            // class (implicit this->), else every match.
            std::vector<std::size_t> same_class;
            for (const std::size_t idx : candidates->second) {
                if (!fn.class_name.empty() &&
                    graph.functions[idx].class_name == fn.class_name)
                    same_class.push_back(idx);
            }
            out = same_class.empty() ? candidates->second : same_class;
        }
    }
    return graph;
}

namespace
{

/** Per-function transitive facts, computed by iterating to fixpoint. */
struct ReachFacts
{
    bool does_io = false;
    bool acquires_lock = false;
    bool does_submit = false;
};

std::vector<ReachFacts>
computeReachFacts(const CallGraph &graph)
{
    const std::size_t n = graph.functions.size();
    std::vector<ReachFacts> facts(n);
    for (std::size_t i = 0; i < n; ++i) {
        const FunctionInfo &fn = graph.functions[i];
        facts[i].does_io = !fn.io_sites.empty();
        facts[i].acquires_lock = !fn.lock_sites.empty();
        for (const CallSite &call : fn.calls) {
            if (call.name == "submit")
                facts[i].does_submit = true;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t f = 0; f < n; ++f) {
            for (const auto &callees : graph.targets[f]) {
                for (const std::size_t t : callees) {
                    if (facts[t].does_io && !facts[f].does_io) {
                        facts[f].does_io = true;
                        changed = true;
                    }
                    if (facts[t].acquires_lock &&
                        !facts[f].acquires_lock) {
                        facts[f].acquires_lock = true;
                        changed = true;
                    }
                    if (facts[t].does_submit && !facts[f].does_submit) {
                        facts[f].does_submit = true;
                        changed = true;
                    }
                }
            }
        }
    }
    return facts;
}

/** "file:Qualified::Name" allowlist key of a function. */
std::string
allowKey(const FunctionInfo &fn)
{
    return fn.file + ":" + fn.qualified;
}

/**
 * Shortest call chain from @p from down to a function satisfying
 * @p pred, rendered as "A -> B -> C".  Returns "" when none exists.
 */
template <typename Pred>
std::string
chainTo(const CallGraph &graph, std::size_t from, Pred pred)
{
    std::vector<std::ptrdiff_t> parent(graph.functions.size(), -2);
    std::deque<std::size_t> queue;
    parent[from] = -1;
    queue.push_back(from);
    std::ptrdiff_t found = -1;
    while (!queue.empty()) {
        const std::size_t f = queue.front();
        queue.pop_front();
        if (pred(f)) {
            found = static_cast<std::ptrdiff_t>(f);
            break;
        }
        for (const auto &callees : graph.targets[f]) {
            for (const std::size_t t : callees) {
                if (parent[t] == -2) {
                    parent[t] = static_cast<std::ptrdiff_t>(f);
                    queue.push_back(t);
                }
            }
        }
    }
    if (found < 0)
        return "";
    std::vector<std::string> names;
    for (std::ptrdiff_t f = found; f >= 0;
         f = parent[static_cast<std::size_t>(f)]) {
        const FunctionInfo &fn = graph.functions[static_cast<std::size_t>(f)];
        std::string label = fn.qualified;
        if (fn.is_noexcept)
            label += " [noexcept]";
        names.push_back(label);
    }
    std::string out;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
        if (!out.empty())
            out += " -> ";
        out += *it;
    }
    return out;
}

// ------------------------------------------------------------------ R9

/** Entry points of the no-throw contract. */
std::vector<std::size_t>
noThrowEntryPoints(const CallGraph &graph)
{
    std::vector<std::size_t> entries;
    std::set<std::size_t> seen;
    auto add = [&](const std::vector<std::size_t> &idx) {
        for (const std::size_t i : idx) {
            if (seen.insert(i).second)
                entries.push_back(i);
        }
    };
    add(graph.findBySuffix("Pipeline::run"));
    add(graph.findBySuffix("Pipeline::runFromReads"));

    // The daemon's accept loop: everything reachable from here handles
    // untrusted network input and must be no-throw.
    add(graph.findBySuffix("Server::serve"));

    // Every public Archive method (access harvested from the class
    // body in archive.hh; out-of-line definitions match by name).
    std::set<std::string> public_archive;
    for (const MethodDecl &decl : graph.method_decls) {
        if (decl.class_name == "Archive" && decl.is_public)
            public_archive.insert(decl.name);
    }
    for (std::size_t i = 0; i < graph.functions.size(); ++i) {
        const FunctionInfo &fn = graph.functions[i];
        if (fn.class_name == "Archive" &&
            public_archive.count(fn.name) != 0)
            add({i});
    }
    return entries;
}

void
checkNoThrowReach(const LintContext &ctx, const CallGraph &graph,
                  std::vector<Finding> &findings)
{
    const std::vector<std::size_t> entries = noThrowEntryPoints(graph);
    std::set<std::string> used_allowlist;

    // BFS from every entry, cutting at allowlisted functions and at
    // call sites wrapped in try blocks.
    std::vector<std::ptrdiff_t> parent(graph.functions.size(), -2);
    std::deque<std::size_t> queue;
    std::vector<std::string> entry_of(graph.functions.size());
    for (const std::size_t e : entries) {
        if (parent[e] != -2)
            continue;
        parent[e] = -1;
        entry_of[e] = graph.functions[e].qualified;
        queue.push_back(e);
    }
    while (!queue.empty()) {
        const std::size_t f = queue.front();
        queue.pop_front();
        const FunctionInfo &fn = graph.functions[f];
        if (ctx.nothrow_allowlist.count(allowKey(fn)) != 0) {
            used_allowlist.insert(allowKey(fn));
            continue; // reviewed: subtree vouched for
        }
        for (std::size_t c = 0; c < fn.calls.size(); ++c) {
            if (fn.calls[c].in_try)
                continue; // handled by the enclosing catch
            for (const std::size_t t : graph.targets[f][c]) {
                if (parent[t] == -2) {
                    parent[t] = static_cast<std::ptrdiff_t>(f);
                    entry_of[t] = entry_of[f];
                    queue.push_back(t);
                }
            }
        }
    }

    auto renderChain = [&](std::size_t f) {
        std::vector<std::string> names;
        for (std::ptrdiff_t p = static_cast<std::ptrdiff_t>(f); p >= 0;
             p = parent[static_cast<std::size_t>(p)]) {
            const FunctionInfo &fn =
                graph.functions[static_cast<std::size_t>(p)];
            std::string label = fn.qualified;
            if (fn.is_noexcept)
                label += " [noexcept]";
            names.push_back(label);
        }
        std::string out;
        for (auto it = names.rbegin(); it != names.rend(); ++it) {
            if (!out.empty())
                out += " -> ";
            out += *it;
        }
        return out;
    };

    for (std::size_t f = 0; f < graph.functions.size(); ++f) {
        if (parent[f] == -2)
            continue; // unreachable from the no-throw entry points
        const FunctionInfo &fn = graph.functions[f];

        // Direct `throw` statements: the R2 boundary whitelist owns
        // files allowed to throw; anything else reachable is a finding.
        for (const ThrowSite &site : fn.throw_sites) {
            if (site.in_try ||
                ctx.throw_allowlist.count(fn.file) != 0)
                continue;
            findings.push_back(
                {fn.file, site.line, R9_NoThrowReach,
                 "`throw` reachable from the no-throw entry point '" +
                     entry_of[f] + "' via " + renderChain(f) +
                     "; return a StageStatus/optional failure or move "
                     "the throw behind the R2 boundary"});
        }

        // An allowlisted function's own stdlib calls are part of the
        // reviewed subtree (the BFS above already marked the entry
        // used when it reached the function).
        if (ctx.nothrow_allowlist.count(allowKey(fn)) != 0)
            continue;

        // Known-throwing stdlib calls that resolved to no project
        // function.
        for (std::size_t c = 0; c < fn.calls.size(); ++c) {
            const CallSite &call = fn.calls[c];
            if (call.in_try || !graph.targets[f][c].empty() ||
                !isThrowingStdCall(call))
                continue;
            findings.push_back(
                {fn.file, call.line, R9_NoThrowReach,
                 "call chain " + renderChain(f) + " reaches '" +
                     call.written + "' (" + throwingStdWhat(call) +
                     "), reachable from no-throw entry point '" +
                     entry_of[f] +
                     "'; bound the access (DNASTORE_ASSERT + "
                     "operator[]) or add '" + allowKey(fn) +
                     "' to tools/dnalint_nothrow_allowlist.txt with a "
                     "justification"});
        }
    }

    // Stale allowlist entries (mirrors R2/R6/R7): an entry must both
    // name a known function and be reached from an entry point.
    for (const std::string &entry : ctx.nothrow_allowlist) {
        if (used_allowlist.count(entry) != 0)
            continue;
        findings.push_back(
            {"", 0, R9_NoThrowReach,
             "nothrow allowlist entry '" + entry +
                 "' is stale (function gone, renamed, or no longer "
                 "reachable from a no-throw entry point); remove it so "
                 "the allowlist stays tight"});
    }
}

// ----------------------------------------------------------------- R10

void
checkAllocRatchet(const LintContext &ctx, const CallGraph &graph,
                  std::vector<Finding> &findings)
{
    const std::map<std::string, std::size_t> counts =
        computeAllocCounts(graph);

    std::map<std::string, const FunctionInfo *> hot;
    for (const FunctionInfo &fn : graph.functions) {
        if (fn.is_hot)
            hot.emplace(fn.qualified, &fn);
    }

    for (const auto &[name, count] : counts) {
        const auto it = ctx.alloc_ratchet.find(name);
        const FunctionInfo &fn = *hot.at(name);
        if (it == ctx.alloc_ratchet.end()) {
            findings.push_back(
                {fn.file, fn.line, R10_AllocRatchet,
                 "DNASTORE_HOT function '" + name +
                     "' has no ratchet entry; add '" + name + " " +
                     std::to_string(count) +
                     "' to tools/dnalint_alloc_ratchet.txt"});
            continue;
        }
        if (count > it->second) {
            findings.push_back(
                {fn.file, fn.line, R10_AllocRatchet,
                 "hot-path allocation count of '" + name + "' rose to " +
                     std::to_string(count) + " (ratchet: " +
                     std::to_string(it->second) +
                     "); remove the new allocation (reserve, reuse a "
                     "buffer, or hoist the temporary) — the ratchet "
                     "only goes down"});
        } else if (count < it->second) {
            findings.push_back(
                {fn.file, fn.line, R10_AllocRatchet,
                 "hot-path allocation count of '" + name +
                     "' dropped to " + std::to_string(count) +
                     " (ratchet: " + std::to_string(it->second) +
                     "); tighten the entry in "
                     "tools/dnalint_alloc_ratchet.txt to " +
                     std::to_string(count) +
                     " so the win cannot regress"});
        }
    }

    for (const auto &[name, ceiling] : ctx.alloc_ratchet) {
        (void)ceiling;
        if (counts.count(name) == 0) {
            findings.push_back(
                {"", 0, R10_AllocRatchet,
                 "alloc ratchet entry '" + name +
                     "' is stale (function gone or no longer "
                     "DNASTORE_HOT); remove it"});
        }
    }
}

// ----------------------------------------------------------------- R11

void
checkBlockingUnderLock(const LintContext &ctx, const CallGraph &graph,
                       std::vector<Finding> &findings)
{
    const std::vector<ReachFacts> facts = computeReachFacts(graph);
    std::set<std::string> used_allowlist;
    std::vector<Finding> raw;

    for (std::size_t f = 0; f < graph.functions.size(); ++f) {
        const FunctionInfo &fn = graph.functions[f];
        std::vector<Finding> local;

        // Direct I/O inside a lock scope.
        for (const BlockSite &io : fn.io_sites) {
            if (!io.under_lock)
                continue;
            local.push_back(
                {fn.file, io.line, R11_BlockingUnderLock,
                 "file I/O (" + io.what +
                     ") inside a MutexLock scope in '" + fn.qualified +
                     "'; stage the data and write after unlock, or "
                     "justify '" + allowKey(fn) +
                     "' in tools/dnalint_blocking_allowlist.txt"});
        }
        // A second guard opened while one is held.
        for (const BlockSite &lock : fn.lock_sites) {
            if (!lock.under_lock)
                continue;
            local.push_back(
                {fn.file, lock.line, R11_BlockingUnderLock,
                 "nested mutex acquisition (" + lock.what +
                     ") while already inside a MutexLock scope in '" +
                     fn.qualified +
                     "'; lock ordering bugs start here — narrow the "
                     "outer scope or justify '" + allowKey(fn) + "'"});
        }

        for (std::size_t c = 0; c < fn.calls.size(); ++c) {
            const CallSite &call = fn.calls[c];
            if (!call.under_lock)
                continue;
            if (call.name == "submit") {
                local.push_back(
                    {fn.file, call.line, R11_BlockingUnderLock,
                     "ThreadPool::submit called inside a MutexLock "
                     "scope in '" + fn.qualified +
                     "'; the pool's own queue lock nests under yours "
                     "and a full queue stalls every holder — submit "
                     "after unlock"});
                continue;
            }
            for (const std::size_t t : graph.targets[f][c]) {
                const FunctionInfo &callee = graph.functions[t];
                if (facts[t].does_io) {
                    local.push_back(
                        {fn.file, call.line, R11_BlockingUnderLock,
                         "call to '" + call.written +
                             "' inside a MutexLock scope in '" +
                             fn.qualified +
                             "' transitively reaches file I/O (" +
                             chainTo(graph, t,
                                     [&](std::size_t x) {
                                         return !graph.functions[x]
                                                     .io_sites.empty();
                                     }) +
                             "); move the I/O out of the critical "
                             "section"});
                    break;
                }
                if (facts[t].does_submit) {
                    local.push_back(
                        {fn.file, call.line, R11_BlockingUnderLock,
                         "call to '" + call.written +
                             "' inside a MutexLock scope in '" +
                             fn.qualified +
                             "' transitively reaches "
                             "ThreadPool::submit; submitting under a "
                             "lock invites deadlock with pool workers"});
                    break;
                }
                if (facts[t].acquires_lock) {
                    local.push_back(
                        {fn.file, call.line, R11_BlockingUnderLock,
                         "call to '" + call.written +
                             "' inside a MutexLock scope in '" +
                             fn.qualified +
                             "' transitively acquires another mutex (" +
                             chainTo(graph, t,
                                     [&](std::size_t x) {
                                         return !graph.functions[x]
                                                     .lock_sites.empty();
                                     }) +
                             "); nested acquisition needs a declared "
                             "lock order"});
                    break;
                }
                (void)callee;
            }
        }

        if (local.empty())
            continue;
        if (ctx.blocking_allowlist.count(allowKey(fn)) != 0) {
            used_allowlist.insert(allowKey(fn));
            continue; // reviewed and justified
        }
        raw.insert(raw.end(), local.begin(), local.end());
    }

    findings.insert(findings.end(), raw.begin(), raw.end());

    for (const std::string &entry : ctx.blocking_allowlist) {
        if (used_allowlist.count(entry) != 0)
            continue;
        findings.push_back(
            {"", 0, R11_BlockingUnderLock,
             "blocking allowlist entry '" + entry +
                 "' is stale (function gone or no longer blocking "
                 "under a lock); remove it"});
    }
}

} // namespace

std::map<std::string, std::size_t>
computeAllocCounts(const CallGraph &graph)
{
    std::map<std::string, std::size_t> counts;
    for (std::size_t h = 0; h < graph.functions.size(); ++h) {
        if (!graph.functions[h].is_hot)
            continue;
        // Reachable set (including the hot function itself); each
        // function's direct allocation sites count exactly once.
        std::set<std::size_t> seen;
        std::deque<std::size_t> queue;
        seen.insert(h);
        queue.push_back(h);
        std::size_t total = 0;
        while (!queue.empty()) {
            const std::size_t f = queue.front();
            queue.pop_front();
            total += graph.functions[f].alloc_sites.size();
            for (const auto &callees : graph.targets[f]) {
                for (const std::size_t t : callees) {
                    if (seen.insert(t).second)
                        queue.push_back(t);
                }
            }
        }
        // Two hot functions may share a qualified name only via
        // overloads; keep the larger bound so the ratchet stays sound.
        auto [it, inserted] =
            counts.emplace(graph.functions[h].qualified, total);
        if (!inserted)
            it->second = std::max(it->second, total);
    }
    return counts;
}

std::vector<Finding>
checkCallGraph(const LintContext &ctx,
               const std::vector<FileFunctions> &files, unsigned rules)
{
    std::vector<Finding> findings;
    if ((rules & GraphRules) == 0)
        return findings;

    const CallGraph graph = buildCallGraph(files);
    if ((rules & R9_NoThrowReach) != 0)
        checkNoThrowReach(ctx, graph, findings);
    if ((rules & R10_AllocRatchet) != 0)
        checkAllocRatchet(ctx, graph, findings);
    if ((rules & R11_BlockingUnderLock) != 0)
        checkBlockingUnderLock(ctx, graph, findings);

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return findings;
}

} // namespace dnalint
