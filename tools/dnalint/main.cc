/**
 * @file
 * dnalint driver: discovers first-party sources (directory walk plus an
 * optional compile_commands.json), loads the throw-boundary whitelist,
 * runs the rules and prints findings as "path:line: [R#] message".
 *
 * Exit status: 0 clean, 1 findings, 2 usage/environment error.
 */

#include "dnalint/callgraph.hh"
#include "dnalint/dnalint.hh"
#include "dnalint/sarif.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

constexpr const char *kUsage =
    "usage: dnalint [--root DIR] [-p BUILD_DIR] [--allowlist FILE]\n"
    "               [--rules R1,R2,...] [--sarif FILE]\n"
    "               [--alloc-baseline] [--list-rules] [FILE...]\n"
    "\n"
    "Project-contract static analysis for the DNA storage toolkit.\n"
    "With no FILE arguments, walks src/ tools/ bench/ examples/ tests/\n"
    "fuzz/ under --root (default: the current directory, ascending to\n"
    "the nearest directory containing tools/dnalint_throw_allowlist.txt\n"
    "or .git).  -p adds every 'file' entry of BUILD_DIR/\n"
    "compile_commands.json that lies inside the root.\n"
    "\n"
    "--sarif FILE     also write findings as SARIF 2.1.0\n"
    "--alloc-baseline print the computed DNASTORE_HOT allocation counts\n"
    "                 in tools/dnalint_alloc_ratchet.txt format and exit\n"
    "--rule is accepted as an alias for --rules.\n";

/** Scanned trees, mirroring tools/lint.sh. */
constexpr const char *kScanDirs[] = {"src",      "tools", "bench",
                                     "examples", "tests", "fuzz"};

bool
hasSourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h";
}

std::string
readFile(const fs::path &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return "";
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ok = true;
    return buf.str();
}

/** Repo-relative path with forward slashes, or "" if outside root. */
std::string
relativeTo(const fs::path &root, const fs::path &path)
{
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    if (ec || rel.empty())
        return "";
    const std::string s = rel.generic_string();
    if (s == "." || s.rfind("..", 0) == 0)
        return "";
    return s;
}

/**
 * Minimal extraction of "file" values from compile_commands.json.  The
 * format is machine-generated and flat, so a full JSON parser is not
 * needed: scan for the "file" key and take its string value,
 * unescaping the two escapes CMake emits (\\ and \").
 */
std::vector<std::string>
compileCommandsFiles(const fs::path &json_path)
{
    bool ok = false;
    const std::string text = readFile(json_path, ok);
    std::vector<std::string> files;
    if (!ok)
        return files;
    const std::string key = "\"file\"";
    std::size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
        pos = text.find('"', text.find(':', pos + key.size()));
        if (pos == std::string::npos)
            break;
        std::string value;
        for (++pos; pos < text.size() && text[pos] != '"'; ++pos) {
            if (text[pos] == '\\' && pos + 1 < text.size())
                ++pos;
            value += text[pos];
        }
        files.push_back(std::move(value));
    }
    return files;
}

/** Entries in file order, duplicates preserved (R2 flags those). */
std::vector<std::string>
loadAllowlist(const fs::path &path, bool &ok)
{
    std::vector<std::string> allow;
    std::ifstream in(path);
    ok = static_cast<bool>(in);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                                 line.back() == '\r'))
            line.pop_back();
        std::size_t begin = 0;
        while (begin < line.size() &&
               (line[begin] == ' ' || line[begin] == '\t'))
            ++begin;
        if (begin < line.size())
            allow.push_back(line.substr(begin));
    }
    return allow;
}

/** "QualifiedName count" per line, comments and blanks as elsewhere. */
std::map<std::string, std::size_t>
loadRatchet(const fs::path &path)
{
    std::map<std::string, std::size_t> ratchet;
    bool ok = false;
    for (const std::string &entry : loadAllowlist(path, ok)) {
        const std::size_t space = entry.find_last_of(" \t");
        if (space == std::string::npos)
            continue;
        std::size_t name_end = space;
        while (name_end > 0 && (entry[name_end - 1] == ' ' ||
                                entry[name_end - 1] == '\t'))
            --name_end;
        try {
            ratchet[entry.substr(0, name_end)] =
                static_cast<std::size_t>(
                    std::stoull(entry.substr(space + 1)));
        } catch (const std::exception &) {
            std::cerr << "dnalint: bad ratchet line '" << entry
                      << "' in " << path.string() << "\n";
        }
    }
    return ratchet;
}

unsigned
parseRules(const std::string &spec, bool &ok)
{
    unsigned mask = 0;
    ok = true;
    std::stringstream ss(spec);
    std::string name;
    while (std::getline(ss, name, ',')) {
        bool matched = false;
        for (const dnalint::RuleInfo &info : dnalint::ruleTable()) {
            if (name == info.name) {
                mask |= info.rule;
                matched = true;
            }
        }
        if (!matched) {
            std::cerr << "dnalint: unknown rule '" << name << "'\n";
            ok = false;
        }
    }
    return mask;
}

/** Ascend from @p start to the nearest directory that looks like the
 *  repo root (has .git or the whitelist file). */
fs::path
findRoot(const fs::path &start)
{
    fs::path dir = fs::absolute(start);
    for (fs::path probe = dir; !probe.empty() &&
                               probe != probe.parent_path();
         probe = probe.parent_path()) {
        if (fs::exists(probe / ".git") ||
            fs::exists(probe / "tools" / "dnalint_throw_allowlist.txt"))
            return probe;
    }
    return dir;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root;
    fs::path build_dir;
    fs::path allowlist_path;
    fs::path sarif_path;
    bool alloc_baseline = false;
    unsigned rules = dnalint::AllRules;
    std::vector<std::string> explicit_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "dnalint: " << arg << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "-p" || arg == "--compile-commands") {
            build_dir = next();
        } else if (arg == "--allowlist") {
            allowlist_path = next();
        } else if (arg == "--rules" || arg == "--rule") {
            bool ok = false;
            rules = parseRules(next(), ok);
            if (!ok)
                return 2;
        } else if (arg == "--sarif") {
            sarif_path = next();
        } else if (arg == "--alloc-baseline") {
            alloc_baseline = true;
        } else if (arg == "--list-rules") {
            for (const dnalint::RuleInfo &info : dnalint::ruleTable())
                std::cout << info.name << "  " << info.summary << "\n";
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "dnalint: unknown option '" << arg << "'\n"
                      << kUsage;
            return 2;
        } else {
            explicit_files.push_back(arg);
        }
    }

    root = root.empty() ? findRoot(fs::current_path()) : fs::absolute(root);
    if (!fs::is_directory(root)) {
        std::cerr << "dnalint: root '" << root.string()
                  << "' is not a directory\n";
        return 2;
    }

    // Gather the first-party file set (always the full walk, so include
    // resolution and stale-whitelist detection see the whole project).
    std::map<std::string, fs::path> files; // rel path -> absolute
    dnalint::LintContext ctx;
    for (const char *dir : kScanDirs) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !hasSourceExtension(entry.path()))
                continue;
            const std::string rel = relativeTo(root, entry.path());
            if (!rel.empty()) {
                files.emplace(rel, entry.path());
                ctx.project_files.insert(rel);
            }
        }
    }

    if (!build_dir.empty()) {
        const fs::path json = build_dir / "compile_commands.json";
        for (const std::string &file : compileCommandsFiles(json)) {
            const fs::path p = file;
            const std::string rel = relativeTo(root, p);
            if (!rel.empty() && hasSourceExtension(p)) {
                files.emplace(rel, p);
                ctx.project_files.insert(rel);
            }
        }
    }

    // Restrict checking (not context) to explicitly named files, if any.
    std::map<std::string, fs::path> to_check;
    if (explicit_files.empty()) {
        to_check = files;
    } else {
        for (const std::string &file : explicit_files) {
            const fs::path p = fs::absolute(file);
            const std::string rel = relativeTo(root, p);
            if (rel.empty()) {
                std::cerr << "dnalint: '" << file
                          << "' is outside the root\n";
                return 2;
            }
            to_check.emplace(rel, p);
            ctx.project_files.insert(rel);
        }
    }

    if (allowlist_path.empty())
        allowlist_path = root / "tools" / "dnalint_throw_allowlist.txt";
    bool allow_ok = false;
    ctx.throw_allowlist_entries = loadAllowlist(allowlist_path, allow_ok);
    ctx.throw_allowlist.insert(ctx.throw_allowlist_entries.begin(),
                               ctx.throw_allowlist_entries.end());
    if (!allow_ok && (rules & dnalint::R2_ThrowBoundary) != 0) {
        std::cerr << "dnalint: note: no throw whitelist at '"
                  << allowlist_path.string()
                  << "'; every `throw` under src/ will be flagged\n";
    }

    // R6/R7/R9/R11 allowlists and the R10 ratchet are optional: absent
    // files mean empty lists, so every violation is flagged.
    {
        bool ok = false;
        const std::vector<std::string> lock_entries = loadAllowlist(
            root / "tools" / "dnalint_lock_allowlist.txt", ok);
        ctx.lock_allowlist.insert(lock_entries.begin(), lock_entries.end());
        const std::vector<std::string> relaxed_entries = loadAllowlist(
            root / "tools" / "dnalint_relaxed_allowlist.txt", ok);
        ctx.relaxed_allowlist.insert(relaxed_entries.begin(),
                                     relaxed_entries.end());
        const std::vector<std::string> nothrow_entries = loadAllowlist(
            root / "tools" / "dnalint_nothrow_allowlist.txt", ok);
        ctx.nothrow_allowlist.insert(nothrow_entries.begin(),
                                     nothrow_entries.end());
        const std::vector<std::string> blocking_entries = loadAllowlist(
            root / "tools" / "dnalint_blocking_allowlist.txt", ok);
        ctx.blocking_allowlist.insert(blocking_entries.begin(),
                                      blocking_entries.end());
        ctx.alloc_ratchet =
            loadRatchet(root / "tools" / "dnalint_alloc_ratchet.txt");
    }

    {
        bool ok = false;
        const std::string top =
            readFile(root / "CMakeLists.txt", ok);
        ctx.selfcontain_harness_wired =
            ok &&
            fs::exists(root / "cmake" / "HeaderSelfContainment.cmake") &&
            top.find("HeaderSelfContainment") != std::string::npos;
    }

    std::vector<dnalint::Finding> findings;
    dnalint::ProjectFacts facts;
    std::vector<dnalint::FileFunctions> extracted;
    const bool need_graph =
        (rules & dnalint::GraphRules) != 0 || alloc_baseline;
    for (const auto &[rel, abs] : to_check) {
        bool ok = false;
        const std::string content = readFile(abs, ok);
        if (!ok) {
            std::cerr << "dnalint: cannot read '" << abs.string() << "'\n";
            return 2;
        }
        std::vector<dnalint::Finding> file_findings =
            dnalint::checkFile(rel, content, ctx, rules, &facts);
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
        // The call graph covers src/ only: tools/tests/bench TUs have
        // their own entry points and would drown the no-throw contract
        // in CLI throw sites.  sync.hh is the lock vocabulary itself.
        if (need_graph && rel.rfind("src/", 0) == 0 &&
            rel != "src/util/sync.hh") {
            extracted.push_back(
                dnalint::extractFunctions(rel, dnalint::lex(content)));
        }
    }

    if (alloc_baseline) {
        const dnalint::CallGraph graph = dnalint::buildCallGraph(extracted);
        for (const auto &[name, count] :
             dnalint::computeAllocCounts(graph))
            std::cout << name << " " << count << "\n";
        return 0;
    }

    // Project-level checks only make sense over the full file set.
    if (explicit_files.empty()) {
        std::vector<dnalint::Finding> project =
            dnalint::checkProject(ctx, facts, rules);
        findings.insert(findings.end(), project.begin(), project.end());
        std::vector<dnalint::Finding> graph_findings =
            dnalint::checkCallGraph(ctx, extracted, rules);
        findings.insert(findings.end(), graph_findings.begin(),
                        graph_findings.end());
    }

    for (const dnalint::Finding &finding : findings)
        std::cout << dnalint::format(finding) << "\n";

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path);
        if (!out) {
            std::cerr << "dnalint: cannot write SARIF to '"
                      << sarif_path.string() << "'\n";
            return 2;
        }
        out << dnalint::toSarif(findings);
    }

    if (findings.empty()) {
        std::cout << "dnalint: OK (" << to_check.size() << " files, rules";
        for (const dnalint::RuleInfo &info : dnalint::ruleTable()) {
            if ((rules & info.rule) != 0)
                std::cout << " " << info.name;
        }
        std::cout << ")\n";
        return 0;
    }
    std::cerr << "dnalint: " << findings.size() << " finding(s)\n";
    return 1;
}
