#include "dnalint/sarif.hh"

namespace dnalint
{

namespace
{

/** JSON string escape (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xF];
                out += kHex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Map a rule to the SARIF problem severity. */
const char *
sarifLevel(Rule rule)
{
    // Every dnalint finding gates CI, so everything is an error; the
    // distinction SARIF consumers care about is error vs note, and a
    // ratcheted count that *dropped* (R10 instructs an update) is the
    // only advisory shape — but it still fails CI, so keep it error.
    (void)rule;
    return "error";
}

} // namespace

std::string
toSarif(const std::vector<Finding> &findings)
{
    std::string out;
    out +=
        "{\n"
        "  \"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"dnalint\",\n"
        "          \"informationUri\": "
        "\"https://github.com/dnastore/dnastore\",\n"
        "          \"rules\": [\n";

    const std::vector<RuleInfo> &rules = ruleTable();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += "            {\n";
        out += "              \"id\": \"" +
               jsonEscape(rules[i].name) + "\",\n";
        out += "              \"shortDescription\": { \"text\": \"" +
               jsonEscape(rules[i].summary) + "\" }\n";
        out += "            }";
        out += i + 1 < rules.size() ? ",\n" : "\n";
    }
    out +=
        "          ]\n"
        "        }\n"
        "      },\n"
        "      \"results\": [\n";

    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "        {\n";
        out += "          \"ruleId\": \"" +
               jsonEscape(ruleName(f.rule)) + "\",\n";
        out += "          \"level\": \"" +
               std::string(sarifLevel(f.rule)) + "\",\n";
        out += "          \"message\": { \"text\": \"" +
               jsonEscape(f.message) + "\" }";
        if (!f.file.empty()) {
            out += ",\n          \"locations\": [\n";
            out += "            {\n";
            out += "              \"physicalLocation\": {\n";
            out += "                \"artifactLocation\": { \"uri\": \"" +
                   jsonEscape(f.file) + "\" }";
            if (f.line > 0) {
                out += ",\n                \"region\": { \"startLine\": " +
                       std::to_string(f.line) + " }";
            }
            out += "\n              }\n";
            out += "            }\n";
            out += "          ]\n";
        } else {
            out += "\n";
        }
        out += "        }";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }

    out +=
        "      ],\n"
        "      \"columnKind\": \"utf16CodeUnits\"\n"
        "    }\n"
        "  ]\n"
        "}\n";
    return out;
}

} // namespace dnalint
