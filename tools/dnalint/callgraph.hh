/**
 * @file
 * dnalint interprocedural call-graph engine (rules R9-R11).
 *
 * A lightweight function extractor built on the dnalint lexer
 * (tools/dnalint/dnalint.hh): it recognises function definitions
 * (free functions, in-class and out-of-line methods, templates with
 * trailing return types, constructors with init lists), records each
 * body's qualified call sites, `throw` statements, allocation
 * expressions, direct I/O primitives and MutexLock scopes, and links
 * everything into a whole-src/ call graph.  Three interprocedural
 * rules run on top:
 *
 *   R9  no-throw reachability — from the no-throw entry points
 *       (Pipeline::run, Pipeline::runFromReads, Server::serve, every
 *       public Archive method) no call path may reach a `throw`
 *       statement outside the
 *       R2 boundary whitelist or a known-throwing stdlib call
 *       (vector::at, stoi/stod family, substr with a non-zero start)
 *       outside tools/dnalint_nothrow_allowlist.txt; findings print
 *       the full call chain;
 *   R10 hot-path allocation ratchet — functions marked DNASTORE_HOT
 *       (src/util/hot.hh) are scanned transitively for `new`,
 *       unreserved push_back/emplace_back, std::string temporaries and
 *       std::function uses; per-function counts are pinned in
 *       tools/dnalint_alloc_ratchet.txt and may never increase;
 *   R11 blocking-under-lock — inside a MutexLock scope, calls that
 *       transitively reach file I/O, ThreadPool::submit or another
 *       mutex acquisition are findings unless the enclosing function
 *       is justified in tools/dnalint_blocking_allowlist.txt.
 *
 * Known limitations (see docs/STATIC_ANALYSIS.md): virtual and
 * function-pointer dispatch is over-approximated by name (a member
 * call `x.reconstruct(...)` links to every method named reconstruct),
 * calls through std::function values are invisible, and a catch block
 * is assumed to handle everything thrown below it.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dnalint/dnalint.hh"

namespace dnalint
{

/** Allocation-expression flavours the R10 ratchet counts. */
enum class AllocKind : std::uint8_t
{
    New,        //!< `new` expression.
    PushBack,   //!< push_back/emplace_back with no prior reserve().
    StringTemp, //!< std::string(...) temporary construction.
    StdFunction //!< std::function declaration or temporary (captures).
};

/** Human name of an allocation kind ("new", "push_back", ...). */
const char *allocKindName(AllocKind kind);

/** One call expression inside a function body. */
struct CallSite
{
    std::string written;  //!< As written: "strand::tryToBytes" or "f".
    std::string name;     //!< Last component ("tryToBytes").
    std::size_t line = 0;
    bool member = false;  //!< Via `.` or `->` (virtual-ish dispatch).
    bool in_try = false;  //!< Lexically inside a try block.
    bool under_lock = false; //!< Inside an active MutexLock scope.
    /** True when the first argument is the literal 0 (substr(0, n) can
     *  never throw: pos == 0 <= size() always holds). */
    bool first_arg_zero = false;
};

/** One direct `throw` statement. */
struct ThrowSite
{
    std::size_t line = 0;
    bool in_try = false;
};

/** One allocation expression (R10). */
struct AllocSite
{
    AllocKind kind = AllocKind::New;
    std::size_t line = 0;
};

/** One direct blocking primitive: I/O or a mutex acquisition (R11). */
struct BlockSite
{
    std::size_t line = 0;
    bool under_lock = false;
    std::string what; //!< "std::ofstream", "MutexLock", ".lock()", ...
};

/** One extracted function definition. */
struct FunctionInfo
{
    std::string qualified;  //!< Scope-joined ("dnastore::Archive::get").
    std::string name;       //!< Last component ("get").
    std::string file;       //!< Repo-relative path of the definition.
    std::size_t line = 0;
    bool is_noexcept = false; //!< Carries a noexcept spec (not (false)).
    bool is_hot = false;      //!< Declared DNASTORE_HOT.
    std::string class_name;   //!< Innermost class scope ("" for free).
    std::vector<CallSite> calls;
    std::vector<ThrowSite> throw_sites;
    std::vector<AllocSite> alloc_sites;
    std::vector<BlockSite> io_sites;   //!< Direct stream/FILE/fs I/O.
    std::vector<BlockSite> lock_sites; //!< MutexLock scopes, .lock().
};

/** A method declaration harvested from a class body (access audit). */
struct MethodDecl
{
    std::string class_name;
    std::string name;
    bool is_public = false;
};

/** Everything extracted from one file. */
struct FileFunctions
{
    std::vector<FunctionInfo> functions;
    std::vector<MethodDecl> method_decls;
};

/**
 * Extract function definitions and method declarations from lexed
 * source.  @p rel_path is recorded on every function (repo-relative,
 * forward slashes).  src/util/sync.hh is skipped by callers: its
 * Mutex/MutexLock forwarding shims would pollute the graph with the
 * primitives the rules look for.
 */
FileFunctions extractFunctions(const std::string &rel_path,
                               const std::vector<Token> &tokens);

/** The whole-project call graph. */
struct CallGraph
{
    std::vector<FunctionInfo> functions;
    std::vector<MethodDecl> method_decls;
    /** Resolved callee indices per function per call site:
     *  targets[f][c] lists functions call site c of function f may
     *  reach (empty for stdlib / unresolved calls). */
    std::vector<std::vector<std::vector<std::size_t>>> targets;

    /** Indices of functions matching a component-suffix qualified name
     *  ("Pipeline::run" matches "dnastore::Pipeline::run"). */
    std::vector<std::size_t> findBySuffix(const std::string &written) const;
};

/** Link extracted files into a call graph (name-based resolution). */
CallGraph buildCallGraph(const std::vector<FileFunctions> &files);

/**
 * Transitive R10 allocation-site counts, one entry per DNASTORE_HOT
 * function (keyed by qualified name): direct allocation expressions of
 * the hot function plus those of every project function it can reach.
 */
std::map<std::string, std::size_t>
computeAllocCounts(const CallGraph &graph);

/**
 * Run the interprocedural rules selected in @p rules (R9, R10, R11)
 * over the extracted file set.  Uses ctx.throw_allowlist (R2 boundary
 * files own their `throw` statements), ctx.nothrow_allowlist,
 * ctx.alloc_ratchet and ctx.blocking_allowlist; reports stale
 * allowlist/ratchet entries like R2/R6/R7 do.
 */
std::vector<Finding> checkCallGraph(const LintContext &ctx,
                                    const std::vector<FileFunctions> &files,
                                    unsigned rules);

} // namespace dnalint
