/**
 * @file
 * SARIF 2.1.0 rendering of dnalint findings.
 *
 * One run, one tool ("dnalint"), every rule from ruleTable() listed as
 * a reportingDescriptor, one result per finding with a physicalLocation
 * (project-level findings carry no location).  The output validates
 * against the sarif-2.1.0 schema; tools/check_sarif.py asserts the
 * structural constraints in CI and github/codeql-action/upload-sarif
 * turns the results into inline PR annotations.
 */

#pragma once

#include <string>
#include <vector>

#include "dnalint/dnalint.hh"

namespace dnalint
{

/** Render findings as a complete SARIF 2.1.0 log (pretty-printed). */
std::string toSarif(const std::vector<Finding> &findings);

} // namespace dnalint
