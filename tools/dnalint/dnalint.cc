#include "dnalint/dnalint.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

namespace dnalint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Two-character punctuators the rules care about keeping atomic. */
bool
isTwoCharPunct(char a, char b)
{
    static constexpr std::array<const char *, 12> kPairs = {
        "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "[[",
        "]]"};
    return std::any_of(kPairs.begin(), kPairs.end(),
                       [a, b](const char *p) {
                           return p[0] == a && p[1] == b;
                       });
}

/** True when the only characters on the line before @p pos are blanks. */
bool
atLineStart(const std::string &s, std::size_t pos)
{
    while (pos > 0) {
        const char c = s[pos - 1];
        if (c == '\n')
            return true;
        if (c != ' ' && c != '\t')
            return false;
        --pos;
    }
    return true;
}

} // namespace

std::vector<Token>
lex(const std::string &content)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = content.size();

    auto peek = [&](std::size_t ahead) -> char {
        return i + ahead < n ? content[i + ahead] : '\0';
    };

    // Phase-2 line splice: backslash-newline disappears before
    // tokenisation, so an identifier (or anything else) may be split
    // across physical lines.  Used at token boundaries and inside
    // identifier/number scans.
    auto atSplice = [&](std::size_t pos) {
        if (pos + 1 < n && content[pos] == '\\' && content[pos + 1] == '\n')
            return true;
        // Tolerate CRLF sources: backslash, CR, LF.
        return pos + 2 < n && content[pos] == '\\' &&
               content[pos + 1] == '\r' && content[pos + 2] == '\n';
    };
    auto skipSplice = [&](std::size_t pos) {
        ++line;
        return content[pos + 1] == '\r' ? pos + 3 : pos + 2;
    };

    while (i < n) {
        const char c = content[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (atSplice(i)) {
            i = skipSplice(i);
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }
        // Line comment (a splice continues it onto the next line).
        if (c == '/' && peek(1) == '/') {
            while (i < n && content[i] != '\n') {
                if (atSplice(i)) {
                    i = skipSplice(i);
                    continue;
                }
                ++i;
            }
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(content[i] == '*' && peek(1) == '/')) {
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            i = std::min(i + 2, n);
            continue;
        }
        // Preprocessor directive: fold the whole logical line.
        if (c == '#' && atLineStart(content, i)) {
            Token tok{TokenKind::Directive, "", line};
            while (i < n) {
                if (content[i] == '\\' && peek(1) == '\n') {
                    tok.text += ' ';
                    i += 2;
                    ++line;
                    continue;
                }
                if (content[i] == '\n')
                    break;
                // Strip line comments inside the directive.
                if (content[i] == '/' && peek(1) == '/') {
                    while (i < n && content[i] != '\n')
                        ++i;
                    break;
                }
                tok.text += content[i];
                ++i;
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        // Raw string literal: (u8|u|U|L)?R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"' &&
            (tokens.empty() || tokens.back().text != "#include")) {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(' && delim.size() < 16)
                delim += content[j++];
            const std::string close = ")" + delim + "\"";
            std::size_t end = content.find(close, j);
            if (end == std::string::npos)
                end = n;
            else
                end += close.size();
            line += static_cast<std::size_t>(
                std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                           content.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(end, n)),
                           '\n'));
            i = end;
            continue;
        }
        // String / character literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < n && content[i] != quote) {
                if (content[i] == '\\' && i + 1 < n)
                    ++i;
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            ++i; // closing quote
            continue;
        }
        if (isIdentStart(c)) {
            Token tok{TokenKind::Identifier, "", line};
            while (i < n) {
                if (atSplice(i)) {
                    // thr\<newline>ow is one identifier after phase 2.
                    i = skipSplice(i);
                    continue;
                }
                if (!isIdentChar(content[i]))
                    break;
                tok.text += content[i++];
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            Token tok{TokenKind::Number, "", line};
            while (i < n) {
                if (atSplice(i)) {
                    i = skipSplice(i);
                    continue;
                }
                if (!(isIdentChar(content[i]) || content[i] == '.' ||
                      content[i] == '\''))
                    break;
                const char d = content[i];
                tok.text += d;
                ++i;
                if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i < n &&
                    (content[i] == '+' || content[i] == '-'))
                    tok.text += content[i++];
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        // Digraphs translate in phase 3, before token formation:
        // <% %> <: :> are { } [ ].  The C++11 carve-out keeps
        // `vector<::std::string>` working: <:: followed by anything but
        // ':' or '>' lexes as `<` `::`, not `[:`.
        if (c == '<' && peek(1) == '%') {
            tokens.push_back({TokenKind::Punct, "{", line});
            i += 2;
            continue;
        }
        if (c == '%' && peek(1) == '>') {
            tokens.push_back({TokenKind::Punct, "}", line});
            i += 2;
            continue;
        }
        if (c == '<' && peek(1) == ':') {
            if (peek(2) == ':' && peek(3) != ':' && peek(3) != '>') {
                tokens.push_back({TokenKind::Punct, "<", line});
                ++i;
                continue;
            }
            tokens.push_back({TokenKind::Punct, "[", line});
            i += 2;
            continue;
        }
        if (c == ':' && peek(1) == '>') {
            tokens.push_back({TokenKind::Punct, "]", line});
            i += 2;
            continue;
        }
        // Punctuation.
        Token tok{TokenKind::Punct, "", line};
        if (isTwoCharPunct(c, peek(1))) {
            tok.text = {c, peek(1)};
            i += 2;
        } else {
            tok.text = {c};
            ++i;
        }
        tokens.push_back(std::move(tok));
    }
    return tokens;
}

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {R1_Nodiscard, "R1",
         "value-returning try*/decode*/encode*/to*/from*/make*/create* "
         "APIs in src/ public headers must be [[nodiscard]]"},
        {R2_ThrowBoundary, "R2",
         "`throw` only in whitelisted boundary files "
         "(tools/dnalint_throw_allowlist.txt); stale entries flagged"},
        {R3_SelfContainment, "R3",
         "header self-containment harness "
         "(cmake/HeaderSelfContainment.cmake) must be wired into the "
         "top-level build"},
        {R4_IncludeHygiene, "R4",
         "project headers included by full path from src/; headers open "
         "with #pragma once"},
        {R5_SeedAudit, "R5",
         "no ad-hoc randomness (rand/srand/mt19937/random_device/"
         "time(NULL)) outside src/util/random"},
        {R6_LockDiscipline, "R6",
         "mutex members need a DNASTORE_GUARDED_BY peer (or an entry in "
         "tools/dnalint_lock_allowlist.txt); no naked .lock()/.unlock() "
         "outside the RAII guard types"},
        {R7_AtomicOrder, "R7",
         "atomic load/store/RMW must spell an explicit memory_order; "
         "relaxed only in files on tools/dnalint_relaxed_allowlist.txt"},
        {R8_Layering, "R8",
         "src/ module includes must follow the declared layering DAG "
         "(obs < util < dna/ecc < nn/codec/clustering/reconstruction < "
         "simulator/wetlab < core < archive < server); stale exemptions "
         "flagged"},
        {R9_NoThrowReach, "R9",
         "no call path from Pipeline::run/runFromReads, Server::serve, "
         "or a public Archive method may reach a `throw` or a "
         "known-throwing stdlib call (at/stoi/stod/substr) outside the "
         "allowlists; the offending call chain is printed"},
        {R10_AllocRatchet, "R10",
         "transitive allocation-site counts of DNASTORE_HOT functions "
         "(new, unreserved push_back, std::string temporaries, "
         "std::function) are pinned in tools/dnalint_alloc_ratchet.txt "
         "and may never increase"},
        {R11_BlockingUnderLock, "R11",
         "inside a MutexLock scope no call may transitively reach file "
         "I/O, ThreadPool::submit or another mutex acquisition "
         "(tools/dnalint_blocking_allowlist.txt holds the reviewed "
         "exceptions)"},
    };
    return kTable;
}

const char *
ruleName(Rule rule)
{
    for (const RuleInfo &info : ruleTable()) {
        if (info.rule == rule)
            return info.name;
    }
    return "R?";
}

std::string
format(const Finding &finding)
{
    std::string out = finding.file.empty() ? "(project)" : finding.file;
    out += ':';
    out += std::to_string(finding.line);
    out += ": [";
    out += ruleName(finding.rule);
    out += "] ";
    out += finding.message;
    return out;
}

const std::vector<std::string> &
layeringExemptHeaders()
{
    // The layer-free annotation vocabulary: pure macro/vocabulary
    // headers any module may include without creating a dependency
    // edge.  Keep this list tiny — every entry must keep earning its
    // exemption (checkProject flags entries that stop crossing layers).
    static const std::vector<std::string> kExempt = {
        "src/util/sync.hh",
        "src/util/thread_annotations.hh",
        "src/util/hot.hh",
    };
    return kExempt;
}

namespace
{

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::string suf = suffix;
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool
isHeaderPath(const std::string &rel_path)
{
    return endsWith(rel_path, ".hh") || endsWith(rel_path, ".h");
}

/** First path component ("src" for "src/ecc/gf256.hh"). */
std::string
topDir(const std::string &rel_path)
{
    const std::size_t slash = rel_path.find('/');
    return slash == std::string::npos ? std::string()
                                      : rel_path.substr(0, slash);
}

/** True for names the R1 fallible-API pattern covers. */
bool
isFallibleApiName(const std::string &name)
{
    static constexpr std::array<const char *, 7> kPrefixes = {
        "try", "decode", "encode", "to", "from", "make", "create"};
    for (const char *prefix : kPrefixes) {
        const std::size_t len = std::char_traits<char>::length(prefix);
        if (name.size() < len || name.compare(0, len, prefix) != 0)
            continue;
        // Exact match ("decode") or camelCase continuation
        // ("tryToBytes"); "total"/"tolerance" style names stay exempt.
        if (name.size() == len)
            return true;
        if (std::isupper(static_cast<unsigned char>(name[len])) != 0)
            return true;
    }
    return false;
}

bool
isDeclKeyword(const std::string &t)
{
    static const std::set<std::string> kKeywords = {
        "virtual", "static",    "inline", "constexpr", "consteval",
        "explicit", "friend",   "extern", "typename",  "const",
        "volatile", "unsigned", "signed", "struct",    "class",
        "enum",     "mutable"};
    return kKeywords.count(t) != 0;
}

/** Tokens that terminate the backwards scan for a declaration start. */
bool
isDeclBoundary(const std::vector<Token> &tokens, std::size_t j)
{
    const Token &tok = tokens[j];
    if (tok.kind == TokenKind::Directive)
        return true;
    if (tok.kind != TokenKind::Punct)
        return false;
    if (tok.text == ";" || tok.text == "{" || tok.text == "}")
        return true;
    if (tok.text == ":" && j > 0 &&
        (tokens[j - 1].text == "public" || tokens[j - 1].text == "private" ||
         tokens[j - 1].text == "protected"))
        return true;
    return false;
}

void
checkNodiscard(const std::string &rel_path, const std::vector<Token> &tokens,
               std::vector<Finding> &findings)
{
    static const std::set<std::string> kCallPrev = {
        "return", "throw", "new",  "case", "goto", "=",  "(",  ",",
        ".",      "->",    "::",   "!",    "&&",   "||", "?",  ":",
        "+",      "-",     "/",    "%",    "<",    "<=", ">=", "==",
        "!=",     "<<",    "[",    "{",    ";"};

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != TokenKind::Identifier ||
            !isFallibleApiName(tok.text) || tokens[i + 1].text != "(")
            continue;

        // A declaration's name is preceded by its return type (an
        // identifier, '>', '&' or '*'); anything else is a call site or
        // expression, which R1 leaves to the compiler.
        if (i == 0)
            continue;
        const Token &prev = tokens[i - 1];
        if (kCallPrev.count(prev.text) != 0)
            continue;
        // ">>" closes nested template arguments, e.g.
        // optional<vector<uint8_t>> tryToBytes(...).
        if (prev.kind != TokenKind::Identifier && prev.text != ">" &&
            prev.text != ">>" && prev.text != "&" && prev.text != "*" &&
            prev.text != "]]")
            continue;
        if (prev.kind == TokenKind::Identifier && isDeclKeyword(prev.text) &&
            prev.text != "unsigned" && prev.text != "signed" &&
            prev.text != "const")
            continue;

        // Scan back to the start of the declaration.
        std::size_t start = i;
        while (start > 0 && !isDeclBoundary(tokens, start - 1))
            --start;

        bool has_nodiscard = false;
        bool returns_void = false;
        for (std::size_t j = start; j < i; ++j) {
            if (tokens[j].text == "nodiscard")
                has_nodiscard = true;
            if (tokens[j].text == "void") {
                // void* / void& would still return a value.
                returns_void = true;
                for (std::size_t p = j + 1; p < i; ++p) {
                    if (tokens[p].text == "*" || tokens[p].text == "&")
                        returns_void = false;
                }
            }
            // Type aliases and macro bodies are not declarations.
            if (tokens[j].text == "using" || tokens[j].text == "typedef")
                returns_void = true;
        }
        if (has_nodiscard || returns_void)
            continue;

        findings.push_back(
            {rel_path, tok.line, R1_Nodiscard,
             "'" + tok.text +
                 "' returns a value and matches the fallible-API pattern; "
                 "declare it [[nodiscard]] so callers cannot drop the "
                 "result"});
    }
}

void
checkThrow(const std::string &rel_path, const std::vector<Token> &tokens,
           const LintContext &ctx, std::vector<Finding> &findings,
           ProjectFacts *facts)
{
    if (!startsWith(rel_path, "src/"))
        return;
    bool has_throw = false;
    for (const Token &tok : tokens) {
        if (tok.kind != TokenKind::Identifier || tok.text != "throw")
            continue;
        has_throw = true;
        if (ctx.throw_allowlist.count(rel_path) == 0) {
            findings.push_back(
                {rel_path, tok.line, R2_ThrowBoundary,
                 "`throw` outside the boundary whitelist; return a "
                 "StageStatus/std::optional failure instead, or add the "
                 "file to tools/dnalint_throw_allowlist.txt with a "
                 "justification"});
        }
    }
    if (has_throw && facts != nullptr)
        facts->throw_files.insert(rel_path);
}

/** Trim and squeeze directive whitespace: "#  pragma  once" -> tokens. */
std::vector<std::string>
directiveWords(const std::string &text)
{
    std::vector<std::string> words;
    std::string cur;
    for (const char c : text) {
        if (c == ' ' || c == '\t') {
            if (!cur.empty())
                words.push_back(std::move(cur));
            cur.clear();
        } else if (c == '#' && words.empty() && cur.empty()) {
            words.emplace_back("#");
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        words.push_back(std::move(cur));
    return words;
}

/** Extract the quoted path of an #include "..." directive ("" if none). */
std::string
quotedIncludePath(const std::string &directive)
{
    const std::size_t open = directive.find('"');
    if (open == std::string::npos)
        return "";
    const std::size_t close = directive.find('"', open + 1);
    if (close == std::string::npos)
        return "";
    return directive.substr(open + 1, close - open - 1);
}

void
checkIncludeHygiene(const std::string &rel_path,
                    const std::vector<Token> &tokens, const LintContext &ctx,
                    std::vector<Finding> &findings)
{
    const std::string top = topDir(rel_path);
    const std::string dir =
        rel_path.substr(0, rel_path.find_last_of('/') + 1);

    bool saw_directive = false;
    bool pragma_once_first = false;
    for (const Token &tok : tokens) {
        if (tok.kind != TokenKind::Directive)
            continue;
        const std::vector<std::string> words = directiveWords(tok.text);
        if (words.size() < 2 || words[0] != "#")
            continue;

        if (!saw_directive) {
            saw_directive = true;
            pragma_once_first = words[1] == "pragma" && words.size() >= 3 &&
                                words[2] == "once";
            if (isHeaderPath(rel_path) && !pragma_once_first) {
                const bool guard = words[1] == "ifndef";
                findings.push_back(
                    {rel_path, tok.line, R4_IncludeHygiene,
                     guard ? "header uses an #ifndef include guard; the "
                             "project convention is #pragma once as the "
                             "first directive"
                           : "header must open with #pragma once before "
                             "any other directive"});
            }
        }

        if (words[1] != "include")
            continue;
        const std::string inc = quotedIncludePath(tok.text);
        if (inc.empty())
            continue; // angle include: system header, out of scope
        // src/ and tools/ are the build's global -I roots; any tree may
        // include from them by root-relative path.
        if (ctx.project_files.count("src/" + inc) != 0 ||
            ctx.project_files.count("tools/" + inc) != 0)
            continue;
        if (!top.empty() && top != "src" &&
            ctx.project_files.count(top + "/" + inc) != 0)
            continue;
        if (ctx.project_files.count(dir + inc) != 0) {
            findings.push_back(
                {rel_path, tok.line, R4_IncludeHygiene,
                 "include \"" + inc + "\" is relative to the including "
                 "file; include project headers by their full path (\"" +
                     dir.substr(top == "src" ? 4 : top.size() + 1) + inc +
                     "\")"});
        } else {
            findings.push_back(
                {rel_path, tok.line, R4_IncludeHygiene,
                 "quoted include \"" + inc +
                     "\" does not resolve to a first-party file (use "
                     "<...> for system headers)"});
        }
    }

    if (isHeaderPath(rel_path) && !saw_directive) {
        findings.push_back({rel_path, 1, R4_IncludeHygiene,
                            "header must open with #pragma once"});
    }
}

void
checkSeedAudit(const std::string &rel_path, const std::vector<Token> &tokens,
               std::vector<Finding> &findings)
{
    // The one seeded randomness source; everything else must go through
    // its Rng so a run reproduces from a single 64-bit seed.
    if (startsWith(rel_path, "src/util/random"))
        return;

    static const std::set<std::string> kBanned = {
        "rand",          "srand",        "drand48",      "lrand48",
        "random_device", "mt19937",      "mt19937_64",   "minstd_rand",
        "minstd_rand0",  "ranlux24",     "ranlux48",     "random_shuffle",
        "default_random_engine"};

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        if (kBanned.count(tok.text) != 0) {
            findings.push_back(
                {rel_path, tok.line, R5_SeedAudit,
                 "ad-hoc randomness '" + tok.text +
                     "' outside src/util/random; draw from the seeded "
                     "dnastore::Rng instead"});
        }
        // time(NULL) / time(nullptr) wall-clock seeding.
        if (tok.text == "time" && i + 2 < tokens.size() &&
            tokens[i + 1].text == "(" &&
            (tokens[i + 2].text == "NULL" ||
             tokens[i + 2].text == "nullptr")) {
            findings.push_back(
                {rel_path, tok.line, R5_SeedAudit,
                 "wall-clock seeding via time(...); runs must reproduce "
                 "from the explicit 64-bit seed"});
        }
    }
}

/** The one sanctioned home of a bare std::mutex (R6). */
bool
isSyncVocabularyHeader(const std::string &rel_path)
{
    return rel_path == "src/util/sync.hh" ||
           rel_path == "src/util/thread_annotations.hh";
}

/** True when @p rel_path is an R8 layer-free vocabulary header. */
bool
isLayeringExempt(const std::string &rel_path)
{
    const std::vector<std::string> &exempt = layeringExemptHeaders();
    return std::find(exempt.begin(), exempt.end(), rel_path) !=
           exempt.end();
}

/** Mutex-ish type names whose variable declarations R6 audits. */
bool
isMutexTypeName(const std::string &name)
{
    return name == "mutex" || name == "shared_mutex" ||
           name == "recursive_mutex" || name == "timed_mutex" ||
           name == "Mutex" || name == "SharedMutex";
}

void
checkLockDiscipline(const std::string &rel_path,
                    const std::vector<Token> &tokens, const LintContext &ctx,
                    std::vector<Finding> &findings, ProjectFacts *facts)
{
    if (!startsWith(rel_path, "src/") || isSyncVocabularyHeader(rel_path))
        return;

    // Pass 1: every identifier that appears inside a
    // DNASTORE_GUARDED_BY(...) / DNASTORE_PT_GUARDED_BY(...) argument
    // list names a mutex some member is guarded by.
    std::set<std::string> guarded_by_names;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            (tokens[i].text != "DNASTORE_GUARDED_BY" &&
             tokens[i].text != "DNASTORE_PT_GUARDED_BY") ||
            tokens[i + 1].text != "(")
            continue;
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            if (tokens[j].text == "(") {
                ++depth;
            } else if (tokens[j].text == ")") {
                if (--depth == 0)
                    break;
            } else if (tokens[j].kind == TokenKind::Identifier) {
                guarded_by_names.insert(tokens[j].text);
            }
        }
    }

    // Pass 2: mutex variable declarations.  A declaration is the type
    // name, optionally wrapped (unique_ptr<Mutex>, Mutex &, ...), then
    // the variable name, then ';', '=' or '{' — parameters and template
    // arguments (next token '(' ')' ',' '>') never match.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != TokenKind::Identifier ||
            !isMutexTypeName(tokens[i].text))
            continue;
        std::size_t j = i + 1;
        while (j < tokens.size() &&
               (tokens[j].text == ">" || tokens[j].text == ">>" ||
                tokens[j].text == "*" || tokens[j].text == "&"))
            ++j;
        if (j + 1 >= tokens.size() ||
            tokens[j].kind != TokenKind::Identifier)
            continue;
        const std::string &name = tokens[j].text;
        const std::string &after = tokens[j + 1].text;
        if (after != ";" && after != "=" && after != "{")
            continue;
        if (guarded_by_names.count(name) != 0)
            continue;
        const std::string key = rel_path + ":" + name;
        if (facts != nullptr)
            facts->unguarded_mutexes.insert(key);
        if (ctx.lock_allowlist.count(key) != 0)
            continue;
        findings.push_back(
            {rel_path, tokens[j].line, R6_LockDiscipline,
             "mutex '" + name +
                 "' has no DNASTORE_GUARDED_BY peer; annotate the data "
                 "it guards (util/thread_annotations.hh) or add '" + key +
                 "' to tools/dnalint_lock_allowlist.txt with a "
                 "justification"});
    }

    // Pass 3: naked .lock()/.unlock() calls.  RAII guard types
    // (MutexLock, std::lock_guard, std::unique_lock) keep acquire and
    // release paired on every path; a naked call does not.
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text != "." && tokens[i].text != "->")
            continue;
        const Token &member = tokens[i + 1];
        if (member.kind != TokenKind::Identifier ||
            (member.text != "lock" && member.text != "unlock") ||
            tokens[i + 2].text != "(")
            continue;
        findings.push_back(
            {rel_path, member.line, R6_LockDiscipline,
             "naked ." + member.text +
                 "() call; use a scoped guard (MutexLock) so acquire and "
                 "release stay paired on every path"});
    }
}

/** Atomic member operations whose memory_order R7 audits. */
bool
isAtomicOpName(const std::string &name)
{
    return name == "load" || name == "store" || name == "exchange" ||
           name == "fetch_add" || name == "fetch_sub" ||
           name == "fetch_and" || name == "fetch_or" ||
           name == "fetch_xor" || name == "compare_exchange_weak" ||
           name == "compare_exchange_strong" || name == "test_and_set";
}

void
checkAtomicOrder(const std::string &rel_path,
                 const std::vector<Token> &tokens, const LintContext &ctx,
                 std::vector<Finding> &findings, ProjectFacts *facts)
{
    if (!startsWith(rel_path, "src/"))
        return;

    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        // Member-call syntax only: std::exchange / free functions named
        // like the ops are preceded by '::' or nothing, not '.'/'->'.
        if (tokens[i].text != "." && tokens[i].text != "->")
            continue;
        const Token &op = tokens[i + 1];
        if (op.kind != TokenKind::Identifier || !isAtomicOpName(op.text) ||
            tokens[i + 2].text != "(")
            continue;

        bool has_order = false;
        bool has_relaxed = false;
        std::size_t depth = 0;
        std::size_t relaxed_line = op.line;
        for (std::size_t j = i + 2; j < tokens.size(); ++j) {
            if (tokens[j].text == "(") {
                ++depth;
            } else if (tokens[j].text == ")") {
                if (--depth == 0)
                    break;
            } else if (tokens[j].kind == TokenKind::Identifier &&
                       tokens[j].text.rfind("memory_order", 0) == 0) {
                has_order = true;
                // memory_order_relaxed or memory_order::relaxed.
                if (tokens[j].text == "memory_order_relaxed" ||
                    (tokens[j].text == "memory_order" &&
                     j + 2 < tokens.size() && tokens[j + 1].text == "::" &&
                     tokens[j + 2].text == "relaxed")) {
                    has_relaxed = true;
                    relaxed_line = tokens[j].line;
                }
            }
        }

        if (!has_order) {
            findings.push_back(
                {rel_path, op.line, R7_AtomicOrder,
                 "atomic ." + op.text +
                     "() with implicit memory_order_seq_cst; spell the "
                     "order explicitly (seq_cst costs a full fence on the "
                     "hot path — relaxed/acquire/release is usually what "
                     "is meant)"});
            continue;
        }
        if (has_relaxed) {
            if (facts != nullptr)
                facts->relaxed_files.insert(rel_path);
            if (ctx.relaxed_allowlist.count(rel_path) == 0) {
                findings.push_back(
                    {rel_path, relaxed_line, R7_AtomicOrder,
                     "memory_order_relaxed outside the reviewed "
                     "allowlist; add '" + rel_path +
                         "' to tools/dnalint_relaxed_allowlist.txt with "
                         "a justification for why no ordering is "
                         "needed"});
            }
        }
    }
}

/**
 * R8: the declared module layering DAG.  An include may only point at a
 * strictly lower rank (or stay within the including module); equal-rank
 * cross-module includes are the "sideways-illegal" cycle seeds the rule
 * exists to stop.  Mirrors the real dependency structure: obs is the
 * bottom library (links only Threads), util builds on it, the data
 * layers stack above, core's Pipeline orchestrates the codec/clustering
 * stages, archive sits on top of the pipeline, and server (the network
 * daemon) sits on top of archive: archive code must never reach up into
 * the wire protocol or the scheduler.
 */
int
moduleRank(const std::string &module)
{
    static const std::map<std::string, int> kRanks = {
        {"obs", 0},     {"util", 1},           {"dna", 2},
        {"ecc", 2},     {"nn", 3},             {"codec", 3},
        {"clustering", 3}, {"reconstruction", 3}, {"simulator", 4},
        {"wetlab", 4},  {"core", 5},           {"archive", 6},
        {"server", 7},
    };
    const auto it = kRanks.find(module);
    return it == kRanks.end() ? -1 : it->second;
}

void
checkLayering(const std::string &rel_path, const std::vector<Token> &tokens,
              std::vector<Finding> &findings, ProjectFacts *facts)
{
    if (!startsWith(rel_path, "src/"))
        return;
    // rel_path is "src/<module>/...".
    const std::string below = rel_path.substr(4);
    const std::string self = topDir(below);
    const int self_rank = moduleRank(self);
    if (self_rank < 0)
        return; // Unknown module: R8 has no declared edges to enforce.

    for (const Token &tok : tokens) {
        if (tok.kind != TokenKind::Directive)
            continue;
        const std::vector<std::string> words = directiveWords(tok.text);
        if (words.size() < 2 || words[0] != "#" || words[1] != "include")
            continue;
        const std::string inc = quotedIncludePath(tok.text);
        if (inc.empty())
            continue; // Angle include: system header, out of scope.
        if (isLayeringExempt("src/" + inc)) {
            // Layer-free vocabulary.  Record when the exemption did
            // real work (the include would otherwise cross the DAG) so
            // checkProject can flag exemptions that have gone stale.
            const std::string target = topDir(inc);
            if (facts != nullptr && !target.empty() && target != self &&
                moduleRank(target) >= self_rank)
                facts->exempt_headers_crossing.insert("src/" + inc);
            continue;
        }
        const std::string target = topDir(inc);
        if (target.empty() || target == self)
            continue;
        const int target_rank = moduleRank(target);
        if (target_rank < 0) {
            findings.push_back(
                {rel_path, tok.line, R8_Layering,
                 "include \"" + inc + "\" targets module '" + target +
                     "', which is not in the declared layering DAG; add "
                     "the module to dnalint's moduleRank table (and "
                     "docs/CONCURRENCY.md) before depending on it"});
            continue;
        }
        if (target_rank > self_rank) {
            findings.push_back(
                {rel_path, tok.line, R8_Layering,
                 "upward include: '" + self + "' (layer " +
                     std::to_string(self_rank) + ") must not include \"" +
                     inc + "\" from '" + target + "' (layer " +
                     std::to_string(target_rank) +
                     "); invert the dependency or move the shared code "
                     "down"});
        } else if (target_rank == self_rank) {
            findings.push_back(
                {rel_path, tok.line, R8_Layering,
                 "sideways include: '" + self + "' and '" + target +
                     "' share layer " + std::to_string(self_rank) +
                     "; same-layer modules must stay independent (this "
                     "is how cycles start)"});
        }
    }
}

} // namespace

std::vector<Finding>
checkFile(const std::string &rel_path, const std::string &content,
          const LintContext &ctx, unsigned rules, ProjectFacts *facts)
{
    const std::vector<Token> tokens = lex(content);
    std::vector<Finding> findings;

    if ((rules & R1_Nodiscard) != 0 && startsWith(rel_path, "src/") &&
        isHeaderPath(rel_path))
        checkNodiscard(rel_path, tokens, findings);
    if ((rules & R2_ThrowBoundary) != 0)
        checkThrow(rel_path, tokens, ctx, findings, facts);
    if ((rules & R4_IncludeHygiene) != 0)
        checkIncludeHygiene(rel_path, tokens, ctx, findings);
    if ((rules & R5_SeedAudit) != 0)
        checkSeedAudit(rel_path, tokens, findings);
    if ((rules & R6_LockDiscipline) != 0)
        checkLockDiscipline(rel_path, tokens, ctx, findings, facts);
    if ((rules & R7_AtomicOrder) != 0)
        checkAtomicOrder(rel_path, tokens, ctx, findings, facts);
    if ((rules & R8_Layering) != 0)
        checkLayering(rel_path, tokens, findings, facts);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line < b.line;
              });
    return findings;
}

std::vector<Finding>
checkProject(const LintContext &ctx, const ProjectFacts &facts,
             unsigned rules)
{
    std::vector<Finding> findings;

    if ((rules & R2_ThrowBoundary) != 0) {
        for (const std::string &entry : ctx.throw_allowlist) {
            if (ctx.project_files.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R2_ThrowBoundary,
                     "throw whitelist entry '" + entry +
                         "' does not name a project file; remove the "
                         "stale entry"});
            } else if (facts.throw_files.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R2_ThrowBoundary,
                     "throw whitelist entry '" + entry +
                         "' no longer contains `throw`; remove the stale "
                         "entry so the boundary stays tight"});
            }
        }
        // Duplicate entries: dead weight that hides real churn in
        // diffs.  Overlapping entries (one a directory prefix of
        // another) would over-grant: the boundary is per-file, never
        // per-tree.
        std::set<std::string> seen;
        for (const std::string &entry : ctx.throw_allowlist_entries) {
            if (!seen.insert(entry).second) {
                findings.push_back(
                    {"", 0, R2_ThrowBoundary,
                     "duplicate throw whitelist entry '" + entry +
                         "'; keep exactly one line per boundary file"});
            }
        }
        for (const std::string &outer : ctx.throw_allowlist) {
            const std::string prefix = outer + "/";
            for (const std::string &inner : ctx.throw_allowlist) {
                if (inner.size() > prefix.size() &&
                    inner.compare(0, prefix.size(), prefix) == 0) {
                    findings.push_back(
                        {"", 0, R2_ThrowBoundary,
                         "overlapping throw whitelist entries: '" + outer +
                             "' covers '" + inner +
                             "'; the boundary is per-file, remove the "
                             "directory-wide entry"});
                }
            }
        }
    }

    if ((rules & R3_SelfContainment) != 0 && !ctx.selfcontain_harness_wired) {
        findings.push_back(
            {"", 0, R3_SelfContainment,
             "header self-containment harness is not wired: "
             "cmake/HeaderSelfContainment.cmake must exist and be "
             "included from the top-level CMakeLists.txt"});
    }

    if ((rules & R6_LockDiscipline) != 0) {
        for (const std::string &entry : ctx.lock_allowlist) {
            if (facts.unguarded_mutexes.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R6_LockDiscipline,
                     "lock allowlist entry '" + entry +
                         "' is stale (mutex gone or now annotated); "
                         "remove it so the allowlist stays tight"});
            }
        }
    }

    if ((rules & R7_AtomicOrder) != 0) {
        for (const std::string &entry : ctx.relaxed_allowlist) {
            if (facts.relaxed_files.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R7_AtomicOrder,
                     "relaxed allowlist entry '" + entry +
                         "' is stale (file gone or no longer uses "
                         "memory_order_relaxed); remove it"});
            }
        }
    }

    // R8 exemption staleness (mirrors R2/R6/R7): only meaningful on a
    // full-project run — with no src/ files in the context there is
    // nothing for an exemption to be stale against.
    const bool has_src_files =
        std::any_of(ctx.project_files.begin(), ctx.project_files.end(),
                    [](const std::string &f) {
                        return f.rfind("src/", 0) == 0;
                    });
    if ((rules & R8_Layering) != 0 && has_src_files) {
        for (const std::string &header : layeringExemptHeaders()) {
            if (ctx.project_files.count(header) == 0) {
                findings.push_back(
                    {"", 0, R8_Layering,
                     "layering-exempt header '" + header +
                         "' no longer exists; remove it from "
                         "layeringExemptHeaders() so the exemption "
                         "list stays tight"});
            } else if (facts.exempt_headers_crossing.count(header) == 0) {
                findings.push_back(
                    {"", 0, R8_Layering,
                     "layering exemption for '" + header +
                         "' is stale: no include of it crosses a layer "
                         "boundary any more; drop the exemption (it "
                         "now only widens the escape hatch)"});
            }
        }
    }

    return findings;
}

} // namespace dnalint
