#include "dnalint/dnalint.hh"

#include <algorithm>
#include <array>
#include <cctype>

namespace dnalint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Two-character punctuators the rules care about keeping atomic. */
bool
isTwoCharPunct(char a, char b)
{
    static constexpr std::array<const char *, 12> kPairs = {
        "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "[[",
        "]]"};
    return std::any_of(kPairs.begin(), kPairs.end(),
                       [a, b](const char *p) {
                           return p[0] == a && p[1] == b;
                       });
}

/** True when the only characters on the line before @p pos are blanks. */
bool
atLineStart(const std::string &s, std::size_t pos)
{
    while (pos > 0) {
        const char c = s[pos - 1];
        if (c == '\n')
            return true;
        if (c != ' ' && c != '\t')
            return false;
        --pos;
    }
    return true;
}

} // namespace

std::vector<Token>
lex(const std::string &content)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = content.size();

    auto peek = [&](std::size_t ahead) -> char {
        return i + ahead < n ? content[i + ahead] : '\0';
    };

    while (i < n) {
        const char c = content[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && peek(1) == '/') {
            while (i < n && content[i] != '\n')
                ++i;
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(content[i] == '*' && peek(1) == '/')) {
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            i = std::min(i + 2, n);
            continue;
        }
        // Preprocessor directive: fold the whole logical line.
        if (c == '#' && atLineStart(content, i)) {
            Token tok{TokenKind::Directive, "", line};
            while (i < n) {
                if (content[i] == '\\' && peek(1) == '\n') {
                    tok.text += ' ';
                    i += 2;
                    ++line;
                    continue;
                }
                if (content[i] == '\n')
                    break;
                // Strip line comments inside the directive.
                if (content[i] == '/' && peek(1) == '/') {
                    while (i < n && content[i] != '\n')
                        ++i;
                    break;
                }
                tok.text += content[i];
                ++i;
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        // Raw string literal: (u8|u|U|L)?R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"' &&
            (tokens.empty() || tokens.back().text != "#include")) {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(' && delim.size() < 16)
                delim += content[j++];
            const std::string close = ")" + delim + "\"";
            std::size_t end = content.find(close, j);
            if (end == std::string::npos)
                end = n;
            else
                end += close.size();
            line += static_cast<std::size_t>(
                std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                           content.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(end, n)),
                           '\n'));
            i = end;
            continue;
        }
        // String / character literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < n && content[i] != quote) {
                if (content[i] == '\\' && i + 1 < n)
                    ++i;
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            ++i; // closing quote
            continue;
        }
        if (isIdentStart(c)) {
            Token tok{TokenKind::Identifier, "", line};
            while (i < n && isIdentChar(content[i]))
                tok.text += content[i++];
            tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            Token tok{TokenKind::Number, "", line};
            while (i < n &&
                   (isIdentChar(content[i]) || content[i] == '.' ||
                    content[i] == '\'')) {
                const char d = content[i];
                tok.text += d;
                ++i;
                if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i < n &&
                    (content[i] == '+' || content[i] == '-'))
                    tok.text += content[i++];
            }
            tokens.push_back(std::move(tok));
            continue;
        }
        // Punctuation.
        Token tok{TokenKind::Punct, "", line};
        if (isTwoCharPunct(c, peek(1))) {
            tok.text = {c, peek(1)};
            i += 2;
        } else {
            tok.text = {c};
            ++i;
        }
        tokens.push_back(std::move(tok));
    }
    return tokens;
}

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {R1_Nodiscard, "R1",
         "value-returning try*/decode*/encode*/to*/from*/make*/create* "
         "APIs in src/ public headers must be [[nodiscard]]"},
        {R2_ThrowBoundary, "R2",
         "`throw` only in whitelisted boundary files "
         "(tools/dnalint_throw_allowlist.txt); stale entries flagged"},
        {R3_SelfContainment, "R3",
         "header self-containment harness "
         "(cmake/HeaderSelfContainment.cmake) must be wired into the "
         "top-level build"},
        {R4_IncludeHygiene, "R4",
         "project headers included by full path from src/; headers open "
         "with #pragma once"},
        {R5_SeedAudit, "R5",
         "no ad-hoc randomness (rand/srand/mt19937/random_device/"
         "time(NULL)) outside src/util/random"},
    };
    return kTable;
}

const char *
ruleName(Rule rule)
{
    for (const RuleInfo &info : ruleTable()) {
        if (info.rule == rule)
            return info.name;
    }
    return "R?";
}

std::string
format(const Finding &finding)
{
    std::string out = finding.file.empty() ? "(project)" : finding.file;
    out += ':';
    out += std::to_string(finding.line);
    out += ": [";
    out += ruleName(finding.rule);
    out += "] ";
    out += finding.message;
    return out;
}

namespace
{

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::string suf = suffix;
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

bool
isHeaderPath(const std::string &rel_path)
{
    return endsWith(rel_path, ".hh") || endsWith(rel_path, ".h");
}

/** First path component ("src" for "src/ecc/gf256.hh"). */
std::string
topDir(const std::string &rel_path)
{
    const std::size_t slash = rel_path.find('/');
    return slash == std::string::npos ? std::string()
                                      : rel_path.substr(0, slash);
}

/** True for names the R1 fallible-API pattern covers. */
bool
isFallibleApiName(const std::string &name)
{
    static constexpr std::array<const char *, 7> kPrefixes = {
        "try", "decode", "encode", "to", "from", "make", "create"};
    for (const char *prefix : kPrefixes) {
        const std::size_t len = std::char_traits<char>::length(prefix);
        if (name.size() < len || name.compare(0, len, prefix) != 0)
            continue;
        // Exact match ("decode") or camelCase continuation
        // ("tryToBytes"); "total"/"tolerance" style names stay exempt.
        if (name.size() == len)
            return true;
        if (std::isupper(static_cast<unsigned char>(name[len])) != 0)
            return true;
    }
    return false;
}

bool
isDeclKeyword(const std::string &t)
{
    static const std::set<std::string> kKeywords = {
        "virtual", "static",    "inline", "constexpr", "consteval",
        "explicit", "friend",   "extern", "typename",  "const",
        "volatile", "unsigned", "signed", "struct",    "class",
        "enum",     "mutable"};
    return kKeywords.count(t) != 0;
}

/** Tokens that terminate the backwards scan for a declaration start. */
bool
isDeclBoundary(const std::vector<Token> &tokens, std::size_t j)
{
    const Token &tok = tokens[j];
    if (tok.kind == TokenKind::Directive)
        return true;
    if (tok.kind != TokenKind::Punct)
        return false;
    if (tok.text == ";" || tok.text == "{" || tok.text == "}")
        return true;
    if (tok.text == ":" && j > 0 &&
        (tokens[j - 1].text == "public" || tokens[j - 1].text == "private" ||
         tokens[j - 1].text == "protected"))
        return true;
    return false;
}

void
checkNodiscard(const std::string &rel_path, const std::vector<Token> &tokens,
               std::vector<Finding> &findings)
{
    static const std::set<std::string> kCallPrev = {
        "return", "throw", "new",  "case", "goto", "=",  "(",  ",",
        ".",      "->",    "::",   "!",    "&&",   "||", "?",  ":",
        "+",      "-",     "/",    "%",    "<",    "<=", ">=", "==",
        "!=",     "<<",    "[",    "{",    ";"};

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != TokenKind::Identifier ||
            !isFallibleApiName(tok.text) || tokens[i + 1].text != "(")
            continue;

        // A declaration's name is preceded by its return type (an
        // identifier, '>', '&' or '*'); anything else is a call site or
        // expression, which R1 leaves to the compiler.
        if (i == 0)
            continue;
        const Token &prev = tokens[i - 1];
        if (kCallPrev.count(prev.text) != 0)
            continue;
        // ">>" closes nested template arguments, e.g.
        // optional<vector<uint8_t>> tryToBytes(...).
        if (prev.kind != TokenKind::Identifier && prev.text != ">" &&
            prev.text != ">>" && prev.text != "&" && prev.text != "*" &&
            prev.text != "]]")
            continue;
        if (prev.kind == TokenKind::Identifier && isDeclKeyword(prev.text) &&
            prev.text != "unsigned" && prev.text != "signed" &&
            prev.text != "const")
            continue;

        // Scan back to the start of the declaration.
        std::size_t start = i;
        while (start > 0 && !isDeclBoundary(tokens, start - 1))
            --start;

        bool has_nodiscard = false;
        bool returns_void = false;
        for (std::size_t j = start; j < i; ++j) {
            if (tokens[j].text == "nodiscard")
                has_nodiscard = true;
            if (tokens[j].text == "void") {
                // void* / void& would still return a value.
                returns_void = true;
                for (std::size_t p = j + 1; p < i; ++p) {
                    if (tokens[p].text == "*" || tokens[p].text == "&")
                        returns_void = false;
                }
            }
            // Type aliases and macro bodies are not declarations.
            if (tokens[j].text == "using" || tokens[j].text == "typedef")
                returns_void = true;
        }
        if (has_nodiscard || returns_void)
            continue;

        findings.push_back(
            {rel_path, tok.line, R1_Nodiscard,
             "'" + tok.text +
                 "' returns a value and matches the fallible-API pattern; "
                 "declare it [[nodiscard]] so callers cannot drop the "
                 "result"});
    }
}

void
checkThrow(const std::string &rel_path, const std::vector<Token> &tokens,
           const LintContext &ctx, std::vector<Finding> &findings,
           std::set<std::string> *throw_files)
{
    if (!startsWith(rel_path, "src/"))
        return;
    bool has_throw = false;
    for (const Token &tok : tokens) {
        if (tok.kind != TokenKind::Identifier || tok.text != "throw")
            continue;
        has_throw = true;
        if (ctx.throw_allowlist.count(rel_path) == 0) {
            findings.push_back(
                {rel_path, tok.line, R2_ThrowBoundary,
                 "`throw` outside the boundary whitelist; return a "
                 "StageStatus/std::optional failure instead, or add the "
                 "file to tools/dnalint_throw_allowlist.txt with a "
                 "justification"});
        }
    }
    if (has_throw && throw_files != nullptr)
        throw_files->insert(rel_path);
}

/** Trim and squeeze directive whitespace: "#  pragma  once" -> tokens. */
std::vector<std::string>
directiveWords(const std::string &text)
{
    std::vector<std::string> words;
    std::string cur;
    for (const char c : text) {
        if (c == ' ' || c == '\t') {
            if (!cur.empty())
                words.push_back(std::move(cur));
            cur.clear();
        } else if (c == '#' && words.empty() && cur.empty()) {
            words.emplace_back("#");
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        words.push_back(std::move(cur));
    return words;
}

/** Extract the quoted path of an #include "..." directive ("" if none). */
std::string
quotedIncludePath(const std::string &directive)
{
    const std::size_t open = directive.find('"');
    if (open == std::string::npos)
        return "";
    const std::size_t close = directive.find('"', open + 1);
    if (close == std::string::npos)
        return "";
    return directive.substr(open + 1, close - open - 1);
}

void
checkIncludeHygiene(const std::string &rel_path,
                    const std::vector<Token> &tokens, const LintContext &ctx,
                    std::vector<Finding> &findings)
{
    const std::string top = topDir(rel_path);
    const std::string dir =
        rel_path.substr(0, rel_path.find_last_of('/') + 1);

    bool saw_directive = false;
    bool pragma_once_first = false;
    for (const Token &tok : tokens) {
        if (tok.kind != TokenKind::Directive)
            continue;
        const std::vector<std::string> words = directiveWords(tok.text);
        if (words.size() < 2 || words[0] != "#")
            continue;

        if (!saw_directive) {
            saw_directive = true;
            pragma_once_first = words[1] == "pragma" && words.size() >= 3 &&
                                words[2] == "once";
            if (isHeaderPath(rel_path) && !pragma_once_first) {
                const bool guard = words[1] == "ifndef";
                findings.push_back(
                    {rel_path, tok.line, R4_IncludeHygiene,
                     guard ? "header uses an #ifndef include guard; the "
                             "project convention is #pragma once as the "
                             "first directive"
                           : "header must open with #pragma once before "
                             "any other directive"});
            }
        }

        if (words[1] != "include")
            continue;
        const std::string inc = quotedIncludePath(tok.text);
        if (inc.empty())
            continue; // angle include: system header, out of scope
        // src/ and tools/ are the build's global -I roots; any tree may
        // include from them by root-relative path.
        if (ctx.project_files.count("src/" + inc) != 0 ||
            ctx.project_files.count("tools/" + inc) != 0)
            continue;
        if (!top.empty() && top != "src" &&
            ctx.project_files.count(top + "/" + inc) != 0)
            continue;
        if (ctx.project_files.count(dir + inc) != 0) {
            findings.push_back(
                {rel_path, tok.line, R4_IncludeHygiene,
                 "include \"" + inc + "\" is relative to the including "
                 "file; include project headers by their full path (\"" +
                     dir.substr(top == "src" ? 4 : top.size() + 1) + inc +
                     "\")"});
        } else {
            findings.push_back(
                {rel_path, tok.line, R4_IncludeHygiene,
                 "quoted include \"" + inc +
                     "\" does not resolve to a first-party file (use "
                     "<...> for system headers)"});
        }
    }

    if (isHeaderPath(rel_path) && !saw_directive) {
        findings.push_back({rel_path, 1, R4_IncludeHygiene,
                            "header must open with #pragma once"});
    }
}

void
checkSeedAudit(const std::string &rel_path, const std::vector<Token> &tokens,
               std::vector<Finding> &findings)
{
    // The one seeded randomness source; everything else must go through
    // its Rng so a run reproduces from a single 64-bit seed.
    if (startsWith(rel_path, "src/util/random"))
        return;

    static const std::set<std::string> kBanned = {
        "rand",          "srand",        "drand48",      "lrand48",
        "random_device", "mt19937",      "mt19937_64",   "minstd_rand",
        "minstd_rand0",  "ranlux24",     "ranlux48",     "random_shuffle",
        "default_random_engine"};

    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        if (kBanned.count(tok.text) != 0) {
            findings.push_back(
                {rel_path, tok.line, R5_SeedAudit,
                 "ad-hoc randomness '" + tok.text +
                     "' outside src/util/random; draw from the seeded "
                     "dnastore::Rng instead"});
        }
        // time(NULL) / time(nullptr) wall-clock seeding.
        if (tok.text == "time" && i + 2 < tokens.size() &&
            tokens[i + 1].text == "(" &&
            (tokens[i + 2].text == "NULL" ||
             tokens[i + 2].text == "nullptr")) {
            findings.push_back(
                {rel_path, tok.line, R5_SeedAudit,
                 "wall-clock seeding via time(...); runs must reproduce "
                 "from the explicit 64-bit seed"});
        }
    }
}

} // namespace

std::vector<Finding>
checkFile(const std::string &rel_path, const std::string &content,
          const LintContext &ctx, unsigned rules,
          std::set<std::string> *throw_files)
{
    const std::vector<Token> tokens = lex(content);
    std::vector<Finding> findings;

    if ((rules & R1_Nodiscard) != 0 && startsWith(rel_path, "src/") &&
        isHeaderPath(rel_path))
        checkNodiscard(rel_path, tokens, findings);
    if ((rules & R2_ThrowBoundary) != 0)
        checkThrow(rel_path, tokens, ctx, findings, throw_files);
    if ((rules & R4_IncludeHygiene) != 0)
        checkIncludeHygiene(rel_path, tokens, ctx, findings);
    if ((rules & R5_SeedAudit) != 0)
        checkSeedAudit(rel_path, tokens, findings);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line < b.line;
              });
    return findings;
}

std::vector<Finding>
checkProject(const LintContext &ctx, const std::set<std::string> &throw_files,
             unsigned rules)
{
    std::vector<Finding> findings;

    if ((rules & R2_ThrowBoundary) != 0) {
        for (const std::string &entry : ctx.throw_allowlist) {
            if (ctx.project_files.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R2_ThrowBoundary,
                     "throw whitelist entry '" + entry +
                         "' does not name a project file; remove the "
                         "stale entry"});
            } else if (throw_files.count(entry) == 0) {
                findings.push_back(
                    {"", 0, R2_ThrowBoundary,
                     "throw whitelist entry '" + entry +
                         "' no longer contains `throw`; remove the stale "
                         "entry so the boundary stays tight"});
            }
        }
    }

    if ((rules & R3_SelfContainment) != 0 && !ctx.selfcontain_harness_wired) {
        findings.push_back(
            {"", 0, R3_SelfContainment,
             "header self-containment harness is not wired: "
             "cmake/HeaderSelfContainment.cmake must exist and be "
             "included from the top-level CMakeLists.txt"});
    }

    return findings;
}

} // namespace dnalint
