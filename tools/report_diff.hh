/**
 * @file
 * `dnastore report diff <baseline.json> <current.json>` — the perf
 * regression gate.  Compares two documents of the same schema
 * (dnastore.run_report, dnastore.bench_table3 or
 * dnastore.bench_archive_throughput), extracts the comparable
 * performance series (per-stage seconds, per-mode get seconds, the
 * archive speedup), and flags regressions beyond a tolerance.
 *
 * A latency row regresses when current - baseline exceeds BOTH the
 * relative slack (baseline * tolerance_pct / 100) and the absolute
 * floor; the floor keeps micro-benchmark noise (a stage going from 2ms
 * to 4ms) from tripping a 100% "regression".  Higher-is-better rows
 * (speedup) apply the same rule with the sign flipped.  Rows present in
 * only one document are reported but never gate, so v1 baselines stay
 * diffable against v2 output.
 *
 * Exit codes: 0 = within tolerance, 1 = regression, 2 = usage/parse
 * error.  --markdown additionally writes an attribution report (the
 * row table plus the current document's attribution section — worker
 * busy fraction, queue-wait percentiles — when present).
 */

#pragma once

#include <string>

namespace dnastore::tools
{

/** Knobs for one diff run (defaults match the CI gate). */
struct ReportDiffOptions
{
    double tolerance_pct = 25.0;  //!< Relative slack per row.
    double abs_floor = 0.05;      //!< Absolute slack (row units).
    std::string markdown_path;    //!< Empty: no markdown report.
};

/**
 * Diff @p current_path against @p baseline_path and print the row table
 * to stdout.  Returns the process exit code (0/1/2, see file header).
 */
[[nodiscard]] int reportDiff(const std::string &baseline_path,
                             const std::string &current_path,
                             const ReportDiffOptions &options);

/** The `dnastore report <verb> ...` CLI entry point (argv[1]=="report"). */
[[nodiscard]] int cmdReport(int argc, char **argv);

} // namespace dnastore::tools
