/**
 * @file
 * chaos_harness — trace-driven crash/recovery harness for the archive.
 *
 * Each cycle the harness
 *   1. generates a seeded workload trace: mixed puts of fresh objects
 *      (ThreadPool-batched shard encodes), overwrite attempts against
 *      stored names (must fail AlreadyExists and leave data intact),
 *      Zipf-skewed gets and stats, and bursts of concurrent report
 *      writers hammering one obs::writeTextFile target;
 *   2. forks a child that replays the trace against the archive with a
 *      randomly scheduled crash point armed (obs/crashpoint.hh): the
 *      child dies mid-save, mid-write or mid-open with exit code 86,
 *      exactly as a kill -9 would take it;
 *   3. reopens the archive in the parent and asserts the recovery
 *      invariants: the manifest parses (CRC + pair-id invariants),
 *      `archive fsck` reports no Error-severity findings, repair leaves
 *      the directory byte-clean, every manifest-referenced object the
 *      parent samples decodes byte-exactly, and object data matches the
 *      deterministic per-name generator (so a torn save can never
 *      surface wrong bytes as a "success").
 *
 * Every byte of workload derives from --seed, so any failing run is
 * replayable: rerun with the printed seed (from cycle 0 against a fresh
 * directory) to reproduce the exact kill schedule and trace.  The
 * failing cycle's trace is also dumped as a dnastore.chaos_trace JSON
 * document (--trace-out).
 *
 * Exit codes: 0 all cycles clean; 1 an invariant was violated (details
 * on stderr, trace dumped).
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "obs/crashpoint.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "util/args.hh"
#include "util/random.hh"

using namespace dnastore;

namespace
{

/** Child exit code for an invariant the child itself caught. */
constexpr int kChildViolation = 70;

/** Objects per archive epoch before the directory is reset. */
constexpr std::size_t kEpochObjectCap = 25;

struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        PutNew,      //!< Store a fresh object (name carried in op).
        PutExisting, //!< Overwrite attempt: must fail AlreadyExists.
        Get,         //!< Decode an object, verify byte-exact.
        Stat,        //!< Metadata lookup must succeed.
        ReportBurst, //!< N threads concurrently writeTextFile one target.
    };
    Kind kind = Kind::PutNew;
    std::string name;       //!< PutNew only.
    std::uint64_t rank = 0; //!< Popularity rank for existing-object ops.
};

const char *
opKindName(TraceOp::Kind kind)
{
    switch (kind) {
    case TraceOp::Kind::PutNew:
        return "put_new";
    case TraceOp::Kind::PutExisting:
        return "put_existing";
    case TraceOp::Kind::Get:
        return "get";
    case TraceOp::Kind::Stat:
        return "stat";
    case TraceOp::Kind::ReportBurst:
        return "report_burst";
    }
    return "unknown";
}

/** One cycle's worth of scheduled chaos. */
struct CycleSpec
{
    std::uint64_t cycle_seed = 0;
    std::vector<TraceOp> ops;
    std::string crash_spec; //!< crash::configure clause; empty = none.
};

/** FNV-1a so object bytes are a pure function of the object name. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Deterministic per-name object size in [24, 624): Zipf-ish small. */
std::size_t
objectSize(const std::string &name)
{
    return 24 + static_cast<std::size_t>((hashName(name) >> 7) % 600);
}

/** Deterministic per-name payload; both parent and child regenerate it. */
std::vector<std::uint8_t>
objectBytes(const std::string &name)
{
    Rng rng(hashName(name));
    std::vector<std::uint8_t> data(objectSize(name));
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

/** Zipf-skewed rank: low ranks (old, popular objects) dominate. */
std::uint64_t
zipfRank(Rng &rng)
{
    const double u = rng.uniform();
    return static_cast<std::uint64_t>(1000.0 * u * u * u);
}

archive::ArchiveParams
harnessParams()
{
    archive::ArchiveParams params;
    params.max_shard_bytes = 256;
    return params;
}

/** Retrieval settings tuned for reliable byte-exact verification. */
archive::RetrievalConfig
verifyRetrieval(std::uint64_t seed, std::size_t threads)
{
    archive::RetrievalConfig cfg;
    cfg.error_rate = 0.01;
    cfg.coverage = 10.0;
    cfg.min_cluster_size = 1;
    cfg.max_decode_retries = 1;
    cfg.seed = seed;
    cfg.num_threads = threads;
    return cfg;
}

/**
 * Generate cycle @p cycle's trace + crash schedule.  Everything flows
 * from the cycle seed, which flows from the master seed, so a replay
 * from cycle 0 regenerates the identical workload.
 */
CycleSpec
makeCycle(std::uint64_t master_seed, std::uint64_t cycle)
{
    CycleSpec spec;
    SplitMix64 mixer(master_seed ^
                     (cycle + 1) * 0x9e3779b97f4a7c15ULL);
    spec.cycle_seed = mixer.next();
    Rng rng(spec.cycle_seed);

    const std::size_t num_ops = 8 + rng.below(8);
    spec.ops.reserve(num_ops);
    for (std::size_t i = 0; i < num_ops; ++i) {
        const double pick = rng.uniform();
        TraceOp op;
        if (pick < 0.35) {
            op.kind = TraceOp::Kind::PutNew;
            op.name = "o" + std::to_string(cycle) + "_" +
                      std::to_string(i);
        } else if (pick < 0.45) {
            op.kind = TraceOp::Kind::PutExisting;
            op.rank = zipfRank(rng);
        } else if (pick < 0.70) {
            op.kind = TraceOp::Kind::Get;
            op.rank = zipfRank(rng);
        } else if (pick < 0.88) {
            op.kind = TraceOp::Kind::Stat;
            op.rank = zipfRank(rng);
        } else {
            op.kind = TraceOp::Kind::ReportBurst;
        }
        spec.ops.push_back(std::move(op));
    }

    // Crash schedule: most cycles kill at a random point's Nth hit; the
    // rest run to completion (and prove the trace itself is sound) or
    // inject a clean IO failure the child must survive.
    struct PointChoice
    {
        const char *point;
        const char *action;
    };
    static constexpr PointChoice kChoices[] = {
        {"archive.save.pool", "kill"},
        {"archive.save.between", "kill"}, // pool-ahead-of-manifest
        {"archive.save.commit", "kill"},
        {"archive.open.manifest", "kill"},
        {"archive.open.pool", "kill"},
        {"obs.write.open", "kill"},
        {"obs.write.body", "kill"},
        {"obs.write.body", "short"}, // truncated staging file left behind
        {"obs.write.rename", "kill"}, // complete staging file left behind
        {"obs.write.body", "werror"}, // simulated ENOSPC, clean failure
        {"obs.write.rename", "renameerror"},
    };
    const double crash_roll = rng.uniform();
    if (crash_roll < 0.8) {
        const PointChoice &choice =
            kChoices[rng.below(sizeof(kChoices) / sizeof(kChoices[0]))];
        const std::uint64_t nth = 1 + rng.below(6);
        spec.crash_spec = std::string(choice.point) + "=" + choice.action +
                          "@" + std::to_string(nth);
    }
    return spec;
}

/** The cycle as a dnastore.chaos_trace JSON document. */
std::string
cycleTraceJson(const CycleSpec &spec, std::uint64_t master_seed,
               std::uint64_t cycle, const std::string &dir,
               const std::string &failure)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("archive_dir");
    json.value(dir);
    json.key("crash_spec");
    json.value(spec.crash_spec);
    json.key("cycle");
    json.value(static_cast<std::uint64_t>(cycle));
    json.key("cycle_seed");
    json.value(static_cast<std::uint64_t>(spec.cycle_seed));
    json.key("failure");
    json.value(failure);
    json.key("ops");
    json.beginArray();
    for (const TraceOp &op : spec.ops) {
        json.beginObject();
        json.key("kind");
        json.value(opKindName(op.kind));
        json.key("name");
        json.value(op.name);
        json.key("rank");
        json.value(static_cast<std::uint64_t>(op.rank));
        json.endObject();
    }
    json.endArray();
    json.key("replay");
    json.value("chaos_harness --seed " + std::to_string(master_seed) +
               " --cycles " + std::to_string(cycle + 1) +
               " --dir <fresh-dir>");
    json.key("schema");
    json.value("dnastore.chaos_trace");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});
    json.key("seed");
    json.value(static_cast<std::uint64_t>(master_seed));
    json.endObject();
    return json.text();
}

/**
 * Child body: replay the trace with the crash spec armed.  Never
 * returns — exits 0 (trace done), 86 (scheduled crash fired) or 70
 * (the child itself caught an invariant violation).
 */
[[noreturn]] void
runChild(const CycleSpec &spec, const std::string &dir)
{
    // Arm via the environment so the env parsing path is exercised on
    // every cycle (an empty spec parses to "disarmed").
    ::setenv("DNASTORE_CRASHPOINTS", spec.crash_spec.c_str(), 1);
    if (!obs::crash::configureFromEnv()) {
        std::fprintf(stderr, "chaos child: bad crash spec '%s'\n",
                     spec.crash_spec.c_str());
        std::_Exit(kChildViolation);
    }

    // Clean IO failures (IoError) are legitimate outcomes only while a
    // werror/renameerror fault is armed; otherwise they are bugs.
    const bool io_faults_armed =
        spec.crash_spec.find("werror") != std::string::npos ||
        spec.crash_spec.find("renameerror") != std::string::npos;

    archive::OpenResult opened = archive::Archive::open(dir);
    if (opened.status == archive::ArchiveStatus::NotFound)
        opened = archive::Archive::create(dir, harnessParams());
    if (!opened.ok()) {
        if (io_faults_armed &&
            opened.status == archive::ArchiveStatus::IoError)
            std::_Exit(0); // Injected ENOSPC stopped create(); fine.
        // An unreadable archive at child start is a recovery failure
        // the parent asserts on too, but the child flags it first.
        std::fprintf(stderr, "chaos child: open failed: %s\n",
                     opened.error.c_str());
        std::_Exit(kChildViolation);
    }
    archive::Archive &ar = *opened.archive;

    // Live name list: manifest objects + this trace's successful puts.
    std::vector<std::string> names;
    for (const auto &object : ar.objects())
        names.push_back(object.name);
    const auto resolve = [&names](std::uint64_t rank) -> const std::string * {
        if (names.empty())
            return nullptr;
        return &names[static_cast<std::size_t>(rank % names.size())];
    };

    Rng rng(spec.cycle_seed ^ 0xc41ddULL);
    for (const TraceOp &op : spec.ops) {
        switch (op.kind) {
        case TraceOp::Kind::PutNew: {
            const auto put = ar.put(op.name, objectBytes(op.name),
                                    /*num_threads=*/2);
            if (put.ok()) {
                names.push_back(op.name);
            } else if (!io_faults_armed ||
                       put.status != archive::ArchiveStatus::IoError) {
                // Only an armed IO fault may fail a put, and then only
                // cleanly (IoError); anything else is a bug.
                std::fprintf(stderr,
                             "chaos child: put '%s' failed oddly: %s\n",
                             op.name.c_str(), put.error.c_str());
                std::_Exit(kChildViolation);
            }
            break;
        }
        case TraceOp::Kind::PutExisting: {
            const std::string *name = resolve(op.rank);
            if (name == nullptr)
                break;
            const auto put = ar.put(*name, objectBytes(*name), 1);
            if (put.status != archive::ArchiveStatus::AlreadyExists) {
                std::fprintf(
                    stderr,
                    "chaos child: overwrite of '%s' returned %s, want "
                    "already-exists\n",
                    name->c_str(), archive::archiveStatusName(put.status));
                std::_Exit(kChildViolation);
            }
            break;
        }
        case TraceOp::Kind::Get: {
            const std::string *name = resolve(op.rank);
            if (name == nullptr)
                break;
            const std::uint64_t get_seed = rng.next();
            const std::size_t get_threads = 1 + rng.below(2);
            const auto got =
                ar.get(*name, verifyRetrieval(get_seed, get_threads));
            if (!got.ok() || got.data != objectBytes(*name)) {
                std::fprintf(stderr,
                             "chaos child: get '%s' not byte-exact: %s\n",
                             name->c_str(), got.error.c_str());
                std::_Exit(kChildViolation);
            }
            break;
        }
        case TraceOp::Kind::Stat: {
            const std::string *name = resolve(op.rank);
            if (name == nullptr)
                break;
            const auto *object = ar.stat(*name);
            if (object == nullptr ||
                object->size_bytes != objectSize(*name)) {
                std::fprintf(stderr,
                             "chaos child: stat '%s' wrong or missing\n",
                             name->c_str());
                std::_Exit(kChildViolation);
            }
            break;
        }
        case TraceOp::Kind::ReportBurst: {
            // Concurrent writers to ONE target: unique staging names
            // keep them from interleaving; a kill mid-burst orphans
            // several temps for fsck to sweep.
            const std::string target = dir + "/run_report.json";
            std::vector<std::thread> writers;
            for (int w = 0; w < 3; ++w) {
                writers.emplace_back([&target, w]() {
                    const std::string text(
                        static_cast<std::size_t>(1024 + 512 * w),
                        static_cast<char>('a' + w));
                    (void)obs::writeTextFile(target, text);
                });
            }
            for (auto &writer : writers)
                writer.join();
            break;
        }
        }
    }
    std::_Exit(0);
}

/** Everything the parent asserts after a cycle's child has exited. */
struct CycleOutcome
{
    bool ok = true;
    std::string failure;
};

void
failCycle(CycleOutcome &outcome, const std::string &why)
{
    outcome.ok = false;
    if (!outcome.failure.empty())
        outcome.failure += "; ";
    outcome.failure += why;
}

/**
 * Post-kill recovery audit: reopen, fsck (detect -> repair -> verify
 * clean) and byte-exact sampling of manifest-referenced objects.
 */
CycleOutcome
auditRecovery(const std::string &dir, Rng &rng, bool deep,
              const std::string &fsck_json_path)
{
    CycleOutcome outcome;

    archive::OpenResult opened = archive::Archive::open(dir);
    const bool archive_exists =
        opened.status != archive::ArchiveStatus::NotFound;
    if (archive_exists && !opened.ok()) {
        failCycle(outcome, "archive did not reopen: " + opened.error);
        return outcome;
    }

    // fsck pass 1: detect.  A crashed save may leave warnings (orphan
    // records, stale temps) but never Error-severity findings.
    archive::FsckOptions detect;
    const archive::FsckReport before = archive::fsckArchive(dir, detect);
    if (archive_exists && !before.healthy())
        failCycle(outcome, "fsck pre-repair unhealthy: " + before.error);

    // fsck pass 2: repair, then a third pass must come back byte-clean
    // (on an existing archive; a crashed first create legitimately
    // leaves only a pool or staging files, which repair sweeps).
    archive::FsckOptions repair;
    repair.repair = true;
    const archive::FsckReport repaired = archive::fsckArchive(dir, repair);
    for (const auto &finding : repaired.findings) {
        if (finding.repairable && !finding.repaired)
            failCycle(outcome, std::string("repairable finding not "
                                           "repaired: ") +
                                   archive::fsckFindingKindName(
                                       finding.kind));
    }
    archive::FsckOptions verify;
    verify.deep = deep;
    verify.retrieval = verifyRetrieval(rng.next(), 2);
    const archive::FsckReport after = archive::fsckArchive(dir, verify);
    if (!fsck_json_path.empty()) {
        (void)obs::writeTextFile(
            fsck_json_path,
            archive::fsckReportJson(after, dir, verify));
    }
    if (archive_exists) {
        if (!after.healthy())
            failCycle(outcome,
                      "fsck post-repair unhealthy: " + after.error);
        for (const auto &finding : after.findings) {
            // Post-repair the only acceptable findings are deep-scrub
            // notes about the DNA manifest copy lagging manifest.json.
            if (finding.kind != archive::FsckFindingKind::StaleDnaManifest)
                failCycle(outcome,
                          std::string("fsck not clean after repair: ") +
                              archive::fsckFindingKindName(finding.kind) +
                              " " + finding.detail);
        }
    }

    if (!archive_exists || !opened.ok())
        return outcome;

    // Byte-exact sampling: the in-flight put (newest object) plus a
    // Zipf-weighted sample of older ones.  Data is a pure function of
    // the name, so a torn save can never masquerade as correct data.
    const auto &objects = opened.archive->objects();
    if (objects.empty())
        return outcome;
    std::vector<std::size_t> sample;
    sample.push_back(objects.size() - 1); // newest: the riskiest object
    for (int i = 0; i < 2 && objects.size() > 1; ++i)
        sample.push_back(static_cast<std::size_t>(zipfRank(rng) %
                                                  objects.size()));
    for (const std::size_t index : sample) {
        const auto &object = objects[index];
        if (object.size_bytes != objectSize(object.name)) {
            failCycle(outcome, "object '" + object.name +
                                   "' has wrong manifest size");
            continue;
        }
        const std::uint64_t get_seed = rng.next();
        const std::size_t get_threads = 1 + rng.below(2);
        const auto got = opened.archive->get(
            object.name, verifyRetrieval(get_seed, get_threads));
        if (!got.ok() || got.data != objectBytes(object.name))
            failCycle(outcome, "object '" + object.name +
                                   "' not byte-exact after recovery: " +
                                   got.error);
    }
    return outcome;
}

void
usage()
{
    std::cerr
        << "usage: chaos_harness [--cycles N] [--seed S] [--dir DIR]\n"
           "                     [--start-cycle C] [--trace-out PATH]\n"
           "                     [--fsck-json PATH] [--deep-every N]\n"
           "                     [--verbose]\n"
           "\n"
           "Runs N seeded kill cycles against an archive: each cycle\n"
           "replays a generated put/get/overwrite trace in a forked\n"
           "child, kills it at a randomly scheduled crash point, then\n"
           "reopens, runs `archive fsck` (detect -> repair -> verify\n"
           "clean) and checks byte-exact recovery.\n"
           "\n"
           "Reproducing a failure: every trace and kill schedule is a\n"
           "pure function of --seed.  Paste the seed the failing run\n"
           "printed, e.g.\n"
           "    chaos_harness --seed 12345 --cycles 87 --dir fresh-dir\n"
           "and cycle 86 replays the identical workload and kill.  The\n"
           "failing cycle's full trace is also written to --trace-out\n"
           "(default chaos_trace.json) as a dnastore.chaos_trace\n"
           "document.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    if (args.getBool("help", false)) {
        usage();
        return 0;
    }
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(args.getInt("cycles", 200));
    const std::uint64_t master_seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const std::uint64_t start_cycle =
        static_cast<std::uint64_t>(args.getInt("start-cycle", 0));
    const std::string dir = args.get("dir", "chaos_archive");
    const std::string trace_out =
        args.get("trace-out", "chaos_trace.json");
    const std::string fsck_json = args.get("fsck-json", "");
    const std::uint64_t deep_every =
        static_cast<std::uint64_t>(args.getInt("deep-every", 25));
    const bool verbose = args.getBool("verbose", false);

    // The parent must never crash on its own writes: disarm whatever
    // DNASTORE_CRASHPOINTS the environment carries (children re-arm
    // their own schedule after fork).
    obs::crash::reset();

    // A run that starts at cycle 0 starts from an empty directory, so
    // the same seed always replays the same history (leftover objects
    // from a previous run would collide with the regenerated names).
    if (start_cycle == 0) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    Rng parent_rng(master_seed ^ 0x9a4e47ULL);
    std::uint64_t kills = 0;
    std::uint64_t completed = 0;
    for (std::uint64_t cycle = start_cycle; cycle < cycles; ++cycle) {
        const CycleSpec spec = makeCycle(master_seed, cycle);

        std::cout.flush();
        std::cerr.flush();
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::cerr << "chaos_harness: fork failed\n";
            return 1;
        }
        if (pid == 0)
            runChild(spec, dir); // never returns

        int status = 0;
        if (::waitpid(pid, &status, 0) != pid) {
            std::cerr << "chaos_harness: waitpid failed\n";
            return 1;
        }

        CycleOutcome outcome;
        if (WIFSIGNALED(status)) {
            failCycle(outcome,
                      "child died on signal " +
                          std::to_string(WTERMSIG(status)) +
                          " (real crash, not a scheduled one)");
        } else if (WIFEXITED(status)) {
            const int code = WEXITSTATUS(status);
            if (code == obs::crash::kCrashExitCode)
                ++kills;
            else if (code == 0)
                ++completed;
            else
                failCycle(outcome, "child exited with code " +
                                       std::to_string(code));
        }

        if (outcome.ok) {
            const bool deep =
                deep_every != 0 && (cycle + 1) % deep_every == 0;
            const CycleOutcome audit =
                auditRecovery(dir, parent_rng, deep, fsck_json);
            if (!audit.ok)
                outcome = audit;
        }

        if (!outcome.ok) {
            std::cerr << "chaos_harness: FAILED at cycle " << cycle
                      << ": " << outcome.failure << "\n"
                      << "  reproduce: chaos_harness --seed "
                      << master_seed << " --cycles " << (cycle + 1)
                      << " --dir <fresh-dir>\n";
            if (!obs::writeTextFile(
                    trace_out, cycleTraceJson(spec, master_seed, cycle,
                                              dir, outcome.failure)))
                std::cerr << "chaos_harness: could not write "
                          << trace_out << "\n";
            else
                std::cerr << "  trace: " << trace_out << "\n";
            return 1;
        }

        if (verbose) {
            std::cout << "cycle " << cycle << ": "
                      << (spec.crash_spec.empty() ? "no-crash"
                                                  : spec.crash_spec)
                      << " -> recovered\n";
        }

        // Epoch reset: bound archive growth so late cycles stay fast.
        archive::OpenResult opened = archive::Archive::open(dir);
        if (opened.ok() &&
            opened.archive->objects().size() >= kEpochObjectCap) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
            if (verbose)
                std::cout << "epoch reset after cycle " << cycle << "\n";
        }
    }

    std::cout << "chaos_harness: " << (cycles - start_cycle)
              << " cycles ok (" << kills << " scheduled kills, "
              << completed << " clean completions), seed " << master_seed
              << "\n";
    if (args.has("trace-out")) {
        const CycleSpec last = makeCycle(master_seed, cycles - 1);
        (void)obs::writeTextFile(
            trace_out,
            cycleTraceJson(last, master_seed, cycles - 1, dir, ""));
    }
    return 0;
}
