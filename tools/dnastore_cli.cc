/**
 * @file
 * dnastore — command-line front end to the toolkit.  Every pipeline
 * stage runs as its own subcommand so stages can be mixed, swapped and
 * chained through plain files, mirroring the paper's modular design
 * (Section III):
 *
 *   dnastore encode      --in FILE --out strands.txt [codec options]
 *   dnastore simulate    --in strands.txt --out reads.txt [channel opts]
 *   dnastore cluster     --in reads.txt --out clusters.txt [opts]
 *   dnastore reconstruct --in clusters.txt --out consensus.txt [opts]
 *   dnastore decode      --in consensus.txt --out FILE [codec options]
 *   dnastore pipeline    --in FILE --out FILE [all of the above]
 *
 * Shared codec options: --payload-nt, --index-nt, --rs-n, --rs-k,
 * --scheme=baseline|gini|dnamapper.
 * Channel options: --channel=iid|solqc|wetlab, --error-rate, --coverage,
 * --seed.  Clustering: --signature=q|w, --edit-threshold, --threads.
 * Reconstruction: --algo=bma|dbma|nw, --length.
 * Fault injection (pipeline only): --fault-dropout, --fault-truncation,
 * --fault-elongation, --fault-index, --fault-duplicate, --fault-garbage,
 * --fault-cluster-drop, --fault-cluster-merge (rates in [0,1]),
 * --fault-seed.  Recovery: --retries=N re-decodes with degraded
 * settings when the first decode fails.
 * Observability (pipeline only): --metrics-json PATH writes the
 * machine-readable run report (schema dnastore.run_report, see
 * docs/OBSERVABILITY.md); --trace-json PATH writes a Chrome trace_event
 * file loadable in chrome://tracing or Perfetto.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "core/run_report.hh"
#include "core/text_io.hh"
#include "obs/lock_timing.hh"
#include "obs/report.hh"
#include "obs/span.hh"
#include "obs/trace_export.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "server/client.hh"
#include "simulator/solqc_channel.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/args.hh"

#include "report_diff.hh"

using namespace dnastore;

namespace
{

MatrixCodecConfig
codecConfig(const ArgParser &args)
{
    MatrixCodecConfig cfg;
    cfg.payload_nt =
        static_cast<std::size_t>(args.getInt("payload-nt", 120));
    cfg.index_nt = static_cast<std::size_t>(args.getInt("index-nt", 12));
    cfg.rs_n = static_cast<std::size_t>(args.getInt("rs-n", 60));
    cfg.rs_k = static_cast<std::size_t>(args.getInt("rs-k", 40));
    const std::string scheme = args.get("scheme", "baseline");
    if (scheme == "gini")
        cfg.scheme = LayoutScheme::Gini;
    else if (scheme == "dnamapper")
        cfg.scheme = LayoutScheme::DNAMapper;
    else if (scheme != "baseline")
        throw std::invalid_argument("unknown --scheme: " + scheme);
    return cfg;
}

std::unique_ptr<Channel>
makeChannel(const ArgParser &args)
{
    const std::string name = args.get("channel", "iid");
    const double rate = args.getDouble("error-rate", 0.06);
    if (name == "iid") {
        return std::make_unique<IidChannel>(
            IidChannelConfig::fromTotalErrorRate(rate));
    }
    if (name == "solqc") {
        return std::make_unique<SolqcChannel>(
            SolqcChannelConfig::fromTotalErrorRate(rate));
    }
    if (name == "wetlab") {
        VirtualWetlabConfig cfg;
        cfg.base_error_rate = rate;
        return std::make_unique<VirtualWetlabChannel>(cfg);
    }
    throw std::invalid_argument("unknown --channel: " + name);
}

RashtchianClustererConfig
clustererConfig(const ArgParser &args)
{
    auto cfg = RashtchianClustererConfig::forErrorRate(
        args.getDouble("error-rate", 0.06),
        static_cast<std::size_t>(args.getInt("read-len", 132)));
    if (args.get("signature", "q") == "w")
        cfg.signature = SignatureKind::WGram;
    if (args.has("edit-threshold")) {
        cfg.edit_threshold =
            static_cast<std::size_t>(args.getInt("edit-threshold", 25));
    }
    cfg.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 1));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    return cfg;
}

std::unique_ptr<Reconstructor>
makeReconstructor(const ArgParser &args)
{
    const std::string algo = args.get("algo", "nw");
    if (algo == "bma")
        return std::make_unique<BmaReconstructor>();
    if (algo == "dbma")
        return std::make_unique<DoubleSidedBmaReconstructor>();
    if (algo == "nw")
        return std::make_unique<NwConsensusReconstructor>();
    throw std::invalid_argument("unknown --algo: " + algo);
}

/** Build a FaultPlan from --fault-* options; nullopt when all zero. */
std::optional<FaultPlan>
faultPlan(const ArgParser &args, std::size_t index_nt)
{
    FaultPlan plan;
    plan.index_nt = index_nt;
    plan.seed = static_cast<std::uint64_t>(
        args.getInt("fault-seed", static_cast<long>(plan.seed)));
    plan.strand_dropout = args.getDouble("fault-dropout", 0.0);
    plan.read_truncation = args.getDouble("fault-truncation", 0.0);
    plan.read_elongation = args.getDouble("fault-elongation", 0.0);
    plan.index_corruption = args.getDouble("fault-index", 0.0);
    plan.duplicate_conflict = args.getDouble("fault-duplicate", 0.0);
    plan.garbage_read = args.getDouble("fault-garbage", 0.0);
    plan.cluster_drop = args.getDouble("fault-cluster-drop", 0.0);
    plan.cluster_merge = args.getDouble("fault-cluster-merge", 0.0);
    if (!plan.anyReadFaults() && !plan.anyClusterFaults())
        return std::nullopt;
    return plan;
}

std::string
requireOption(const ArgParser &args, const std::string &name)
{
    const std::string value = args.get(name, "");
    if (value.empty())
        throw std::invalid_argument("--" + name + " is required");
    return value;
}

int
cmdEncode(const ArgParser &args)
{
    const auto data = readBinaryFile(requireOption(args, "in"));
    MatrixEncoder encoder(codecConfig(args));
    const auto strands = encoder.encode(data);
    writeStrandFile(requireOption(args, "out"), strands);
    std::cout << "encoded " << data.size() << " bytes into "
              << strands.size() << " strands ("
              << encoder.unitsForSize(data.size()) << " units)\n";
    return 0;
}

int
cmdSimulate(const ArgParser &args)
{
    const auto strands = readStrandFile(requireOption(args, "in"));
    const auto channel = makeChannel(args);
    Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 42)));
    CoverageModel coverage(args.getDouble("coverage", 10.0),
                           CoverageDistribution::Poisson);
    const auto run = simulateSequencing(strands, *channel, coverage, rng);
    writeStrandFile(requireOption(args, "out"), run.reads);
    std::cout << "simulated " << run.reads.size() << " reads from "
              << strands.size() << " strands via " << channel->name()
              << " (" << run.dropped_strands << " strands dropped)\n";
    return 0;
}

int
cmdCluster(const ArgParser &args)
{
    const auto reads = readStrandFile(requireOption(args, "in"));
    RashtchianClusterer clusterer(clustererConfig(args));
    const auto clustering = clusterer.cluster(reads);
    std::vector<std::vector<Strand>> groups;
    groups.reserve(clustering.clusters.size());
    const std::size_t min_size =
        static_cast<std::size_t>(args.getInt("min-cluster-size", 1));
    for (const auto &cluster : clustering.clusters) {
        if (cluster.size() < min_size)
            continue;
        std::vector<Strand> group;
        for (const std::uint32_t idx : cluster)
            group.push_back(reads[idx]);
        groups.push_back(std::move(group));
    }
    writeClusterFile(requireOption(args, "out"), groups);
    const auto &stats = clusterer.stats();
    std::cout << "clustered " << reads.size() << " reads into "
              << groups.size() << " clusters (theta " << stats.theta_low
              << "/" << stats.theta_high << ", "
              << stats.edit_distance_calls << " edit calls)\n";
    return 0;
}

int
cmdReconstruct(const ArgParser &args)
{
    const auto clusters = readClusterFile(requireOption(args, "in"));
    const std::size_t length =
        static_cast<std::size_t>(args.getInt("length", 0));
    if (length == 0)
        throw std::invalid_argument("--length (strand length) is required");
    const auto algo = makeReconstructor(args);
    const auto consensus = reconstructAll(
        *algo, clusters, length,
        static_cast<std::size_t>(args.getInt("threads", 1)));
    writeStrandFile(requireOption(args, "out"), consensus);
    std::cout << "reconstructed " << consensus.size()
              << " strands with " << algo->name() << "\n";
    return 0;
}

int
cmdDecode(const ArgParser &args)
{
    const auto strands = readStrandFile(requireOption(args, "in"));
    MatrixDecoder decoder(codecConfig(args));
    const auto report = decoder.decode(
        strands, static_cast<std::size_t>(args.getInt("units", 0)));
    std::cout << "decode " << (report.ok ? "OK" : "FAILED") << ": "
              << report.data.size() << " bytes, " << report.failed_rows
              << "/" << report.total_rows << " RS rows failed, "
              << report.corrected_errors << " symbol errors corrected\n";
    if (!report.data.empty())
        writeBinaryFile(requireOption(args, "out"), report.data);
    return report.ok ? 0 : 1;
}

int
cmdPipeline(const ArgParser &args)
{
    const auto data = readBinaryFile(requireOption(args, "in"));
    const auto codec_cfg = codecConfig(args);
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);
    const auto channel = makeChannel(args);
    auto clu_cfg = clustererConfig(args);
    RashtchianClusterer clusterer(clu_cfg);
    const auto recon = makeReconstructor(args);

    PipelineConfig cfg;
    cfg.coverage = CoverageModel(args.getDouble("coverage", 10.0),
                                 CoverageDistribution::Poisson);
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    cfg.num_threads =
        static_cast<std::size_t>(args.getInt("threads", 1));
    cfg.min_cluster_size =
        static_cast<std::size_t>(args.getInt("min-cluster-size", 2));
    cfg.max_decode_retries =
        static_cast<std::size_t>(args.getInt("retries", 0));

    PipelineModules mods;
    mods.encoder = &encoder;
    mods.decoder = &decoder;
    mods.channel = channel.get();
    mods.clusterer = &clusterer;
    mods.reconstructor = recon.get();
    // The NW reconstructor doubles as the recovery fallback when the
    // primary algorithm is something else.
    NwConsensusReconstructor fallback;
    if (cfg.max_decode_retries > 0 && args.get("algo", "nw") != "nw")
        mods.fallback_reconstructor = &fallback;

    std::unique_ptr<FaultInjector> injector;
    if (const auto plan = faultPlan(args, codec_cfg.index_nt)) {
        injector = std::make_unique<FaultInjector>(*plan);
        mods.fault_injector = injector.get();
    }

    Pipeline pipeline(mods, cfg);

    const std::string metrics_path = args.get("metrics-json", "");
    const std::string trace_path = args.get("trace-json", "");
    // A run report without contention data answers "what" but not
    // "why"; arm lock-wait sampling whenever a report was asked for,
    // unless DNASTORE_PROFILE_LOCKS was set explicitly (env wins either
    // way, including an explicit 0).
    if (!metrics_path.empty() &&
        std::getenv("DNASTORE_PROFILE_LOCKS") == nullptr)
        obs::locktime::enable();
    obs::TraceSink trace_sink;
    if (!trace_path.empty())
        obs::installTraceSink(&trace_sink);
    const auto result = pipeline.run(data);
    if (!trace_path.empty()) {
        obs::installTraceSink(nullptr);
        if (!obs::writeChromeTrace(trace_sink, trace_path))
            std::cerr << "warning: could not write " << trace_path << "\n";
        else
            std::cout << "trace: " << trace_path << " ("
                      << trace_sink.size() << " events)\n";
    }
    if (!metrics_path.empty()) {
        RunInfo info;
        info["tool"] = "dnastore pipeline";
        info["channel"] = channel->name();
        info["clusterer"] = clusterer.name();
        info["reconstructor"] = recon->name();
        info["seed"] = std::to_string(cfg.seed);
        info["threads"] = std::to_string(cfg.num_threads);
        info["input_bytes"] = std::to_string(data.size());
        info["rs_n"] = std::to_string(codec_cfg.rs_n);
        info["rs_k"] = std::to_string(codec_cfg.rs_k);
        info["payload_nt"] = std::to_string(codec_cfg.payload_nt);
        if (!writeRunReport(metrics_path, result, info))
            std::cerr << "warning: could not write " << metrics_path << "\n";
        else
            std::cout << "metrics: " << metrics_path << "\n";
    }

    std::cout << "strands " << result.encoded_strands << ", reads "
              << result.reads << ", clusters " << result.clusters
              << " (" << result.dropped_clusters << " dropped, "
              << result.malformed_reads << " malformed reads)"
              << "\nclustering accuracy "
              << result.clustering_accuracy
              << ", perfect reconstructions "
              << result.perfect_reconstructions << "\nlatency: encode "
              << result.latency.encoding << "s, cluster "
              << result.latency.clustering << "s, reconstruct "
              << result.latency.reconstruction << "s, decode "
              << result.latency.decoding << "s\nstages: encoding "
              << stageStatusName(result.status.encoding) << ", simulation "
              << stageStatusName(result.status.simulation) << ", clustering "
              << stageStatusName(result.status.clustering)
              << ", reconstruction "
              << stageStatusName(result.status.reconstruction)
              << ", decoding " << stageStatusName(result.status.decoding)
              << "\n";
    if (injector) {
        const auto &f = result.faults;
        std::cout << "faults injected: " << f.dropped_strands
                  << " strands dropped, " << f.truncated_reads
                  << " truncated, " << f.elongated_reads << " elongated, "
                  << f.corrupted_indices << " indices corrupted, "
                  << f.duplicate_conflicts << " duplicate conflicts, "
                  << f.garbage_reads << " garbage reads, "
                  << f.emptied_clusters << " clusters dropped, "
                  << f.merged_clusters << " merged\n";
    }
    for (const auto &error : result.errors)
        std::cout << "error [" << error.stage << "] " << error.message
                  << "\n";
    for (const auto &attempt : result.recovery_attempts)
        std::cout << "recovery: " << attempt.description << " -> "
                  << (attempt.ok ? "ok" : "failed") << " ("
                  << attempt.failed_rows << " rows failing)\n";
    std::cout << "decode " << (result.report.ok ? "OK" : "FAILED")
              << (result.recovered ? " (after recovery)" : "") << "\n";
    if (!result.report.data.empty())
        writeBinaryFile(requireOption(args, "out"), result.report.data);
    return result.report.ok && result.report.data == data ? 0 : 1;
}

archive::RetrievalConfig
retrievalConfig(const ArgParser &args)
{
    archive::RetrievalConfig cfg;
    if (args.get("channel", "iid") == "wetlab")
        cfg.channel = archive::RetrievalChannel::Wetlab;
    cfg.error_rate = args.getDouble("error-rate", cfg.error_rate);
    cfg.coverage = args.getDouble("coverage", cfg.coverage);
    cfg.seed = static_cast<std::uint64_t>(
        args.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.num_threads = static_cast<std::size_t>(args.getInt("threads", 1));
    cfg.max_decode_retries =
        static_cast<std::size_t>(args.getInt("retries", 1));
    return cfg;
}

/** Open --dir; on put, create it on demand with the CLI codec options. */
archive::OpenResult
openArchive(const ArgParser &args, bool create_if_missing)
{
    const std::string dir = requireOption(args, "dir");
    archive::OpenResult opened = archive::Archive::open(dir);
    if (opened.status == archive::ArchiveStatus::NotFound &&
        create_if_missing) {
        archive::ArchiveParams params;
        params.codec = codecConfig(args);
        params.max_shard_bytes = static_cast<std::uint64_t>(
            args.getInt("max-shard-bytes",
                        static_cast<std::int64_t>(params.max_shard_bytes)));
        return archive::Archive::create(dir, params);
    }
    return opened;
}

int
cmdArchivePut(const ArgParser &args)
{
    auto opened = openArchive(args, true);
    if (!opened.ok()) {
        std::cerr << "dnastore archive put: " << opened.error << "\n";
        return 1;
    }
    const auto data = readBinaryFile(requireOption(args, "in"));
    const auto result = opened.archive->put(
        requireOption(args, "name"), data,
        static_cast<std::size_t>(args.getInt("threads", 1)));
    if (!result.ok()) {
        std::cerr << "dnastore archive put: " << result.error << "\n";
        return 1;
    }
    std::cout << "stored '" << requireOption(args, "name") << "' ("
              << data.size() << " bytes) as object " << result.object_id
              << ": " << result.shards << " shard(s), " << result.strands
              << " tagged molecules; pool now "
              << opened.archive->poolSize() << " molecules\n";
    return 0;
}

int
cmdArchiveGet(const ArgParser &args)
{
    auto opened = openArchive(args, false);
    if (!opened.ok()) {
        std::cerr << "dnastore archive get: " << opened.error << "\n";
        return 1;
    }
    const std::string name = requireOption(args, "name");
    const auto result = opened.archive->get(name, retrievalConfig(args));
    for (std::size_t s = 0; s < result.shards.size(); ++s) {
        const auto &shard = result.shards[s];
        std::cout << "shard " << s << " (pair " << shard.pair_id << "): "
                  << (shard.ok ? "ok" : "FAILED") << ", " << shard.reads
                  << " reads, " << shard.clusters << " clusters"
                  << ", decoding "
                  << stageStatusName(shard.stages.decoding) << "\n";
        for (const auto &error : shard.errors)
            std::cout << "  error [" << error.stage << "] "
                      << error.message << "\n";
    }
    if (!result.ok()) {
        std::cerr << "dnastore archive get: " << result.error << "\n";
        return 1;
    }
    writeBinaryFile(requireOption(args, "out"), result.data);
    std::cout << "retrieved '" << name << "': " << result.data.size()
              << " bytes, " << result.shards.size()
              << " shard(s) decoded\n";
    return 0;
}

int
cmdArchiveLs(const ArgParser &args)
{
    const auto opened = openArchive(args, false);
    if (!opened.ok()) {
        std::cerr << "dnastore archive ls: " << opened.error << "\n";
        return 1;
    }
    if (args.getBool("json", false)) {
        // Canonical dnastore.archive_ls document — the same emitter the
        // server's LsOk reply uses, so scripts parse one schema.
        std::cout << archive::lsJson(*opened.archive) << "\n";
        return 0;
    }
    for (const auto &object : opened.archive->objects())
        std::cout << object.name << "\t" << object.size_bytes
                  << " bytes\t" << object.shards.size() << " shard(s)\n";
    std::cout << opened.archive->objects().size() << " object(s), "
              << opened.archive->poolSize() << " pooled molecules\n";
    return 0;
}

int
cmdArchiveStat(const ArgParser &args)
{
    const auto opened = openArchive(args, false);
    if (!opened.ok()) {
        std::cerr << "dnastore archive stat: " << opened.error << "\n";
        return 1;
    }
    const std::string name = requireOption(args, "name");
    const auto *object = opened.archive->stat(name);
    if (object == nullptr) {
        std::cerr << "dnastore archive stat: no object named '" << name
                  << "'\n";
        return 1;
    }
    if (args.getBool("json", false)) {
        std::cout << archive::statJson(*object) << "\n";
        return 0;
    }
    std::cout << "name: " << object->name << "\nid: " << object->id
              << "\nsize: " << object->size_bytes << " bytes\ncrc32: "
              << object->crc32_value << "\nshards:\n";
    for (const auto &shard : object->shards)
        std::cout << "  pair " << shard.pair_id << ": "
                  << shard.size_bytes << " bytes, " << shard.units
                  << " unit(s), " << shard.strands << " strands\n";
    return 0;
}

/**
 * Scrub (and with --repair, fix) an archive directory.  Exit code 0
 * when the archive is healthy after the run (warnings such as swept
 * staging files or dropped orphan records still exit 0 — the archive
 * is usable); 1 on Error-severity findings or an unusable archive.
 */
int
cmdArchiveFsck(const ArgParser &args)
{
    const std::string dir = requireOption(args, "dir");
    archive::FsckOptions options;
    options.repair = args.getBool("repair", false);
    options.deep = args.getBool("deep", false);
    options.retrieval = retrievalConfig(args);

    const archive::FsckReport report = archive::fsckArchive(dir, options);
    for (const auto &finding : report.findings) {
        std::cout << archive::fsckSeverityName(finding.severity) << ": "
                  << archive::fsckFindingKindName(finding.kind) << " ["
                  << finding.path << "] " << finding.detail;
        if (finding.repaired)
            std::cout << " (repaired)";
        else if (finding.repairable && !options.repair)
            std::cout << " (repairable; rerun with --repair)";
        std::cout << "\n";
    }
    std::cout << "fsck " << dir << ": " << report.objects << " object(s), "
              << report.shards << " shard(s), " << report.pool_records
              << " pool record(s); " << report.findings.size()
              << " finding(s), " << report.repaired_count
              << " repaired -> "
              << (report.clean()     ? "clean"
                  : report.healthy() ? "healthy"
                                     : "UNHEALTHY")
              << "\n";
    const std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        if (!obs::writeTextFile(
                json_path, archive::fsckReportJson(report, dir, options)))
            std::cerr << "warning: could not write " << json_path << "\n";
        else
            std::cout << "report: " << json_path << "\n";
    }
    return report.healthy() ? 0 : 1;
}

void archiveUsage();

int
cmdArchive(int argc, char **argv)
{
    if (argc < 3) {
        archiveUsage();
        return 2;
    }
    const std::string verb = argv[2];
    const ArgParser args(argc - 2, argv + 2);
    if (verb == "put")
        return cmdArchivePut(args);
    if (verb == "get")
        return cmdArchiveGet(args);
    if (verb == "ls")
        return cmdArchiveLs(args);
    if (verb == "stat")
        return cmdArchiveStat(args);
    if (verb == "fsck")
        return cmdArchiveFsck(args);
    archiveUsage();
    return 2;
}

void clientUsage();

/**
 * `dnastore client <verb>` — drive a running dnastored over its wire
 * protocol (docs/SERVER.md).  Exit 0 on Ok, 1 on any typed failure
 * (the status name is printed to stderr), 2 on usage errors.
 */
int
cmdClient(int argc, char **argv)
{
    if (argc < 3) {
        clientUsage();
        return 2;
    }
    const std::string verb = argv[2];
    const ArgParser args(argc - 2, argv + 2);
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.getInt("port", 0));
    if (port == 0) {
        std::cerr << "dnastore client: --port is required\n";
        return 2;
    }
    const int timeout_ms =
        static_cast<int>(args.getInt("timeout-ms", 30000));

    server::Client client;
    if (!client.connectTo(port, timeout_ms)) {
        std::cerr << "dnastore client: " << client.error() << "\n";
        return 1;
    }

    server::ClientReply reply;
    if (verb == "ping") {
        const std::string echo = args.get("echo", "dnastore");
        reply = client.ping({echo.begin(), echo.end()});
        if (reply.ok())
            std::cout << "pong: "
                      << std::string(reply.data.begin(),
                                     reply.data.end())
                      << "\n";
    } else if (verb == "put") {
        const auto data = readBinaryFile(requireOption(args, "in"));
        reply = client.put(requireOption(args, "name"), data);
        if (reply.ok())
            std::cout << reply.json << "\n";
    } else if (verb == "get") {
        reply = client.get(requireOption(args, "name"));
        if (reply.ok()) {
            writeBinaryFile(requireOption(args, "out"), reply.data);
            std::cout << "retrieved " << reply.data.size() << " bytes\n";
        }
    } else if (verb == "ls") {
        reply = client.ls();
        if (reply.ok())
            std::cout << reply.json << "\n";
    } else if (verb == "stat") {
        reply = client.stat(requireOption(args, "name"));
        if (reply.ok())
            std::cout << reply.json << "\n";
    } else {
        clientUsage();
        return 2;
    }

    if (!reply.ok()) {
        std::cerr << "dnastore client " << verb << ": "
                  << server::serverStatusName(reply.status)
                  << (reply.error.empty() ? "" : ": " + reply.error)
                  << "\n";
        return 1;
    }
    return 0;
}

void
clientUsage()
{
    std::cerr
        << "usage: dnastore client <verb> --port P [--timeout-ms N]\n"
           "verbs:\n"
           "  ping  [--echo TEXT]\n"
           "  put   --name NAME --in FILE\n"
           "  get   --name NAME --out FILE\n"
           "  ls\n"
           "  stat  --name NAME\n"
           "talks to a running dnastored on 127.0.0.1:P "
           "(see docs/SERVER.md)\n";
}

void
archiveUsage()
{
    std::cerr
        << "usage: dnastore archive <verb> --dir DIR [options]\n"
           "verbs:\n"
           "  put   --name NAME --in FILE [--threads N] "
           "[--max-shard-bytes N, codec opts on first put]\n"
           "  get   --name NAME --out FILE [--channel iid|wetlab "
           "--error-rate R --coverage C --seed S --threads N --retries N]\n"
           "  ls    [--json]    (canonical dnastore.archive_ls document)\n"
           "  stat  --name NAME [--json]  (dnastore.archive_stat)\n"
           "  fsck  [--repair] [--deep] [--json PATH] [get options for "
           "--deep decode runs]\n"
           "        audits manifest<->pool consistency and sweeps stale "
           "staging files;\n"
           "        --repair drops orphaned pool records and deletes "
           "stale temps,\n"
           "        --deep decodes every shard and CRC-verifies every "
           "object\n";
}

void
usage()
{
    std::cerr
        << "usage: dnastore <command> [options]\n"
           "commands:\n"
           "  encode      file -> strand list (--in, --out, codec opts)\n"
           "  simulate    strands -> noisy reads (--channel, --coverage)\n"
           "  cluster     reads -> clusters (--signature, --threads)\n"
           "  reconstruct clusters -> consensus (--algo, --length)\n"
           "  decode      consensus -> file (--units, codec opts)\n"
           "  pipeline    file -> file end to end\n"
           "  archive     multi-object DNA archive "
           "(put/get/ls/stat/fsck, see 'dnastore archive')\n"
           "  client      talk to a running dnastored "
           "(ping/put/get/ls/stat, see 'dnastore client')\n"
           "  report      diff two report/bench JSONs "
           "(perf-regression gate, see 'dnastore report diff')\n"
           "observability (pipeline): --metrics-json PATH writes the run\n"
           "report JSON; --trace-json PATH writes a Chrome trace\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    const ArgParser args(argc - 1, argv + 1);
    try {
        if (command == "encode")
            return cmdEncode(args);
        if (command == "simulate")
            return cmdSimulate(args);
        if (command == "cluster")
            return cmdCluster(args);
        if (command == "reconstruct")
            return cmdReconstruct(args);
        if (command == "decode")
            return cmdDecode(args);
        if (command == "pipeline")
            return cmdPipeline(args);
        if (command == "archive")
            return cmdArchive(argc, argv);
        if (command == "client")
            return cmdClient(argc, argv);
        if (command == "report")
            return tools::cmdReport(argc, argv);
        usage();
        return 2;
    } catch (const std::exception &error) {
        std::cerr << "dnastore " << command << ": " << error.what() << "\n";
        return 2;
    }
}
