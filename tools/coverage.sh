#!/usr/bin/env bash
# Coverage runner: instrumented build + test run + per-module line
# coverage table with a checked-in ratchet (coverage can only go up).
#
# Usage:
#   tools/coverage.sh [--strict] [--update] [--build-dir DIR] [--jobs N]
#
#   --strict     fail (instead of SKIP) when coverage tooling is missing
#   --update     raise the ratchet floors in tools/coverage_ratchet.txt
#                to the measured values (minus a small slack)
#
# With a Clang toolchain the source-based llvm-cov pipeline is used
# (llvm-profdata + llvm-cov export); with GCC, gcov's JSON output.  The
# aggregation and ratchet check live in tools/coverage_report.py.

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

STRICT=0
UPDATE=0
BUILD_DIR="build-cov"
JOBS="$(nproc 2> /dev/null || echo 4)"

while [ $# -gt 0 ]; do
    case "$1" in
        --strict) STRICT=1 ;;
        --update) UPDATE=1 ;;
        --build-dir)
            shift
            BUILD_DIR="${1:?--build-dir needs an argument}"
            ;;
        --jobs)
            shift
            JOBS="${1:?--jobs needs an argument}"
            ;;
        -h | --help)
            sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "coverage.sh: unknown argument: $1" >&2
            exit 2
            ;;
    esac
    shift
done

skip_or_fail() {
    if [ "$STRICT" -eq 1 ]; then
        echo "coverage.sh: ERROR: $1 (required with --strict)" >&2
        exit 1
    fi
    echo "coverage.sh: SKIP: $1"
    exit 0
}

command -v python3 > /dev/null 2>&1 || skip_or_fail "python3 not found"

# Configure + build an instrumented tree (benchmarks and examples add
# nothing to the measured suite).
cmake -B "$BUILD_DIR" -S . \
    -DDNASTORE_COVERAGE=ON \
    -DDNASTORE_BUILD_BENCH=OFF \
    -DDNASTORE_BUILD_EXAMPLES=OFF > /dev/null || exit 1
cmake --build "$BUILD_DIR" -j "$JOBS" > /dev/null || exit 1

COMPILER_ID="$(sed -n 's/^CMAKE_CXX_COMPILER_ID[^=]*=//p' \
    "$BUILD_DIR/CMakeCache.txt" 2> /dev/null)"
# CMAKE_CXX_COMPILER_ID is not cached by default; sniff the compiler.
if [ -z "$COMPILER_ID" ]; then
    CXX_BIN="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
        "$BUILD_DIR/CMakeCache.txt")"
    case "$("$CXX_BIN" --version 2> /dev/null | head -1)" in
        *clang*) COMPILER_ID="Clang" ;;
        *) COMPILER_ID="GNU" ;;
    esac
fi

if [ "$COMPILER_ID" = "Clang" ]; then
    command -v llvm-profdata > /dev/null 2>&1 ||
        skip_or_fail "llvm-profdata not found"
    command -v llvm-cov > /dev/null 2>&1 ||
        skip_or_fail "llvm-cov not found"
    MODE="llvm"
    export LLVM_PROFILE_FILE="$REPO_ROOT/$BUILD_DIR/profiles/%p.profraw"
else
    command -v gcov > /dev/null 2>&1 || skip_or_fail "gcov not found"
    MODE="gcov"
fi

ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure > /dev/null ||
    {
        echo "coverage.sh: test suite failed in the instrumented build" >&2
        exit 1
    }

ARGS=(--mode "$MODE" --build-dir "$BUILD_DIR" --src-root "$REPO_ROOT/src" \
    --ratchet "$REPO_ROOT/tools/coverage_ratchet.txt")
if [ "$UPDATE" -eq 1 ]; then
    ARGS+=(--update)
fi
# Keep a copy of the table next to the build tree (CI uploads it as an
# artifact); the ratchet verdict is the script's own exit status.
python3 tools/coverage_report.py "${ARGS[@]}" |
    tee "$BUILD_DIR/coverage-report.txt"
exit "${PIPESTATUS[0]}"
