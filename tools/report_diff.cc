#include "report_diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "archive/json_reader.hh"

namespace dnastore::tools
{
namespace
{

using archive::JsonValue;

/** One comparable series entry extracted from a report document. */
struct MetricValue
{
    double value = 0.0;
    bool higher_is_better = false;
};

using MetricMap = std::map<std::string, MetricValue>;

/** Verdict for one row of the diff table. */
enum class RowStatus : std::uint8_t
{
    Ok = 0,
    Improved,
    Regressed,
    BaselineOnly,
    CurrentOnly,
};

struct DiffRow
{
    std::string name;
    std::optional<double> baseline;
    std::optional<double> current;
    RowStatus status = RowStatus::Ok;
};

std::optional<std::string>
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

double
numberOf(const JsonValue &v)
{
    return v.asDouble().value_or(0.0);
}

/** dnastore.run_report: per-stage wall seconds + the stage total. */
void
extractRunReport(const JsonValue &doc, MetricMap &out)
{
    const JsonValue *stages = doc.find("stages");
    const JsonValue::Object *members =
        stages != nullptr ? stages->asObject() : nullptr;
    if (members == nullptr)
        return;
    for (const auto &[name, value] : *members) {
        if (const JsonValue *seconds = value.find("seconds"))
            out["stages." + name + ".seconds"] =
                MetricValue{numberOf(*seconds), false};
        else if (value.asDouble().has_value())
            out["stages." + name] = MetricValue{numberOf(value), false};
    }
}

/** dnastore.bench_table3: per-combination stage and total seconds. */
void
extractBenchTable3(const JsonValue &doc, MetricMap &out)
{
    const JsonValue *combos = doc.find("combinations");
    const JsonValue::Array *items =
        combos != nullptr ? combos->asArray() : nullptr;
    if (items == nullptr)
        return;
    for (const JsonValue &combo : *items) {
        const std::string *pipeline_name = nullptr;
        if (const JsonValue *p = combo.find("pipeline"))
            pipeline_name = p->asString();
        std::string prefix =
            pipeline_name != nullptr ? *pipeline_name : "combo";
        if (const JsonValue *coverage = combo.find("coverage")) {
            if (const auto cov = coverage->asUint())
                prefix += "@cov" + std::to_string(*cov);
        }
        const JsonValue *stages = combo.find("stages");
        const JsonValue::Object *members =
            stages != nullptr ? stages->asObject() : nullptr;
        if (members == nullptr)
            continue;
        for (const auto &[name, value] : *members) {
            if (value.asDouble().has_value())
                out[prefix + "." + name] =
                    MetricValue{numberOf(value), false};
        }
    }
}

/** dnastore.bench_archive_throughput: per-mode wall time + speedup. */
void
extractArchiveThroughput(const JsonValue &doc, MetricMap &out)
{
    const JsonValue *modes = doc.find("modes");
    const JsonValue::Array *items =
        modes != nullptr ? modes->asArray() : nullptr;
    if (items != nullptr) {
        for (const JsonValue &mode : *items) {
            const std::string *label = nullptr;
            if (const JsonValue *m = mode.find("mode"))
                label = m->asString();
            if (label == nullptr)
                continue;
            if (const JsonValue *seconds = mode.find("get_seconds"))
                out["modes." + *label + ".get_seconds"] =
                    MetricValue{numberOf(*seconds), false};
        }
    }
    if (const JsonValue *speedup = doc.find("speedup"))
        out["speedup"] = MetricValue{numberOf(*speedup), true};
}

/** dnastore.bench_server_load: client-observed latency + throughput. */
void
extractServerLoad(const JsonValue &doc, MetricMap &out)
{
    const JsonValue *latency = doc.find("latency");
    const JsonValue::Object *members =
        latency != nullptr ? latency->asObject() : nullptr;
    if (members != nullptr) {
        for (const auto &[name, value] : *members) {
            if (value.asDouble().has_value())
                out["latency." + name] =
                    MetricValue{numberOf(value), false};
        }
    }
    if (const JsonValue *rps = doc.find("throughput_rps"))
        out["throughput_rps"] = MetricValue{numberOf(*rps), true};
}

/** Dispatch on the document's "schema" string; false when unsupported. */
bool
extractMetrics(const JsonValue &doc, const std::string &schema,
               MetricMap &out)
{
    if (schema == "dnastore.run_report") {
        extractRunReport(doc, out);
        return true;
    }
    if (schema == "dnastore.bench_table3") {
        extractBenchTable3(doc, out);
        return true;
    }
    if (schema == "dnastore.bench_archive_throughput") {
        extractArchiveThroughput(doc, out);
        return true;
    }
    if (schema == "dnastore.bench_server_load") {
        extractServerLoad(doc, out);
        return true;
    }
    return false;
}

/**
 * Regression test for one row.  A lower-is-better row regresses when
 * current exceeds baseline by more than max(relative slack, absolute
 * floor); higher-is-better rows flip the sign.  The symmetric check on
 * the other side marks genuine improvements, which gate nothing but are
 * worth surfacing in the report.
 */
RowStatus
judge(double baseline, double current, bool higher_is_better,
      const ReportDiffOptions &options)
{
    const double slack =
        std::max(std::abs(baseline) * options.tolerance_pct / 100.0,
                 options.abs_floor);
    const double worse =
        higher_is_better ? baseline - current : current - baseline;
    if (worse > slack)
        return RowStatus::Regressed;
    if (worse < -slack)
        return RowStatus::Improved;
    return RowStatus::Ok;
}

const char *
statusLabel(RowStatus status)
{
    switch (status) {
    case RowStatus::Ok:
        return "ok";
    case RowStatus::Improved:
        return "improved";
    case RowStatus::Regressed:
        return "REGRESSED";
    case RowStatus::BaselineOnly:
        return "baseline-only";
    case RowStatus::CurrentOnly:
        return "current-only";
    }
    return "?";
}

std::string
fmtValue(const std::optional<double> &value)
{
    if (!value.has_value())
        return "-";
    std::ostringstream out;
    out << std::fixed << std::setprecision(4) << *value;
    return out.str();
}

std::string
fmtDelta(const DiffRow &row)
{
    if (!row.baseline.has_value() || !row.current.has_value())
        return "-";
    const double delta = *row.current - *row.baseline;
    std::ostringstream out;
    out << std::showpos << std::fixed << std::setprecision(4) << delta;
    if (std::abs(*row.baseline) > 0.0) {
        out << " (" << std::setprecision(1)
            << 100.0 * delta / std::abs(*row.baseline) << "%)";
    }
    return out.str();
}

/**
 * Markdown dump of one JSON value, depth-limited.  Used for the current
 * document's optional "attribution" section (worker busy fraction,
 * queue-wait percentiles) so the uploaded report explains *why* a
 * number moved, not just that it did.
 */
void
markdownValue(std::ostream &out, const std::string &indent,
              const std::string &label, const JsonValue &value, int depth)
{
    if (depth > 3)
        return;
    if (const JsonValue::Object *members = value.asObject()) {
        out << indent << "- `" << label << "`:\n";
        for (const auto &[key, member] : *members)
            markdownValue(out, indent + "  ", key, member, depth + 1);
        return;
    }
    out << indent << "- `" << label << "`: ";
    if (const std::string *text = value.asString())
        out << *text;
    else if (const auto flag = value.asBool())
        out << (*flag ? "true" : "false");
    else if (const JsonValue::Array *items = value.asArray()) {
        out << "[";
        for (std::size_t i = 0; i < items->size(); ++i) {
            if (i != 0)
                out << ", ";
            out << numberOf((*items)[i]);
        }
        out << "]";
    } else {
        out << numberOf(value);
    }
    out << "\n";
}

bool
writeMarkdown(const std::string &path, const std::string &schema,
              const std::vector<DiffRow> &rows, const JsonValue &current,
              const ReportDiffOptions &options, std::size_t regressions)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << "# Performance report diff (`" << schema << "`)\n\n";
    out << (regressions == 0
                ? "No regressions beyond tolerance"
                : std::to_string(regressions) + " metric(s) REGRESSED")
        << " (tolerance " << options.tolerance_pct << "%, floor "
        << options.abs_floor << ").\n\n";
    out << "| metric | baseline | current | delta | status |\n";
    out << "|---|---:|---:|---:|---|\n";
    for (const DiffRow &row : rows) {
        out << "| `" << row.name << "` | " << fmtValue(row.baseline)
            << " | " << fmtValue(row.current) << " | " << fmtDelta(row)
            << " | " << statusLabel(row.status) << " |\n";
    }
    if (const JsonValue *attribution = current.find("attribution")) {
        out << "\n## Attribution (current run)\n\n";
        if (const JsonValue::Object *members = attribution->asObject())
            for (const auto &[key, member] : *members)
                markdownValue(out, "", key, member, 0);
    }
    out << "\n";
    return out.good();
}

} // namespace

int
reportDiff(const std::string &baseline_path,
           const std::string &current_path,
           const ReportDiffOptions &options)
{
    const auto baseline_text = readWholeFile(baseline_path);
    if (!baseline_text.has_value()) {
        std::cerr << "report diff: cannot read " << baseline_path << "\n";
        return 2;
    }
    const auto current_text = readWholeFile(current_path);
    if (!current_text.has_value()) {
        std::cerr << "report diff: cannot read " << current_path << "\n";
        return 2;
    }
    const auto baseline_doc = archive::tryParseJson(*baseline_text);
    if (!baseline_doc.has_value()) {
        std::cerr << "report diff: " << baseline_path
                  << " is not valid JSON\n";
        return 2;
    }
    const auto current_doc = archive::tryParseJson(*current_text);
    if (!current_doc.has_value()) {
        std::cerr << "report diff: " << current_path
                  << " is not valid JSON\n";
        return 2;
    }

    const JsonValue *baseline_schema = baseline_doc->find("schema");
    const JsonValue *current_schema = current_doc->find("schema");
    const std::string *baseline_name =
        baseline_schema != nullptr ? baseline_schema->asString() : nullptr;
    const std::string *current_name =
        current_schema != nullptr ? current_schema->asString() : nullptr;
    if (baseline_name == nullptr || current_name == nullptr) {
        std::cerr << "report diff: missing \"schema\" key\n";
        return 2;
    }
    if (*baseline_name != *current_name) {
        std::cerr << "report diff: schema mismatch (" << *baseline_name
                  << " vs " << *current_name << ")\n";
        return 2;
    }

    MetricMap baseline_metrics;
    MetricMap current_metrics;
    if (!extractMetrics(*baseline_doc, *baseline_name,
                        baseline_metrics) ||
        !extractMetrics(*current_doc, *current_name, current_metrics)) {
        std::cerr << "report diff: unsupported schema \"" << *baseline_name
                  << "\"\n";
        return 2;
    }
    if (baseline_metrics.empty() && current_metrics.empty()) {
        std::cerr << "report diff: no comparable metrics found\n";
        return 2;
    }

    std::vector<DiffRow> rows;
    std::size_t regressions = 0;
    for (const auto &[name, base] : baseline_metrics) {
        DiffRow row;
        row.name = name;
        row.baseline = base.value;
        const auto it = current_metrics.find(name);
        if (it == current_metrics.end()) {
            row.status = RowStatus::BaselineOnly;
        } else {
            row.current = it->second.value;
            row.status = judge(base.value, it->second.value,
                               base.higher_is_better, options);
            if (row.status == RowStatus::Regressed)
                ++regressions;
        }
        rows.push_back(std::move(row));
    }
    for (const auto &[name, cur] : current_metrics) {
        if (baseline_metrics.find(name) != baseline_metrics.end())
            continue;
        DiffRow row;
        row.name = name;
        row.current = cur.value;
        row.status = RowStatus::CurrentOnly;
        rows.push_back(std::move(row));
    }

    std::cout << "report diff: " << *baseline_name << " ("
              << baseline_path << " -> " << current_path << ")\n";
    std::size_t name_width = 6;
    for (const DiffRow &row : rows)
        name_width = std::max(name_width, row.name.size());
    std::cout << std::left << std::setw(static_cast<int>(name_width) + 2)
              << "metric" << std::right << std::setw(12) << "baseline"
              << std::setw(12) << "current" << std::setw(20) << "delta"
              << "  status\n";
    for (const DiffRow &row : rows) {
        std::cout << std::left
                  << std::setw(static_cast<int>(name_width) + 2)
                  << row.name << std::right << std::setw(12)
                  << fmtValue(row.baseline) << std::setw(12)
                  << fmtValue(row.current) << std::setw(20)
                  << fmtDelta(row) << "  " << statusLabel(row.status)
                  << "\n";
    }
    if (regressions == 0)
        std::cout << "OK: all metrics within " << options.tolerance_pct
                  << "% (floor " << options.abs_floor << ")\n";
    else
        std::cout << "FAIL: " << regressions
                  << " metric(s) regressed beyond "
                  << options.tolerance_pct << "% (floor "
                  << options.abs_floor << ")\n";

    if (!options.markdown_path.empty() &&
        !writeMarkdown(options.markdown_path, *baseline_name, rows,
                       *current_doc, options, regressions)) {
        std::cerr << "report diff: cannot write "
                  << options.markdown_path << "\n";
        return 2;
    }
    return regressions == 0 ? 0 : 1;
}

int
cmdReport(int argc, char **argv)
{
    const auto usage = [] {
        std::cerr
            << "usage: dnastore report diff <baseline.json> "
               "<current.json>\n"
               "           [--tolerance-pct N] [--abs-floor N] "
               "[--markdown FILE]\n";
        return 2;
    };
    if (argc < 3)
        return usage();
    const std::string verb = argv[2];
    if (verb != "diff")
        return usage();

    ReportDiffOptions options;
    std::vector<std::string> paths;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto numberArg = [&](double &slot) -> bool {
            if (i + 1 >= argc)
                return false;
            char *end = nullptr;
            const double parsed = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0')
                return false;
            slot = parsed;
            return true;
        };
        if (arg == "--tolerance-pct") {
            if (!numberArg(options.tolerance_pct))
                return usage();
        } else if (arg == "--abs-floor") {
            if (!numberArg(options.abs_floor))
                return usage();
        } else if (arg == "--markdown") {
            if (i + 1 >= argc)
                return usage();
            options.markdown_path = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "report diff: unknown flag " << arg << "\n";
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage();
    return reportDiff(paths[0], paths[1], options);
}

} // namespace dnastore::tools
