#include "archive/fsck.hh"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "archive/manifest.hh"
#include "dna/fastx.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/span.hh"

namespace dnastore::archive
{

namespace
{

constexpr const char *kManifestFile = "manifest.json";
constexpr const char *kPoolFile = "pool.fasta";

/**
 * True for "<base>.tmp.<digits>.<digits>" — the staging-name pattern
 * obs::writeTextFile uses (pid + process-wide counter).  A crash while
 * a writer is staging orphans exactly one such file.
 */
bool
isStaleStagingName(const std::string &name)
{
    const std::string marker = ".tmp.";
    const std::size_t at = name.rfind(marker);
    if (at == std::string::npos || at == 0)
        return false;
    const std::string tail = name.substr(at + marker.size());
    const std::size_t dot = tail.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= tail.size())
        return false;
    const auto allDigits = [](const std::string &s) {
        return !s.empty() &&
               s.find_first_not_of("0123456789") == std::string::npos;
    };
    return allDigits(tail.substr(0, dot)) && allDigits(tail.substr(dot + 1));
}

void
addFinding(FsckReport &report, FsckFindingKind kind, FsckSeverity severity,
           bool repairable, std::string path, std::string detail)
{
    FsckFinding finding;
    finding.kind = kind;
    finding.severity = severity;
    finding.repairable = repairable;
    finding.path = std::move(path);
    finding.detail = std::move(detail);
    report.findings.push_back(std::move(finding));
}

/** Sweep orphaned atomic-write staging files in @p dir. */
void
auditStagingFiles(const std::string &dir, bool repair, FsckReport &report)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return; // Directory-level failures surface via the manifest read.
    for (const auto &entry : it) {
        std::error_code type_ec;
        if (!entry.is_regular_file(type_ec) || type_ec)
            continue;
        const std::string name = entry.path().filename().string();
        if (!isStaleStagingName(name))
            continue;
        addFinding(report, FsckFindingKind::StaleTempFile,
                   FsckSeverity::Warning, true, name,
                   "orphaned atomic-write staging file (writer crashed "
                   "or was killed mid-write)");
        if (repair) {
            std::error_code rm_ec;
            if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) {
                report.findings.back().repaired = true;
                report.repaired_count += 1;
            }
        }
    }
}

/** Deep scrub: decode every shard and CRC-verify every object. */
void
deepScrub(const std::string &dir, const FsckOptions &options,
          FsckReport &report)
{
    OpenResult opened = Archive::open(dir);
    if (!opened.ok()) {
        // Structural findings already explain why; nothing to decode.
        return;
    }
    const Archive &archive = *opened.archive;
    for (const ObjectEntry &object : archive.objects()) {
        const GetResult got = archive.get(object.name, options.retrieval);
        if (got.ok())
            continue;
        bool shard_failed = false;
        for (std::size_t s = 0; s < got.shards.size(); ++s) {
            const ShardOutcome &shard = got.shards[s];
            if (shard.ok)
                continue;
            shard_failed = true;
            std::string detail = "shard " + std::to_string(s) +
                                 " (pair " + std::to_string(shard.pair_id) +
                                 ") failed to decode";
            for (const PipelineError &err : shard.errors)
                detail += "; " + err.stage + ": " + err.message;
            addFinding(report, FsckFindingKind::ShardUndecodable,
                       FsckSeverity::Error, false, object.name,
                       std::move(detail));
        }
        if (!shard_failed) {
            addFinding(report, FsckFindingKind::ObjectCrcMismatch,
                       FsckSeverity::Error, false, object.name,
                       "every shard decoded but the reassembled object "
                       "failed its CRC: " + got.error);
        }
    }

    // The DNA self-description must decode too; it may lag manifest.json
    // by one save after crash recovery (the next save rewrites it).
    const ManifestParseResult dna =
        archive.decodeManifestFromDna(options.retrieval);
    if (!dna.manifest) {
        addFinding(report, FsckFindingKind::UndecodableDnaManifest,
                   FsckSeverity::Warning, false, kPoolFile,
                   "DNA-encoded manifest copy failed to decode: " +
                       dna.error);
    } else if (manifestJson(*dna.manifest) !=
               manifestJson(archive.manifest())) {
        addFinding(report, FsckFindingKind::StaleDnaManifest,
                   FsckSeverity::Note, false, kPoolFile,
                   "DNA-encoded manifest copy decodes but differs from "
                   "manifest.json (expected after crash recovery; the "
                   "next save rewrites it)");
    }
}

} // namespace

const char *
fsckFindingKindName(FsckFindingKind kind)
{
    switch (kind) {
    case FsckFindingKind::StaleTempFile:
        return "stale_temp_file";
    case FsckFindingKind::OrphanPoolRecord:
        return "orphan_pool_record";
    case FsckFindingKind::MalformedPoolRecord:
        return "malformed_pool_record";
    case FsckFindingKind::StrandCountMismatch:
        return "strand_count_mismatch";
    case FsckFindingKind::MissingManifest:
        return "missing_manifest";
    case FsckFindingKind::CorruptManifest:
        return "corrupt_manifest";
    case FsckFindingKind::MissingPool:
        return "missing_pool";
    case FsckFindingKind::UnreadablePool:
        return "unreadable_pool";
    case FsckFindingKind::MissingDnaManifest:
        return "missing_dna_manifest";
    case FsckFindingKind::StaleDnaManifest:
        return "stale_dna_manifest";
    case FsckFindingKind::UndecodableDnaManifest:
        return "undecodable_dna_manifest";
    case FsckFindingKind::ShardUndecodable:
        return "shard_undecodable";
    case FsckFindingKind::ObjectCrcMismatch:
        return "object_crc_mismatch";
    }
    return "unknown";
}

const char *
fsckSeverityName(FsckSeverity severity)
{
    switch (severity) {
    case FsckSeverity::Note:
        return "note";
    case FsckSeverity::Warning:
        return "warning";
    case FsckSeverity::Error:
        return "error";
    }
    return "unknown";
}

bool
FsckReport::healthy() const
{
    return std::none_of(findings.begin(), findings.end(),
                        [](const FsckFinding &f) {
                            return f.severity == FsckSeverity::Error;
                        });
}

FsckReport
fsckArchive(const std::string &dir, const FsckOptions &options)
{
    obs::Span span("archive/fsck");
    FsckReport report;
    obs::metrics().counter("archive.fsck_runs_total").add(1);

    // 1. Staging-file sweep runs even when the manifest is gone — a
    //    crashed create() can orphan a temp next to nothing else.
    auditStagingFiles(dir, options.repair, report);

    // 2. Manifest: must exist, parse, CRC-verify and hold the pair-id
    //    invariant (tryParseManifest enforces all of it).
    const std::string manifest_path = dir + "/" + kManifestFile;
    std::ifstream manifest_in(manifest_path, std::ios::binary);
    if (!manifest_in) {
        addFinding(report, FsckFindingKind::MissingManifest,
                   FsckSeverity::Error, false, kManifestFile,
                   "no manifest at " + manifest_path);
        report.status = ArchiveStatus::NotFound;
        report.error = "no manifest at " + manifest_path;
        return report;
    }
    std::ostringstream manifest_text;
    manifest_text << manifest_in.rdbuf();
    ManifestParseResult parsed = tryParseManifest(manifest_text.str());
    if (!parsed.manifest) {
        addFinding(report, FsckFindingKind::CorruptManifest,
                   FsckSeverity::Error, false, kManifestFile,
                   parsed.error);
        report.status = ArchiveStatus::CorruptManifest;
        report.error = parsed.error;
        return report;
    }
    const ArchiveManifest &manifest = *parsed.manifest;
    report.objects = manifest.objects.size();
    report.shards = manifest.totalShards();

    // 3. Pool audit: every record must parse and belong to a pair the
    //    manifest references; referenced pairs must hold exactly the
    //    strand counts the manifest promises.
    const std::string pool_path = dir + "/" + kPoolFile;
    std::ifstream pool_in(pool_path, std::ios::binary);
    if (!pool_in) {
        addFinding(report, FsckFindingKind::MissingPool,
                   FsckSeverity::Error, false, kPoolFile,
                   "no pool file at " + pool_path);
        report.status = ArchiveStatus::CorruptPool;
        report.error = "no pool file at " + pool_path;
        return report;
    }
    std::vector<FastaRecord> records;
    try {
        records = readFasta(pool_in);
    } catch (const std::exception &e) {
        addFinding(report, FsckFindingKind::UnreadablePool,
                   FsckSeverity::Error, false, kPoolFile,
                   std::string("unreadable pool file: ") + e.what());
        report.status = ArchiveStatus::CorruptPool;
        report.error = std::string("unreadable pool file: ") + e.what();
        return report;
    }
    report.pool_records = records.size();

    const std::uint32_t next_pair = manifest.nextPairId();
    std::vector<std::size_t> per_pair(next_pair, 0);
    std::vector<bool> keep(records.size(), true);
    bool pool_dirty = false;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto pair_id = tryParsePoolRecordPair(records[i].id);
        if (!pair_id) {
            addFinding(report, FsckFindingKind::MalformedPoolRecord,
                       FsckSeverity::Warning, true, records[i].id,
                       "pool record without a parsable pair id");
            keep[i] = false;
            pool_dirty = true;
            continue;
        }
        if (*pair_id >= next_pair) {
            addFinding(report, FsckFindingKind::OrphanPoolRecord,
                       FsckSeverity::Warning, true, records[i].id,
                       "pair " + std::to_string(*pair_id) +
                           " is not referenced by the manifest "
                           "(interrupted save: pool committed, manifest "
                           "not)");
            keep[i] = false;
            pool_dirty = true;
            continue;
        }
        per_pair[*pair_id] += 1;
    }
    for (const ObjectEntry &object : manifest.objects) {
        for (const ShardEntry &shard : object.shards) {
            if (per_pair[shard.pair_id] == shard.strands)
                continue;
            addFinding(
                report, FsckFindingKind::StrandCountMismatch,
                FsckSeverity::Error, false, object.name,
                "pair " + std::to_string(shard.pair_id) +
                    ": manifest promises " +
                    std::to_string(shard.strands) + " strands, pool has " +
                    std::to_string(per_pair[shard.pair_id]));
            report.status = ArchiveStatus::CorruptPool;
        }
    }
    if (next_pair > 0 && per_pair[kManifestPairId] == 0) {
        addFinding(report, FsckFindingKind::MissingDnaManifest,
                   FsckSeverity::Warning, false, kPoolFile,
                   "pool holds no pair-0 molecules: the DNA-encoded "
                   "manifest copy is gone (the next save rewrites it)");
    }
    if (report.status != ArchiveStatus::Ok)
        report.error = "pool/manifest strand counts diverge";

    // 4. Repair: drop orphaned/malformed records by an atomic rewrite.
    //    Renumbering record indices is safe — only the pair id is load-
    //    bearing — and matches what the next save would emit anyway.
    if (options.repair && pool_dirty) {
        std::vector<FastaRecord> kept;
        kept.reserve(records.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
            if (!keep[i])
                continue;
            const auto pair_id = tryParsePoolRecordPair(records[i].id);
            kept.push_back({poolRecordId(kept.size(), *pair_id),
                            std::move(records[i].sequence)});
        }
        std::ostringstream pool_text;
        writeFasta(pool_text, kept);
        if (obs::writeTextFile(pool_path, pool_text.str())) {
            for (FsckFinding &finding : report.findings) {
                if ((finding.kind == FsckFindingKind::OrphanPoolRecord ||
                     finding.kind ==
                         FsckFindingKind::MalformedPoolRecord) &&
                    !finding.repaired) {
                    finding.repaired = true;
                    report.repaired_count += 1;
                }
            }
        }
    }

    // 5. Deep scrub through the codec (decodes mixed-pool shards, so it
    //    runs after any repair to audit what a reader would now see).
    if (options.deep && report.status == ArchiveStatus::Ok)
        deepScrub(dir, options, report);

    if (report.status == ArchiveStatus::Ok && !report.healthy()) {
        report.status = ArchiveStatus::CorruptPool;
        report.error = "deep scrub found undecodable data";
    }
    obs::metrics()
        .counter("archive.fsck_findings_total")
        .add(report.findings.size());
    obs::metrics()
        .counter("archive.fsck_repairs_total")
        .add(report.repaired_count);
    return report;
}

std::string
fsckReportJson(const FsckReport &report, const std::string &dir,
               const FsckOptions &options)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("archive_dir");
    json.value(dir);
    json.key("checked");
    json.beginObject();
    json.key("objects");
    json.value(static_cast<std::uint64_t>(report.objects));
    json.key("pool_records");
    json.value(static_cast<std::uint64_t>(report.pool_records));
    json.key("shards");
    json.value(static_cast<std::uint64_t>(report.shards));
    json.endObject();
    json.key("clean");
    json.value(report.clean());
    json.key("deep");
    json.value(options.deep);
    json.key("error");
    json.value(report.error);
    json.key("findings");
    json.beginArray();
    for (const FsckFinding &finding : report.findings) {
        json.beginObject();
        json.key("detail");
        json.value(finding.detail);
        json.key("kind");
        json.value(fsckFindingKindName(finding.kind));
        json.key("path");
        json.value(finding.path);
        json.key("repairable");
        json.value(finding.repairable);
        json.key("repaired");
        json.value(finding.repaired);
        json.key("severity");
        json.value(fsckSeverityName(finding.severity));
        json.endObject();
    }
    json.endArray();
    json.key("healthy");
    json.value(report.healthy());
    json.key("repair");
    json.value(options.repair);
    json.key("repaired_count");
    json.value(static_cast<std::uint64_t>(report.repaired_count));
    json.key("schema");
    json.value("dnastore.fsck_report");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});
    json.key("status");
    json.value(archiveStatusName(report.status));
    json.endObject();
    return json.text();
}

} // namespace dnastore::archive
