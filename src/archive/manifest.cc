#include "archive/manifest.hh"

#include <algorithm>

#include "archive/json_reader.hh"
#include "obs/json.hh"
#include "util/crc32.hh"

namespace dnastore::archive
{

namespace
{

std::uint32_t
crcOfString(const std::string &text)
{
    return crc32({reinterpret_cast<const std::uint8_t *>(text.data()),
                  text.size()});
}

void
writeShard(obs::JsonWriter &json, const ShardEntry &shard)
{
    json.beginObject();
    json.key("pair_id");
    json.value(std::uint64_t{shard.pair_id});
    json.key("size_bytes");
    json.value(std::uint64_t{shard.size_bytes});
    json.key("strands");
    json.value(std::uint64_t{shard.strands});
    json.key("units");
    json.value(std::uint64_t{shard.units});
    json.endObject();
}

void
writeObject(obs::JsonWriter &json, const ObjectEntry &object)
{
    json.beginObject();
    json.key("crc32");
    json.value(std::uint64_t{object.crc32_value});
    json.key("id");
    json.value(std::uint64_t{object.id});
    json.key("name");
    json.value(object.name);
    json.key("shards");
    json.beginArray();
    for (const ShardEntry &shard : object.shards)
        writeShard(json, shard);
    json.endArray();
    json.key("size_bytes");
    json.value(std::uint64_t{object.size_bytes});
    json.endObject();
}

void
writePayload(obs::JsonWriter &json, const ArchiveManifest &m)
{
    json.beginObject();
    json.key("objects");
    json.beginArray();
    for (const ObjectEntry &object : m.objects)
        writeObject(json, object);
    json.endArray();
    json.key("params");
    json.beginObject();
    json.key("codec");
    json.beginObject();
    json.key("index_nt");
    json.value(std::uint64_t{m.params.codec.index_nt});
    json.key("payload_nt");
    json.value(std::uint64_t{m.params.codec.payload_nt});
    json.key("randomizer_seed");
    json.value(std::uint64_t{m.params.codec.randomizer_seed});
    json.key("rs_k");
    json.value(std::uint64_t{m.params.codec.rs_k});
    json.key("rs_n");
    json.value(std::uint64_t{m.params.codec.rs_n});
    json.key("scheme");
    json.value(layoutSchemeName(m.params.codec.scheme));
    json.endObject();
    json.key("max_shard_bytes");
    json.value(std::uint64_t{m.params.max_shard_bytes});
    json.key("primer");
    json.beginObject();
    json.key("length");
    json.value(std::uint64_t{m.params.primer.length});
    json.key("max_gc");
    json.value(m.params.primer.max_gc);
    json.key("max_homopolymer");
    json.value(std::uint64_t{m.params.primer.max_homopolymer});
    json.key("min_gc");
    json.value(m.params.primer.min_gc);
    json.key("min_hamming");
    json.value(std::uint64_t{m.params.primer.min_hamming});
    json.endObject();
    json.key("primer_seed");
    json.value(std::uint64_t{m.params.primer_seed});
    json.endObject();
    json.endObject();
}

/** Fetch a required unsigned integer member. */
bool
readUint(const JsonValue &obj, std::string_view key, std::uint64_t &out,
         std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr) {
        error = "missing field: " + std::string(key);
        return false;
    }
    const auto u = v->asUint();
    if (!u) {
        error = "field is not a non-negative integer: " + std::string(key);
        return false;
    }
    out = *u;
    return true;
}

bool
readDouble(const JsonValue &obj, std::string_view key, double &out,
           std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr) {
        error = "missing field: " + std::string(key);
        return false;
    }
    const auto d = v->asDouble();
    if (!d) {
        error = "field is not a number: " + std::string(key);
        return false;
    }
    out = *d;
    return true;
}

bool
parseShard(const JsonValue &value, ShardEntry &shard, std::string &error)
{
    std::uint64_t pair_id = 0;
    std::uint64_t units = 0;
    std::uint64_t strands = 0;
    if (!readUint(value, "pair_id", pair_id, error) ||
        !readUint(value, "size_bytes", shard.size_bytes, error) ||
        !readUint(value, "strands", strands, error) ||
        !readUint(value, "units", units, error)) {
        return false;
    }
    if (pair_id == 0 || pair_id > 0xffffffffULL) {
        error = "shard pair_id out of range (0 is reserved)";
        return false;
    }
    shard.pair_id = static_cast<std::uint32_t>(pair_id);
    shard.units = static_cast<std::uint32_t>(units);
    shard.strands = static_cast<std::uint32_t>(strands);
    return true;
}

bool
parseObjectEntry(const JsonValue &value, ObjectEntry &object,
                 std::string &error)
{
    const std::string *name =
        value.find("name") ? value.find("name")->asString() : nullptr;
    if (name == nullptr) {
        error = "object entry lacks a string name";
        return false;
    }
    object.name = *name;
    std::uint64_t crc = 0;
    std::uint64_t id = 0;
    if (!readUint(value, "crc32", crc, error) ||
        !readUint(value, "id", id, error) ||
        !readUint(value, "size_bytes", object.size_bytes, error)) {
        return false;
    }
    if (crc > 0xffffffffULL || id > 0xffffffffULL) {
        error = "object crc32/id out of 32-bit range";
        return false;
    }
    object.crc32_value = static_cast<std::uint32_t>(crc);
    object.id = static_cast<std::uint32_t>(id);
    const JsonValue *shards = value.find("shards");
    const JsonValue::Array *items =
        shards != nullptr ? shards->asArray() : nullptr;
    if (items == nullptr) {
        error = "object entry lacks a shards array";
        return false;
    }
    std::uint64_t total = 0;
    for (const JsonValue &item : *items) {
        ShardEntry shard;
        if (!parseShard(item, shard, error))
            return false;
        total += shard.size_bytes;
        object.shards.push_back(shard);
    }
    if (total != object.size_bytes) {
        error = "object '" + object.name +
                "': shard sizes do not sum to size_bytes";
        return false;
    }
    return true;
}

bool
parseParams(const JsonValue &value, ArchiveParams &params, std::string &error)
{
    const JsonValue *codec = value.find("codec");
    const JsonValue *primer = value.find("primer");
    if (codec == nullptr || !codec->isObject() || primer == nullptr ||
        !primer->isObject()) {
        error = "params lacks codec/primer sections";
        return false;
    }
    std::uint64_t payload_nt = 0;
    std::uint64_t index_nt = 0;
    std::uint64_t rs_n = 0;
    std::uint64_t rs_k = 0;
    if (!readUint(*codec, "index_nt", index_nt, error) ||
        !readUint(*codec, "payload_nt", payload_nt, error) ||
        !readUint(*codec, "randomizer_seed",
                  params.codec.randomizer_seed, error) ||
        !readUint(*codec, "rs_k", rs_k, error) ||
        !readUint(*codec, "rs_n", rs_n, error)) {
        return false;
    }
    params.codec.payload_nt = static_cast<std::size_t>(payload_nt);
    params.codec.index_nt = static_cast<std::size_t>(index_nt);
    params.codec.rs_n = static_cast<std::size_t>(rs_n);
    params.codec.rs_k = static_cast<std::size_t>(rs_k);
    const std::string *scheme =
        codec->find("scheme") ? codec->find("scheme")->asString() : nullptr;
    if (scheme == nullptr) {
        error = "codec lacks a scheme name";
        return false;
    }
    if (*scheme == "baseline") {
        params.codec.scheme = LayoutScheme::Baseline;
    } else if (*scheme == "gini") {
        params.codec.scheme = LayoutScheme::Gini;
    } else if (*scheme == "dnamapper") {
        params.codec.scheme = LayoutScheme::DNAMapper;
    } else {
        error = "unknown codec scheme: " + *scheme;
        return false;
    }

    std::uint64_t length = 0;
    std::uint64_t min_hamming = 0;
    std::uint64_t max_homopolymer = 0;
    if (!readUint(*primer, "length", length, error) ||
        !readDouble(*primer, "max_gc", params.primer.max_gc, error) ||
        !readUint(*primer, "max_homopolymer", max_homopolymer, error) ||
        !readDouble(*primer, "min_gc", params.primer.min_gc, error) ||
        !readUint(*primer, "min_hamming", min_hamming, error)) {
        return false;
    }
    params.primer.length = static_cast<std::size_t>(length);
    params.primer.min_hamming = static_cast<std::size_t>(min_hamming);
    params.primer.max_homopolymer =
        static_cast<std::size_t>(max_homopolymer);

    if (!readUint(value, "max_shard_bytes", params.max_shard_bytes,
                  error) ||
        !readUint(value, "primer_seed", params.primer_seed, error)) {
        return false;
    }
    if (params.max_shard_bytes == 0) {
        error = "max_shard_bytes must be positive";
        return false;
    }
    return true;
}

} // namespace

const ObjectEntry *
ArchiveManifest::findObject(std::string_view name) const
{
    const auto it = std::find_if(
        objects.begin(), objects.end(),
        [&name](const ObjectEntry &o) { return o.name == name; });
    return it == objects.end() ? nullptr : &*it;
}

std::uint32_t
ArchiveManifest::nextObjectId() const
{
    std::uint32_t next = 0;
    for (const ObjectEntry &object : objects)
        next = std::max(next, object.id + 1);
    return next;
}

std::size_t
ArchiveManifest::totalShards() const
{
    std::size_t total = 0;
    for (const ObjectEntry &object : objects)
        total += object.shards.size();
    return total;
}

std::uint32_t
ArchiveManifest::nextPairId() const
{
    return static_cast<std::uint32_t>(1 + totalShards());
}

std::string
manifestPayloadJson(const ArchiveManifest &m)
{
    obs::JsonWriter json;
    writePayload(json, m);
    return json.text();
}

std::string
manifestJson(const ArchiveManifest &m)
{
    const std::string payload = manifestPayloadJson(m);
    // JsonWriter has no raw-splice primitive, so the document is
    // assembled from canonical pieces by hand: the payload is itself
    // canonical JsonWriter output, and the guarded bytes are exactly
    // what tryParseManifest recomputes.
    std::string out = "{\"crc32\":";
    out += std::to_string(crcOfString(payload));
    out += ",\"payload\":";
    out += payload;
    out += ",\"schema\":\"dnastore.archive_manifest\",\"schema_version\":";
    out += std::to_string(kManifestSchemaVersion);
    out += "}";
    return out;
}

ManifestParseResult
tryParseManifest(std::string_view text)
{
    ManifestParseResult result;
    const auto doc = tryParseJson(text);
    if (!doc) {
        result.error = "manifest is not well-formed JSON";
        return result;
    }
    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || schema->asString() == nullptr ||
        *schema->asString() != "dnastore.archive_manifest") {
        result.error = "manifest schema is not dnastore.archive_manifest";
        return result;
    }
    std::uint64_t version = 0;
    if (!readUint(*doc, "schema_version", version, result.error))
        return result;
    if (version != std::uint64_t{kManifestSchemaVersion}) {
        result.error =
            "unsupported schema_version " + std::to_string(version);
        return result;
    }
    std::uint64_t stored_crc = 0;
    if (!readUint(*doc, "crc32", stored_crc, result.error))
        return result;
    const JsonValue *payload = doc->find("payload");
    if (payload == nullptr || !payload->isObject()) {
        result.error = "manifest lacks a payload object";
        return result;
    }

    ArchiveManifest manifest;
    const JsonValue *params = payload->find("params");
    if (params == nullptr || !params->isObject()) {
        result.error = "payload lacks a params object";
        return result;
    }
    if (!parseParams(*params, manifest.params, result.error))
        return result;
    const JsonValue *objects = payload->find("objects");
    const JsonValue::Array *items =
        objects != nullptr ? objects->asArray() : nullptr;
    if (items == nullptr) {
        result.error = "payload lacks an objects array";
        return result;
    }
    for (const JsonValue &item : *items) {
        ObjectEntry object;
        if (!parseObjectEntry(item, object, result.error))
            return result;
        if (manifest.findObject(object.name) != nullptr) {
            result.error = "duplicate object name: " + object.name;
            return result;
        }
        manifest.objects.push_back(std::move(object));
    }

    // Pair-id guard: loaders size per-pair tables from nextPairId()
    // (= 1 + totalShards), so every shard's pair id must land in
    // [1, totalShards] and no two shards may share one — by pigeonhole
    // the ids are then exactly the contiguous block put() allocates.
    // A hand-edited manifest with a hole (say one shard at pair 7)
    // would otherwise index past those tables.
    std::vector<bool> used(manifest.totalShards() + 1, false);
    for (const ObjectEntry &object : manifest.objects) {
        for (const ShardEntry &shard : object.shards) {
            if (shard.pair_id >= used.size()) {
                result.error =
                    "object '" + object.name + "': shard pair_id " +
                    std::to_string(shard.pair_id) +
                    " out of range for " +
                    std::to_string(manifest.totalShards()) + " shard(s)";
                return result;
            }
            if (used[shard.pair_id]) {
                result.error = "primer pair " +
                               std::to_string(shard.pair_id) +
                               " addresses two shards";
                return result;
            }
            used[shard.pair_id] = true;
        }
    }

    // CRC guard: the canonical re-serialisation of what we parsed must
    // hash to the stored value, so silent corruption of any guarded
    // field (and any truncation) is caught here.
    const std::string canonical = manifestPayloadJson(manifest);
    if (crcOfString(canonical) != stored_crc) {
        result.error = "manifest payload CRC mismatch";
        return result;
    }
    result.manifest = std::move(manifest);
    return result;
}

} // namespace dnastore::archive
