/**
 * @file
 * `archive fsck`: offline scrub and repair of an archive directory.
 *
 * The archive's crash-safety protocol (pool.fasta first, manifest.json
 * rename as the commit point, unique per-writer staging names) means a
 * kill at any instant leaves one of a small set of states.  fsck audits
 * a directory against the full taxonomy — stale atomic-write staging
 * files, orphaned pool records from an interrupted save, pool/manifest
 * strand-count divergence, unparsable manifests — and repairs what is
 * safely repairable: staging files are deleted, orphaned and malformed
 * pool records dropped by an atomic pool rewrite.  `--deep` extends the
 * audit through the codec: every shard is decoded out of the pool and
 * every object CRC-verified, plus the DNA-encoded manifest copy.
 *
 * fsck never throws and never mutates anything unless options.repair is
 * set.  It assumes exclusive access to the directory (no concurrent
 * writer), like any filesystem fsck.
 *
 * Findings are also emitted as a schema-versioned JSON document
 * (`dnastore.fsck_report`, validated by tools/check_obs_json.py) so the
 * chaos harness and CI can assert on them mechanically.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.hh"

namespace dnastore::archive
{

/** Everything fsck knows how to detect. */
enum class FsckFindingKind : std::uint8_t
{
    StaleTempFile = 0,    //!< Orphaned atomic-write staging file.
    OrphanPoolRecord,     //!< Pool pair id the manifest never references.
    MalformedPoolRecord,  //!< Pool record without a parsable pair id.
    StrandCountMismatch,  //!< Pool strand count != manifest shard count.
    MissingManifest,      //!< manifest.json absent.
    CorruptManifest,      //!< manifest.json unparsable / bad CRC / schema.
    MissingPool,          //!< pool.fasta absent.
    UnreadablePool,       //!< pool.fasta not parsable as FASTA.
    MissingDnaManifest,   //!< No pair-0 molecules (DNA self-description).
    StaleDnaManifest,     //!< Deep: DNA copy decodes but differs from JSON.
    UndecodableDnaManifest, //!< Deep: DNA manifest copy failed to decode.
    ShardUndecodable,     //!< Deep: a shard failed to decode byte-exactly.
    ObjectCrcMismatch,    //!< Deep: reassembled object failed its CRC.
};

/** Stable kind name used in reports and the JSON document. */
const char *fsckFindingKindName(FsckFindingKind kind);

enum class FsckSeverity : std::uint8_t
{
    Note = 0, //!< Informational; expected after clean crash recovery.
    Warning,  //!< Inconsistent but recoverable; repair can fix it.
    Error,    //!< Data loss or an unusable archive; not auto-repairable.
};

const char *fsckSeverityName(FsckSeverity severity);

/** One audited inconsistency. */
struct FsckFinding
{
    FsckFindingKind kind = FsckFindingKind::StaleTempFile;
    FsckSeverity severity = FsckSeverity::Note;
    bool repairable = false; //!< fsck knows a safe repair for this.
    bool repaired = false;   //!< The repair ran (options.repair).
    std::string path;        //!< File / record / object concerned.
    std::string detail;      //!< Human-readable explanation.
};

struct FsckOptions
{
    bool repair = false; //!< Apply safe repairs (temps, orphan records).
    bool deep = false;   //!< Decode every shard + object CRC + DNA copy.
    /** Simulated-retrieval knobs for the deep scrub decode runs. */
    RetrievalConfig retrieval{};
};

/** Outcome of one fsck run. */
struct FsckReport
{
    /** Ok when the archive is usable (possibly after repair). */
    ArchiveStatus status = ArchiveStatus::Ok;
    std::string error; //!< Detail when status != Ok.
    std::vector<FsckFinding> findings;

    // What was audited.
    std::size_t objects = 0;
    std::size_t shards = 0;
    std::size_t pool_records = 0;
    std::size_t repaired_count = 0; //!< Findings actually repaired.

    /** No findings at all: byte-perfect archive. */
    bool clean() const { return findings.empty(); }

    /** No Error-severity findings: archive fully usable. */
    bool healthy() const;
};

/**
 * Audit (and optionally repair) the archive at @p dir.  Never throws;
 * IO and parse failures become findings + a non-Ok status.
 */
[[nodiscard]] FsckReport fsckArchive(const std::string &dir,
                                     const FsckOptions &options = {});

/**
 * The report as a `dnastore.fsck_report` JSON document (schema_version
 * from obs::kSchemaVersion, canonical sorted-key emission).
 */
[[nodiscard]] std::string fsckReportJson(const FsckReport &report,
                                         const std::string &dir,
                                         const FsckOptions &options);

} // namespace dnastore::archive
