/**
 * @file
 * Minimal no-throw JSON reader for the archive layer.  The archive
 * manifest is written with obs::JsonWriter (canonical, sorted keys) and
 * must be read back without violating the archive's no-throw contract,
 * so parsing returns std::optional instead of raising: malformed input,
 * excessive nesting and trailing garbage all yield std::nullopt.
 *
 * The DOM is deliberately small: null, bool, number (double, with the
 * exact std::uint64_t kept when the literal was a non-negative
 * integer), string, array and object.  Object keys are stored in a
 * sorted std::map, matching the canonical key order the writer emits,
 * so serialise(parse(text)) round-trips byte-exactly for documents
 * produced by obs::JsonWriter.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnastore::archive
{

/** One parsed JSON value (recursive sum type). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null = 0,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;
    explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit JsonValue(double d) : kind_(Kind::Number), number_(d) {}
    explicit JsonValue(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /**
     * Typed accessors.  Each returns std::nullopt (or nullptr) when the
     * value has a different kind, so callers can chain lookups without
     * branching on kind() first.
     */
    std::optional<bool> asBool() const;
    std::optional<double> asDouble() const;
    /** Non-negative integer literals only (exact, no double rounding). */
    std::optional<std::uint64_t> asUint() const;
    const std::string *asString() const;
    const Array *asArray() const;
    const Object *asObject() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Construction helpers used by the parser. */
    [[nodiscard]] static JsonValue makeArray(Array items);
    [[nodiscard]] static JsonValue makeObject(Object members);
    [[nodiscard]] static JsonValue makeUint(std::uint64_t value,
                                            double as_double);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    bool has_uint_ = false;
    std::uint64_t uint_ = 0;
    std::string string_;
    std::shared_ptr<Array> array_;   //!< Set iff kind_ == Array.
    std::shared_ptr<Object> object_; //!< Set iff kind_ == Object.
};

/**
 * Parse one JSON document.  The whole input must be consumed (trailing
 * whitespace allowed); any syntax error, unsupported escape or nesting
 * deeper than an internal bound returns std::nullopt.  Never throws.
 */
[[nodiscard]] std::optional<JsonValue> tryParseJson(std::string_view text);

} // namespace dnastore::archive
