/**
 * @file
 * The archive manifest: the schema-versioned, CRC-guarded table of
 * contents of a multi-object DNA archive (schema
 * `dnastore.archive_manifest`, see docs/ARCHIVE.md).
 *
 * The manifest maps object names to primer-pair addresses: every shard
 * of every object is tagged with its own primer pair, so a pair id is a
 * PCR-selectable "key" into the mixed pool (paper Sections II-E/F;
 * Yazdi et al., rewritable random-access DNA storage).  Pair id 0 is
 * reserved for the manifest itself, which is also encoded into the pool
 * as a DNA object so the archive stays self-describing.
 *
 * Serialisation uses obs::JsonWriter (canonical, sorted keys); the
 * document embeds a CRC-32 of the canonical payload section, so a
 * truncated or hand-edited manifest is rejected on load.  Parsing never
 * throws: tryParseManifest returns an error message instead.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codec/matrix_codec.hh"
#include "codec/primer.hh"

namespace dnastore::archive
{

/** Primer pair id reserved for the DNA-encoded manifest object. */
inline constexpr std::uint32_t kManifestPairId = 0;

/**
 * On-disk manifest format version.  Deliberately independent of
 * obs::kSchemaVersion: report documents may evolve freely, but bumping
 * this invalidates every stored archive, so it moves only when the
 * manifest payload layout itself changes.
 */
inline constexpr std::uint32_t kManifestSchemaVersion = 1;

/** One shard of an object: an independent codec run under its own pair. */
struct ShardEntry
{
    std::uint32_t pair_id = 0;     //!< Primer pair addressing this shard.
    std::uint64_t size_bytes = 0;  //!< Payload bytes stored in this shard.
    std::uint32_t units = 0;       //!< Encoding units of the codec run.
    std::uint32_t strands = 0;     //!< Tagged molecules in the pool.
};

/** One stored object (file) and its shard list. */
struct ObjectEntry
{
    std::string name;              //!< Unique user-visible key.
    std::uint32_t id = 0;          //!< Monotonic archive-local id.
    std::uint64_t size_bytes = 0;  //!< Total payload bytes.
    std::uint32_t crc32_value = 0; //!< CRC-32 of the whole payload.
    std::vector<ShardEntry> shards;
};

/** Immutable per-archive parameters, fixed at create time. */
struct ArchiveParams
{
    MatrixCodecConfig codec;       //!< Geometry of every shard's codec run.
    PrimerConstraints primer;      //!< Design constraints for pair library.
    std::uint64_t primer_seed = 0xa5c111e5eedULL; //!< Library design seed.
    std::uint64_t max_shard_bytes = 2048; //!< Shard payload upper bound.
};

/** The archive's table of contents. */
struct ArchiveManifest
{
    ArchiveParams params;
    std::vector<ObjectEntry> objects;

    /** Object lookup by name; nullptr when absent. */
    const ObjectEntry *findObject(std::string_view name) const;

    /** Id for the next stored object (max existing + 1). */
    std::uint32_t nextObjectId() const;

    /** Shard count across all objects. */
    std::size_t totalShards() const;

    /**
     * First unused primer pair id.  Pair 0 is the manifest's; object
     * shards consume ids 1..totalShards() in allocation order (objects
     * are never deleted, so ids are never reused).
     */
    std::uint32_t nextPairId() const;
};

/**
 * Canonical JSON of the CRC-guarded payload section ("objects" +
 * "params").  The stored crc32 is computed over exactly this string.
 */
[[nodiscard]] std::string manifestPayloadJson(const ArchiveManifest &m);

/** Full manifest document (schema header + crc32 + payload). */
[[nodiscard]] std::string manifestJson(const ArchiveManifest &m);

/** Outcome of parsing a manifest document. */
struct ManifestParseResult
{
    std::optional<ArchiveManifest> manifest; //!< Set on success.
    std::string error; //!< Human-readable reason on failure.
};

/**
 * Parse and CRC-verify a manifest document.  Never throws; any schema
 * mismatch, missing field, type error or CRC mismatch is reported in
 * ManifestParseResult::error.
 */
[[nodiscard]] ManifestParseResult tryParseManifest(std::string_view text);

} // namespace dnastore::archive
