#include "archive/archive.hh"

#include <algorithm>
#include <charconv>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "clustering/clusterer.hh"
#include "codec/matrix_codec.hh"
#include "core/pool.hh"
#include "dna/fastx.hh"
#include "obs/crashpoint.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/span.hh"
#include "obs/stage_tag.hh"
#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/crc32.hh"
#include "util/thread_pool.hh"
#include "wetlab/preprocess.hh"

namespace dnastore::archive
{

namespace
{

constexpr const char *kManifestFile = "manifest.json";
constexpr const char *kPoolFile = "pool.fasta";

/** Shard-size histogram bounds in bytes (powers of four up to 64 KiB). */
std::vector<double>
shardSizeBuckets()
{
    return {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0};
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/" + kManifestFile;
}

std::string
poolPath(const std::string &dir)
{
    return dir + "/" + kPoolFile;
}

/** Independent per-shard seed: decorrelates shards of one retrieval. */
std::uint64_t
shardSeed(std::uint64_t base, std::uint32_t pair_id)
{
    SplitMix64 mixer(base ^
                     (static_cast<std::uint64_t>(pair_id) *
                      0x9e3779b97f4a7c15ULL));
    return mixer.next();
}

std::vector<std::uint8_t>
stringToBytes(const std::string &text)
{
    return {text.begin(), text.end()};
}

} // namespace

std::string
poolRecordId(std::size_t index, std::uint32_t pair_id)
{
    return "m" + std::to_string(index) +
           " pair=" + std::to_string(pair_id);
}

std::optional<std::uint32_t>
tryParsePoolRecordPair(const std::string &id)
{
    const std::string marker = " pair=";
    const std::size_t at = id.rfind(marker);
    if (at == std::string::npos)
        return std::nullopt;
    const std::string digits = id.substr(at + marker.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    unsigned long long value = 0;
    const char *first = digits.data();
    const char *last = first + digits.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || value > 0xFFFFFFFFULL)
        return std::nullopt;
    return static_cast<std::uint32_t>(value);
}

const char *
archiveStatusName(ArchiveStatus status)
{
    switch (status) {
    case ArchiveStatus::Ok:
        return "ok";
    case ArchiveStatus::NotFound:
        return "not-found";
    case ArchiveStatus::AlreadyExists:
        return "already-exists";
    case ArchiveStatus::InvalidArgument:
        return "invalid-argument";
    case ArchiveStatus::IoError:
        return "io-error";
    case ArchiveStatus::CorruptManifest:
        return "corrupt-manifest";
    case ArchiveStatus::CorruptPool:
        return "corrupt-pool";
    case ArchiveStatus::EncodeFailed:
        return "encode-failed";
    case ArchiveStatus::DecodeFailed:
        return "decode-failed";
    }
    return "unknown";
}

bool
Archive::buildCodecs(std::string &error)
{
    try {
        manifest_.params.codec.validate();
        encoder_ = std::make_shared<MatrixEncoder>(manifest_.params.codec);
        decoder_ = std::make_shared<MatrixDecoder>(manifest_.params.codec);
        return true;
    } catch (const std::exception &e) {
        error = std::string("invalid codec config: ") + e.what();
        return false;
    }
}

bool
Archive::ensurePairs(std::size_t num_pairs, std::string &error) const
{
    // Serialise the lazy check-and-design: concurrent const callers
    // (get, decodeManifestFromDna) would otherwise race on replacing
    // library_.  Readers that only call pairFor() afterwards are safe
    // without the lock — once a caller's ensurePairs returned, no
    // concurrent const operation can shrink or replace the library.
    MutexLock lock(*library_mutex_);
    if (library_ && library_->numPairs() >= num_pairs)
        return true;
    try {
        // The greedy design is prefix-stable for a fixed seed: designing
        // a larger library reproduces the existing primers and appends
        // new ones, so previously assigned pair ids keep their sequences.
        Rng rng(manifest_.params.primer_seed);
        library_ = PrimerLibrary::design(rng, 2 * num_pairs,
                                         manifest_.params.primer);
        return true;
    } catch (const std::exception &e) {
        error = std::string("primer design failed: ") + e.what();
        return false;
    }
}

OpenResult
Archive::create(const std::string &dir, const ArchiveParams &params)
{
    OpenResult result;
    if (dir.empty()) {
        result.status = ArchiveStatus::InvalidArgument;
        result.error = "empty archive directory";
        return result;
    }
    if (params.max_shard_bytes == 0) {
        result.status = ArchiveStatus::InvalidArgument;
        result.error = "max_shard_bytes must be positive";
        return result;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        result.status = ArchiveStatus::IoError;
        result.error = "cannot create directory " + dir + ": " +
                       ec.message();
        return result;
    }
    if (std::filesystem::exists(manifestPath(dir), ec)) {
        result.status = ArchiveStatus::AlreadyExists;
        result.error = "archive already exists at " + dir;
        return result;
    }

    Archive archive;
    archive.dir_ = dir;
    archive.manifest_.params = params;
    if (!archive.buildCodecs(result.error)) {
        result.status = ArchiveStatus::InvalidArgument;
        return result;
    }
    if (!archive.save(result.error)) {
        result.status = ArchiveStatus::IoError;
        return result;
    }
    result.archive = std::move(archive);
    return result;
}

OpenResult
Archive::open(const std::string &dir)
{
    OpenResult result;
    obs::crash::hit("archive.open.manifest");
    std::ifstream manifest_in(manifestPath(dir), std::ios::binary);
    if (!manifest_in) {
        result.status = ArchiveStatus::NotFound;
        result.error = "no manifest at " + manifestPath(dir);
        return result;
    }
    std::ostringstream manifest_text;
    manifest_text << manifest_in.rdbuf();

    ManifestParseResult parsed = tryParseManifest(manifest_text.str());
    if (!parsed.manifest) {
        result.status = ArchiveStatus::CorruptManifest;
        result.error = parsed.error;
        return result;
    }

    Archive archive;
    archive.dir_ = dir;
    archive.manifest_ = std::move(*parsed.manifest);
    if (!archive.buildCodecs(result.error)) {
        result.status = ArchiveStatus::CorruptManifest;
        return result;
    }

    obs::crash::hit("archive.open.pool");
    std::ifstream pool_in(poolPath(dir), std::ios::binary);
    if (!pool_in) {
        result.status = ArchiveStatus::CorruptPool;
        result.error = "no pool file at " + poolPath(dir);
        return result;
    }
    std::vector<FastaRecord> records;
    try {
        records = readFasta(pool_in);
    } catch (const std::exception &e) {
        result.status = ArchiveStatus::CorruptPool;
        result.error = std::string("unreadable pool file: ") + e.what();
        return result;
    }

    const std::uint32_t next_pair = archive.manifest_.nextPairId();
    std::vector<std::size_t> per_pair(next_pair, 0);
    archive.pool_.reserve(records.size());
    archive.pool_pairs_.reserve(records.size());
    for (const FastaRecord &record : records) {
        const auto pair_id = tryParsePoolRecordPair(record.id);
        if (!pair_id) {
            result.status = ArchiveStatus::CorruptPool;
            result.error = "pool record with unparsable pair id: " +
                           record.id;
            return result;
        }
        // Records under pair ids the manifest does not reference are
        // orphans of an interrupted save (pool committed, manifest
        // not): drop them — the next save rewrites the pool without
        // them — instead of refusing to open the archive.
        if (*pair_id >= next_pair)
            continue;
        per_pair[*pair_id] += 1;
        archive.pool_.push_back(record.sequence);
        archive.pool_pairs_.push_back(*pair_id);
    }
    for (const ObjectEntry &object : archive.manifest_.objects) {
        for (const ShardEntry &shard : object.shards) {
            if (per_pair[shard.pair_id] != shard.strands) {
                result.status = ArchiveStatus::CorruptPool;
                result.error = "pool/manifest mismatch for object '" +
                               object.name + "' pair " +
                               std::to_string(shard.pair_id) +
                               ": manifest says " +
                               std::to_string(shard.strands) +
                               " strands, pool has " +
                               std::to_string(per_pair[shard.pair_id]);
                return result;
            }
        }
    }

    result.archive = std::move(archive);
    return result;
}

bool
Archive::save(std::string &error)
{
    // The pool's pair-0 section mirrors the manifest; rebuild it so the
    // DNA copy always matches what manifest.json says.
    std::vector<Strand> kept;
    std::vector<std::uint32_t> kept_pairs;
    kept.reserve(pool_.size());
    kept_pairs.reserve(pool_.size());
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (pool_pairs_[i] != kManifestPairId) {
            kept.push_back(pool_[i]);
            kept_pairs.push_back(pool_pairs_[i]);
        }
    }

    if (!ensurePairs(
            std::max<std::size_t>(1, manifest_.nextPairId()), error))
        return false;

    const std::string manifest_text = manifestJson(manifest_);
    std::vector<Strand> manifest_strands;
    try {
        manifest_strands = encoder_->encode(stringToBytes(manifest_text));
    } catch (const std::exception &e) {
        error = std::string("manifest DNA encoding failed: ") + e.what();
        return false;
    }
    const PrimerPair manifest_pair =
        publishedLibrary().pairFor(kManifestPairId);
    for (Strand &payload : manifest_strands)
        payload = attachPrimers(manifest_pair, payload);

    std::vector<FastaRecord> records;
    records.reserve(kept.size() + manifest_strands.size());
    for (std::size_t i = 0; i < kept.size(); ++i)
        records.push_back({poolRecordId(records.size(), kept_pairs[i]),
                           kept[i]});
    for (const Strand &molecule : manifest_strands)
        records.push_back(
            {poolRecordId(records.size(), kManifestPairId), molecule});

    std::ostringstream pool_text;
    writeFasta(pool_text, records);

    // Both files go through the atomic temp+rename writer, and the
    // manifest rename is the commit point: the pool lands first, so a
    // crash (or failed write) between the two leaves a new pool next to
    // the old manifest — a state open() accepts by dropping pool
    // records under pair ids the manifest does not reference.  Writing
    // the manifest first would brick the archive instead (manifest
    // promising strands the old pool lacks).  The named crash points
    // let the chaos harness and fsck tests kill the process at each
    // window of this protocol (obs.write.* points cover mid-write).
    obs::crash::hit("archive.save.pool");
    if (!obs::writeTextFile(poolPath(dir_), pool_text.str())) {
        error = "cannot write " + poolPath(dir_);
        return false;
    }
    obs::crash::hit("archive.save.between");
    if (!obs::writeTextFile(manifestPath(dir_), manifest_text)) {
        error = "cannot write " + manifestPath(dir_);
        return false;
    }
    obs::crash::hit("archive.save.commit");

    pool_ = std::move(kept);
    pool_pairs_ = std::move(kept_pairs);
    for (Strand &molecule : manifest_strands) {
        pool_.push_back(std::move(molecule));
        pool_pairs_.push_back(kManifestPairId);
    }
    return true;
}

PutResult
Archive::put(const std::string &name, const std::vector<std::uint8_t> &data,
             std::size_t num_threads)
{
    obs::Span span("archive/put");
    obs::StageTagScope tag("archive.put");
    PutResult result;
    if (name.empty()) {
        result.status = ArchiveStatus::InvalidArgument;
        result.error = "object name must not be empty";
        return result;
    }
    if (data.empty()) {
        result.status = ArchiveStatus::InvalidArgument;
        result.error = "object data must not be empty";
        return result;
    }
    if (manifest_.findObject(name) != nullptr) {
        result.status = ArchiveStatus::AlreadyExists;
        result.error = "object '" + name + "' already stored";
        return result;
    }

    const std::uint64_t max_shard = manifest_.params.max_shard_bytes;
    const std::size_t num_shards = static_cast<std::size_t>(
        (data.size() + max_shard - 1) / max_shard);
    const std::uint32_t first_pair = manifest_.nextPairId();
    if (!ensurePairs(static_cast<std::size_t>(first_pair) + num_shards,
                     result.error)) {
        result.status = ArchiveStatus::EncodeFailed;
        return result;
    }

    ObjectEntry object;
    object.name = name;
    object.id = manifest_.nextObjectId();
    object.size_bytes = data.size();
    object.crc32_value = crc32({data.data(), data.size()});
    object.shards.resize(num_shards);

    // Each shard is an independent codec run; encode them as a batch
    // over the thread pool (encoder is const and thus shareable).
    std::vector<std::vector<Strand>> tagged(num_shards);
    std::vector<std::string> failures(num_shards);
    const auto encodeShard = [&](std::size_t s) {
        const std::size_t begin =
            s * static_cast<std::size_t>(max_shard);
        const std::size_t end =
            std::min(data.size(), begin + static_cast<std::size_t>(max_shard));
        const std::vector<std::uint8_t> shard_bytes(
            data.begin() + static_cast<std::ptrdiff_t>(begin),
            data.begin() + static_cast<std::ptrdiff_t>(end));
        const std::uint32_t pair_id =
            first_pair + static_cast<std::uint32_t>(s);
        try {
            std::vector<Strand> strands = encoder_->encode(shard_bytes);
            const PrimerPair pair = publishedLibrary().pairFor(pair_id);
            for (Strand &payload : strands)
                payload = attachPrimers(pair, payload);

            ShardEntry &entry = object.shards[s];
            entry.pair_id = pair_id;
            entry.size_bytes = shard_bytes.size();
            entry.units = static_cast<std::uint32_t>(
                encoder_->unitsForSize(shard_bytes.size()));
            entry.strands = static_cast<std::uint32_t>(strands.size());
            tagged[s] = std::move(strands);
        } catch (const std::exception &e) {
            failures[s] = e.what();
        }
    };

    if (num_threads > 1 && num_shards > 1) {
        try {
            ThreadPool pool(num_threads);
            pool.parallelFor(0, num_shards, encodeShard);
        } catch (const std::exception &e) {
            result.status = ArchiveStatus::EncodeFailed;
            result.error = std::string("shard encode batch failed: ") +
                           e.what();
            return result;
        }
    } else {
        for (std::size_t s = 0; s < num_shards; ++s)
            encodeShard(s);
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
        if (!failures[s].empty()) {
            result.status = ArchiveStatus::EncodeFailed;
            result.error = "shard " + std::to_string(s) +
                           " encode failed: " + failures[s];
            return result;
        }
    }

    // Merge into the pool; roll everything back if persisting fails so
    // the in-memory state never diverges from disk.
    const std::size_t pool_before = pool_.size();
    for (std::size_t s = 0; s < num_shards; ++s) {
        const std::uint32_t pair_id = object.shards[s].pair_id;
        for (Strand &molecule : tagged[s]) {
            pool_.push_back(std::move(molecule));
            pool_pairs_.push_back(pair_id);
        }
    }
    manifest_.objects.push_back(object);

    if (!save(result.error)) {
        manifest_.objects.pop_back();
        pool_.resize(pool_before);
        pool_pairs_.resize(pool_before);
        result.status = ArchiveStatus::IoError;
        return result;
    }

    result.object_id = object.id;
    result.shards = num_shards;
    for (const ShardEntry &shard : object.shards) {
        result.strands += shard.strands;
        obs::metrics()
            .histogram("archive.shard_size_bytes", shardSizeBuckets())
            .observe(static_cast<double>(shard.size_bytes));
    }
    obs::metrics().counter("archive.objects_total").add(1);
    obs::metrics().counter("archive.shards_total").add(num_shards);
    obs::metrics().counter("archive.put_bytes_total").add(data.size());
    return result;
}

std::vector<std::uint8_t>
Archive::decodeShard(const ShardEntry &shard, const RetrievalConfig &config,
                     ShardOutcome &outcome) const
{
    obs::Span span("archive/shard_decode");
    obs::StageTagScope tag("archive.shard_decode");
    outcome.pair_id = shard.pair_id;
    try {
        const PrimerPair pair = publishedLibrary().pairFor(shard.pair_id);
        Rng rng(shardSeed(config.seed, shard.pair_id));

        // PCR selection: pull this shard's molecules out of the mixed
        // pool (plus off-target leakage when configured).
        DnaPool pool;
        std::vector<Strand> mine;
        for (std::size_t i = 0; i < pool_.size(); ++i) {
            if (pool_pairs_[i] == shard.pair_id) {
                mine.push_back(pool_[i]);
            }
        }
        pool.addTagged(pair, mine);
        if (config.pcr_off_target > 0.0) {
            // Off-target molecules need their own tags so amplify() can
            // tell them apart from the shard's own product.
            for (std::size_t i = 0; i < pool_.size(); ++i) {
                if (pool_pairs_[i] != shard.pair_id) {
                    pool.addTagged(publishedLibrary().pairFor(pool_pairs_[i]),
                                   {pool_[i]});
                }
            }
        }
        const PcrProduct product =
            amplify(pool, pair, rng, {config.pcr_off_target});

        // Simulated sequencing of the amplified product.
        const CoverageModel coverage(config.coverage,
                                     CoverageDistribution::Poisson);
        SequencingRun run;
        if (config.channel == RetrievalChannel::Wetlab) {
            VirtualWetlabConfig wcfg;
            wcfg.base_error_rate = config.error_rate;
            const VirtualWetlabChannel channel(wcfg);
            run = simulateSequencing(product.molecules, channel, coverage,
                                     rng);
        } else {
            const IidChannel channel(
                IidChannelConfig::fromTotalErrorRate(config.error_rate));
            run = simulateSequencing(product.molecules, channel, coverage,
                                     rng);
        }

        // Sequencers emit both orientations; flip half the reads so the
        // preprocessing stage earns its keep.
        for (std::size_t i = 1; i < run.reads.size(); i += 2)
            run.reads[i] = strand::reverseComplement(run.reads[i]);

        const PreprocessResult prep = preprocessReads(
            run.reads, pair, {config.primer_max_edit});

        // Retrieval half of the pipeline, confined to this shard.
        RashtchianClustererConfig ccfg =
            RashtchianClustererConfig::forErrorRate(
                config.error_rate, manifest_.params.codec.strandLength());
        ccfg.seed = shardSeed(config.seed ^ 0xc105ULL, shard.pair_id);
        RashtchianClusterer clusterer(ccfg);
        const NwConsensusReconstructor reconstructor;
        const DoubleSidedBmaReconstructor fallback;

        PipelineModules mods;
        mods.encoder = encoder_.get();
        mods.decoder = decoder_.get();
        mods.clusterer = &clusterer;
        mods.reconstructor = &reconstructor;
        mods.fallback_reconstructor = &fallback;
        mods.fault_injector = config.fault_injector;

        PipelineConfig pcfg;
        pcfg.coverage = coverage;
        pcfg.num_threads = 1; // Parallelism lives at the shard level.
        pcfg.seed = shardSeed(config.seed ^ 0x5eedULL, shard.pair_id);
        pcfg.min_cluster_size = config.min_cluster_size;
        pcfg.max_decode_retries = config.max_decode_retries;

        Pipeline pipeline(mods, pcfg);
        PipelineResult result = pipeline.runFromReads(
            prep.reads, manifest_.params.codec.strandLength(), shard.units);

        outcome.stages = result.status;
        outcome.reads = result.reads;
        outcome.clusters = result.clusters;
        outcome.errors = std::move(result.errors);
        // size_bytes == 0 means "accept whatever the codec header says"
        // (used for the DNA manifest copy, whose size is not recorded).
        outcome.ok = result.report.ok &&
                     (shard.size_bytes == 0 ||
                      result.report.data.size() == shard.size_bytes);
        if (!outcome.ok && outcome.errors.empty()) {
            outcome.errors.push_back(
                {"decoding", "shard payload did not decode cleanly"});
        }
        return outcome.ok ? std::move(result.report.data)
                          : std::vector<std::uint8_t>{};
    } catch (const std::exception &e) {
        outcome.ok = false;
        outcome.errors.push_back({"archive", e.what()});
        return {};
    }
}

GetResult
Archive::get(const std::string &name, const RetrievalConfig &config) const
{
    obs::Span span("archive/get");
    obs::StageTagScope tag("archive.get");
    GetResult result;
    const ObjectEntry *object = manifest_.findObject(name);
    if (object == nullptr) {
        result.status = ArchiveStatus::NotFound;
        result.error = "no object named '" + name + "'";
        return result;
    }
    if (object->shards.empty()) {
        result.status = ArchiveStatus::CorruptManifest;
        result.error = "object '" + name + "' has no shards";
        return result;
    }
    if (!ensurePairs(manifest_.nextPairId(), result.error)) {
        result.status = ArchiveStatus::CorruptManifest;
        return result;
    }

    const std::size_t num_shards = object->shards.size();
    result.shards.resize(num_shards);
    std::vector<std::vector<std::uint8_t>> payloads(num_shards);

    // A fault injector is stateful (own RNG + counters), so its runs
    // must stay serial to remain deterministic.
    const bool parallel = config.num_threads > 1 && num_shards > 1 &&
                          config.fault_injector == nullptr;
    if (parallel) {
        try {
            ThreadPool pool(config.num_threads);
            pool.parallelFor(0, num_shards, [&](std::size_t s) {
                payloads[s] = decodeShard(object->shards[s], config,
                                          result.shards[s]);
            });
        } catch (const std::exception &e) {
            result.status = ArchiveStatus::DecodeFailed;
            result.error = std::string("shard decode batch failed: ") +
                           e.what();
            return result;
        }
    } else {
        for (std::size_t s = 0; s < num_shards; ++s)
            payloads[s] = decodeShard(object->shards[s], config,
                                      result.shards[s]);
    }

    std::size_t decoded = 0;
    std::string failed_list;
    for (std::size_t s = 0; s < num_shards; ++s) {
        if (result.shards[s].ok) {
            ++decoded;
        } else {
            if (!failed_list.empty())
                failed_list += ", ";
            failed_list += std::to_string(s);
        }
    }
    obs::metrics().counter("archive.shards_decoded_total").add(decoded);
    obs::metrics().counter("archive.gets_total").add(1);

    if (decoded != num_shards) {
        result.status = ArchiveStatus::DecodeFailed;
        result.error = "object '" + name + "': shard(s) " + failed_list +
                       " failed to decode";
        return result;
    }

    for (std::vector<std::uint8_t> &payload : payloads)
        result.data.insert(result.data.end(), payload.begin(),
                           payload.end());
    if (result.data.size() != object->size_bytes ||
        crc32({result.data.data(), result.data.size()}) !=
            object->crc32_value) {
        result.status = ArchiveStatus::DecodeFailed;
        result.error = "object '" + name +
                       "': reassembled payload failed CRC check";
        result.data.clear();
        return result;
    }
    return result;
}

std::vector<GetResult>
Archive::getMany(const std::vector<std::string> &names,
                 const RetrievalConfig &config) const
{
    obs::Span span("archive/get_many");
    obs::StageTagScope tag("archive.get_many");
    std::vector<GetResult> results(names.size());
    if (names.empty())
        return results;

    std::string pair_error;
    const bool pairs_ok = ensurePairs(manifest_.nextPairId(), pair_error);

    // Flatten every requested object's shards into one work list so a
    // multi-object batch saturates the pool even when each object has
    // only a shard or two.
    struct Work
    {
        std::size_t object; //!< Index into names/results.
        std::size_t shard;  //!< Shard index within that object.
    };
    std::vector<const ObjectEntry *> objects(names.size(), nullptr);
    std::vector<std::vector<std::vector<std::uint8_t>>> payloads(
        names.size());
    std::vector<Work> work;
    for (std::size_t i = 0; i < names.size(); ++i) {
        GetResult &res = results[i];
        const ObjectEntry *object = manifest_.findObject(names[i]);
        if (object == nullptr) {
            res.status = ArchiveStatus::NotFound;
            res.error = "no object named '" + names[i] + "'";
            continue;
        }
        if (object->shards.empty()) {
            res.status = ArchiveStatus::CorruptManifest;
            res.error = "object '" + names[i] + "' has no shards";
            continue;
        }
        if (!pairs_ok) {
            res.status = ArchiveStatus::CorruptManifest;
            res.error = pair_error;
            continue;
        }
        objects[i] = object;
        res.shards.resize(object->shards.size());
        payloads[i].resize(object->shards.size());
        for (std::size_t s = 0; s < object->shards.size(); ++s)
            work.push_back({i, s});
    }

    const auto decode_one = [&](std::size_t w) {
        const Work &item = work[w];
        payloads[item.object][item.shard] =
            decodeShard(objects[item.object]->shards[item.shard], config,
                        results[item.object].shards[item.shard]);
    };
    const bool parallel = config.num_threads > 1 && work.size() > 1 &&
                          config.fault_injector == nullptr;
    if (parallel) {
        try {
            ThreadPool pool(config.num_threads);
            pool.parallelFor(0, work.size(), decode_one);
        } catch (const std::exception &e) {
            for (std::size_t i = 0; i < names.size(); ++i) {
                if (objects[i] == nullptr)
                    continue;
                results[i].status = ArchiveStatus::DecodeFailed;
                results[i].error =
                    std::string("shard decode batch failed: ") + e.what();
            }
            return results;
        }
    } else {
        for (std::size_t w = 0; w < work.size(); ++w)
            decode_one(w);
    }

    std::size_t shards_decoded = 0;
    std::size_t objects_fetched = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (objects[i] == nullptr)
            continue;
        ++objects_fetched;
        GetResult &res = results[i];
        std::string failed_list;
        std::size_t decoded = 0;
        for (std::size_t s = 0; s < res.shards.size(); ++s) {
            if (res.shards[s].ok) {
                ++decoded;
            } else {
                if (!failed_list.empty())
                    failed_list += ", ";
                failed_list += std::to_string(s);
            }
        }
        shards_decoded += decoded;
        if (decoded != res.shards.size()) {
            res.status = ArchiveStatus::DecodeFailed;
            res.error = "object '" + names[i] + "': shard(s) " +
                        failed_list + " failed to decode";
            continue;
        }
        for (std::vector<std::uint8_t> &payload : payloads[i])
            res.data.insert(res.data.end(), payload.begin(),
                            payload.end());
        if (res.data.size() != objects[i]->size_bytes ||
            crc32({res.data.data(), res.data.size()}) !=
                objects[i]->crc32_value) {
            res.status = ArchiveStatus::DecodeFailed;
            res.error = "object '" + names[i] +
                        "': reassembled payload failed CRC check";
            res.data.clear();
        }
    }
    obs::metrics()
        .counter("archive.shards_decoded_total")
        .add(shards_decoded);
    obs::metrics().counter("archive.gets_total").add(objects_fetched);
    obs::metrics().counter("archive.get_batches_total").add(1);
    return results;
}

std::string
lsJson(const Archive &archive)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.archive_ls");
    json.key("schema_version");
    json.value(static_cast<std::uint64_t>(obs::kSchemaVersion));
    json.key("num_objects");
    json.value(static_cast<std::uint64_t>(archive.objects().size()));
    json.key("pool_strands");
    json.value(static_cast<std::uint64_t>(archive.poolSize()));
    json.key("objects");
    json.beginArray();
    for (const ObjectEntry &object : archive.objects()) {
        json.beginObject();
        json.key("name");
        json.value(object.name);
        json.key("id");
        json.value(static_cast<std::uint64_t>(object.id));
        json.key("size_bytes");
        json.value(static_cast<std::uint64_t>(object.size_bytes));
        json.key("crc32");
        json.value(static_cast<std::uint64_t>(object.crc32_value));
        json.key("shards");
        json.value(static_cast<std::uint64_t>(object.shards.size()));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.text();
}

std::string
statJson(const ObjectEntry &object)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.archive_stat");
    json.key("schema_version");
    json.value(static_cast<std::uint64_t>(obs::kSchemaVersion));
    json.key("name");
    json.value(object.name);
    json.key("id");
    json.value(static_cast<std::uint64_t>(object.id));
    json.key("size_bytes");
    json.value(static_cast<std::uint64_t>(object.size_bytes));
    json.key("crc32");
    json.value(static_cast<std::uint64_t>(object.crc32_value));
    json.key("shards");
    json.beginArray();
    for (const ShardEntry &shard : object.shards) {
        json.beginObject();
        json.key("pair_id");
        json.value(static_cast<std::uint64_t>(shard.pair_id));
        json.key("size_bytes");
        json.value(static_cast<std::uint64_t>(shard.size_bytes));
        json.key("strands");
        json.value(static_cast<std::uint64_t>(shard.strands));
        json.key("units");
        json.value(static_cast<std::uint64_t>(shard.units));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.text();
}

ManifestParseResult
Archive::decodeManifestFromDna(const RetrievalConfig &config) const
{
    ManifestParseResult parsed;

    std::size_t manifest_molecules = 0;
    for (const std::uint32_t pair_id : pool_pairs_)
        if (pair_id == kManifestPairId)
            ++manifest_molecules;
    if (manifest_molecules == 0) {
        parsed.error = "pool holds no manifest molecules (pair 0)";
        return parsed;
    }
    if (!ensurePairs(manifest_.nextPairId(), parsed.error))
        return parsed;

    // The manifest shard's size and unit count are not recorded anywhere
    // (the manifest cannot describe itself before it is written), so the
    // decode infers units from indices and accepts the codec header's
    // payload length; schema + CRC validation happens in the parser.
    ShardEntry manifest_shard;
    manifest_shard.pair_id = kManifestPairId;
    manifest_shard.size_bytes = 0;
    manifest_shard.units = 0;

    ShardOutcome outcome;
    const std::vector<std::uint8_t> payload =
        decodeShard(manifest_shard, config, outcome);
    if (payload.empty()) {
        parsed.error = "DNA manifest copy failed to decode";
        for (const PipelineError &err : outcome.errors)
            parsed.error += "; " + err.stage + ": " + err.message;
        return parsed;
    }
    const std::string text(payload.begin(), payload.end());
    return tryParseManifest(text);
}

} // namespace dnastore::archive
