#include "archive/json_reader.hh"

#include <cctype>
#include <charconv>

namespace dnastore::archive
{

std::optional<bool>
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        return std::nullopt;
    return bool_;
}

std::optional<double>
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        return std::nullopt;
    return number_;
}

std::optional<std::uint64_t>
JsonValue::asUint() const
{
    if (kind_ != Kind::Number || !has_uint_)
        return std::nullopt;
    return uint_;
}

const std::string *
JsonValue::asString() const
{
    return kind_ == Kind::String ? &string_ : nullptr;
}

const JsonValue::Array *
JsonValue::asArray() const
{
    return kind_ == Kind::Array ? array_.get() : nullptr;
}

const JsonValue::Object *
JsonValue::asObject() const
{
    return kind_ == Kind::Object ? object_.get() : nullptr;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_->find(std::string(key));
    return it == object_->end() ? nullptr : &it->second;
}

JsonValue
JsonValue::makeArray(Array items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::make_shared<Array>(std::move(items));
    return v;
}

JsonValue
JsonValue::makeObject(Object members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::make_shared<Object>(std::move(members));
    return v;
}

JsonValue
JsonValue::makeUint(std::uint64_t value, double as_double)
{
    JsonValue v(as_double);
    v.has_uint_ = true;
    v.uint_ = value;
    return v;
}

namespace
{

/** Deep documents are an attack/corruption signal, not a use case. */
constexpr std::size_t kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parseDocument()
    {
        auto value = parseValue(0);
        if (!value)
            return std::nullopt;
        skipWhitespace();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return value;
    }

  private:
    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    consume(char expected)
    {
        if (peek() != expected)
            return false;
        ++pos_;
        return true;
    }

    bool
    consumeLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    std::optional<JsonValue>
    parseValue(std::size_t depth)
    {
        if (depth > kMaxDepth)
            return std::nullopt;
        skipWhitespace();
        switch (peek()) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"': {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return JsonValue(std::move(*s));
        }
        case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            return std::nullopt;
        case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            return std::nullopt;
        case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            return std::nullopt;
        default:
            return parseNumber();
        }
    }

    std::optional<JsonValue>
    parseObject(std::size_t depth)
    {
        if (!consume('{'))
            return std::nullopt;
        JsonValue::Object members;
        skipWhitespace();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWhitespace();
            auto key = parseString();
            if (!key)
                return std::nullopt;
            skipWhitespace();
            if (!consume(':'))
                return std::nullopt;
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            // Duplicate keys: last one wins (canonical docs have none).
            members.insert_or_assign(std::move(*key), std::move(*value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    parseArray(std::size_t depth)
    {
        if (!consume('['))
            return std::nullopt;
        JsonValue::Array items;
        skipWhitespace();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            auto value = parseValue(depth + 1);
            if (!value)
                return std::nullopt;
            items.push_back(std::move(*value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return std::nullopt;
        }
    }

    static void
    appendUtf8(std::string &out, std::uint32_t code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    std::optional<std::uint32_t>
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            return std::nullopt;
        std::uint32_t value = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return std::nullopt;
        }
        pos_ += 4;
        return value;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                return std::nullopt; // raw control character
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                auto code = parseHex4();
                if (!code)
                    return std::nullopt;
                std::uint32_t cp = *code;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require a \uXXXX low surrogate.
                    if (!consumeLiteral("\\u"))
                        return std::nullopt;
                    auto low = parseHex4();
                    if (!low || *low < 0xDC00 || *low > 0xDFFF)
                        return std::nullopt;
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (*low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return std::nullopt; // lone low surrogate
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
            return std::nullopt;
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
            ++pos_;
        bool integral = true;
        if (peek() == '.') {
            integral = false;
            ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
                return std::nullopt;
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0)
                return std::nullopt;
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
                ++pos_;
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        double as_double = 0.0;
        const auto [dptr, derr] = std::from_chars(
            token.data(), token.data() + token.size(), as_double);
        if (derr != std::errc() || dptr != token.data() + token.size())
            return std::nullopt;
        if (integral && token.front() != '-') {
            std::uint64_t as_uint = 0;
            const auto [uptr, uerr] = std::from_chars(
                token.data(), token.data() + token.size(), as_uint);
            if (uerr == std::errc() &&
                uptr == token.data() + token.size()) {
                return JsonValue::makeUint(as_uint, as_double);
            }
        }
        return JsonValue(as_double);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
tryParseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace dnastore::archive
