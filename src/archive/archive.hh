/**
 * @file
 * A primer-addressed multi-object DNA archive (paper Sections II-E/F
 * and VIII; Yazdi et al. random-access addressing, Organick-style
 * pooling): many objects live in ONE mixed pool of primer-tagged
 * molecules, and any object is retrieved by PCR-selecting its shards'
 * primer pairs and running only the matching molecules through the
 * retrieval half of the pipeline.
 *
 * Layout on disk (one directory per archive):
 *   manifest.json  CRC-guarded table of contents (archive/manifest.hh)
 *   pool.fasta     every tagged molecule, one record per strand, with
 *                  its primer pair id in the record id ("m7 pair=3")
 *
 * Large objects are sharded into bounded-size sub-pools; every shard is
 * an independent codec run under its own primer pair, so shards decode
 * in isolation (a corrupted shard cannot poison its neighbours) and
 * batch across the ThreadPool.  The manifest itself is additionally
 * encoded into the pool under the reserved pair id 0, keeping the
 * archive self-describing in DNA.
 *
 * No-throw contract: every public Archive operation reports failures
 * through ArchiveStatus / per-shard StageStatus values (PR-1 taxonomy)
 * instead of raising; module exceptions are caught at the archive
 * boundary.
 *
 * Thread-safety: const operations (get, stat, objects,
 * decodeManifestFromDna) may run concurrently on one Archive — the
 * lazily designed primer library is guarded internally.  Mutating
 * operations (put) require exclusive access.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "archive/manifest.hh"
#include "core/fault.hh"
#include "core/pipeline.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore::archive
{

/** Outcome taxonomy of archive operations (never thrown, returned). */
enum class ArchiveStatus : std::uint8_t
{
    Ok = 0,
    NotFound,        //!< No such object / archive directory.
    AlreadyExists,   //!< Object name or archive already present.
    InvalidArgument, //!< Bad name, empty parameter, bad config.
    IoError,         //!< Directory/file could not be read or written.
    CorruptManifest, //!< Manifest unreadable, bad schema or CRC.
    CorruptPool,     //!< Pool file disagrees with the manifest.
    EncodeFailed,    //!< A shard's codec run failed during put.
    DecodeFailed,    //!< One or more shards failed to decode on get.
};

/** Human-readable status name. */
const char *archiveStatusName(ArchiveStatus status);

/**
 * Pool record id "m<index> pair=<pair_id>": the pair id is the
 * molecule's PCR address and must survive the FASTA round trip.  Kept
 * public so `archive fsck` audits the exact format the writer emits.
 */
[[nodiscard]] std::string poolRecordId(std::size_t index,
                                       std::uint32_t pair_id);

/** Recover the pair id from a pool record id; nullopt when malformed. */
[[nodiscard]] std::optional<std::uint32_t>
tryParsePoolRecordPair(const std::string &id);

/** Which channel model the retrieval simulation pushes reads through. */
enum class RetrievalChannel : std::uint8_t
{
    Iid = 0,    //!< IID indel/substitution channel.
    Wetlab = 1, //!< The virtual-wetlab reference channel.
};

/**
 * Knobs of one retrieval (get): the simulated wetlab between the pool
 * and the decoder.  Defaults give a realistic but decodable read-out.
 */
struct RetrievalConfig
{
    RetrievalChannel channel = RetrievalChannel::Iid;
    double error_rate = 0.03;     //!< Channel base error rate.
    double coverage = 12.0;       //!< Mean reads per molecule (Poisson).
    double pcr_off_target = 0.0;  //!< Contamination rate of PCR selection.
    std::size_t primer_max_edit = 5; //!< Primer-trim edit tolerance.
    std::uint64_t seed = 0xa5c1ULL; //!< Simulation seed (per-shard mixed).
    std::size_t num_threads = 1;  //!< Shard-decode batch parallelism.
    std::size_t min_cluster_size = 2;
    std::size_t max_decode_retries = 1; //!< PR-1 recovery budget per shard.

    /**
     * Optional fault injector applied to every shard's reads (testing
     * only).  The injector is stateful, so setting it forces shards to
     * decode serially regardless of num_threads.
     */
    FaultInjector *fault_injector = nullptr;
};

/** Per-shard retrieval outcome (PR-1 StageStatus taxonomy). */
struct ShardOutcome
{
    std::uint32_t pair_id = 0;
    bool ok = false;              //!< Shard decoded byte-exactly.
    StageStatusSet stages;        //!< Per-stage statuses of the shard run.
    std::size_t reads = 0;        //!< Reads fed to the shard pipeline.
    std::size_t clusters = 0;
    std::vector<PipelineError> errors; //!< Errors from the shard run.
};

/** Result of Archive::put. */
struct PutResult
{
    ArchiveStatus status = ArchiveStatus::Ok;
    std::string error;            //!< Detail when status != Ok.
    std::uint32_t object_id = 0;
    std::size_t shards = 0;
    std::size_t strands = 0;      //!< Tagged molecules added to the pool.

    bool ok() const { return status == ArchiveStatus::Ok; }
};

/** Result of Archive::get. */
struct GetResult
{
    ArchiveStatus status = ArchiveStatus::Ok;
    std::string error;
    std::vector<std::uint8_t> data;  //!< Recovered object (empty on failure).
    std::vector<ShardOutcome> shards; //!< One entry per shard, in order.

    bool ok() const { return status == ArchiveStatus::Ok; }
};

/** Result of Archive::create / Archive::open (defined after Archive). */
struct OpenResult;

/**
 * An open archive.  Obtained from Archive::create / Archive::open;
 * operations load and persist the manifest + pool files under the
 * archive directory.
 */
class Archive
{
  public:
    /**
     * Create a new archive directory with the given parameters and
     * write an empty manifest + pool.  Fails with AlreadyExists when a
     * manifest is already present.
     */
    [[nodiscard]] static OpenResult create(const std::string &dir,
                                           const ArchiveParams &params);

    /** Open an existing archive directory. */
    [[nodiscard]] static OpenResult open(const std::string &dir);

    /**
     * Store @p data under @p name: shard, encode every shard as its own
     * codec run (batched over the ThreadPool when num_threads > 1), tag
     * each shard's strands with a fresh primer pair and merge them into
     * the pool.  Persists manifest + pool before returning Ok.
     */
    PutResult put(const std::string &name,
                  const std::vector<std::uint8_t> &data,
                  std::size_t num_threads = 1);

    /**
     * Retrieve @p name: PCR-select each shard's primer pair out of the
     * mixed pool, simulate sequencing through the configured channel,
     * preprocess (orientation + primer trim) and decode each shard
     * independently.  Shards decode in parallel over the ThreadPool
     * when config.num_threads > 1.  On success data is byte-exact
     * (object CRC verified); on failure the per-shard outcomes pin
     * down exactly which shards and stages degraded.
     */
    [[nodiscard]] GetResult get(const std::string &name,
                                const RetrievalConfig &config = {}) const;

    /**
     * Retrieve several objects in ONE batched shard-decode pass: all
     * shards of all requested objects flatten into a single ThreadPool
     * batch, so a multi-object read amortises pool scans and keeps the
     * workers saturated even when individual objects have few shards
     * (the `dnastored` scheduler's batching hook).  Results align with
     * @p names index-for-index; per-object failures are independent.
     */
    [[nodiscard]] std::vector<GetResult>
    getMany(const std::vector<std::string> &names,
            const RetrievalConfig &config = {}) const;

    /** Objects in store order. */
    const std::vector<ObjectEntry> &objects() const
    {
        return manifest_.objects;
    }

    /** Object metadata by name; nullptr when absent. */
    const ObjectEntry *stat(std::string_view name) const
    {
        return manifest_.findObject(name);
    }

    /** The full manifest (params + objects). */
    const ArchiveManifest &manifest() const { return manifest_; }

    /** Archive directory path. */
    const std::string &dir() const { return dir_; }

    /** Tagged molecules currently in the pool (all objects + manifest). */
    std::size_t poolSize() const { return pool_.size(); }

    /**
     * Decode the DNA-encoded manifest copy (reserved pair id 0) back
     * out of the pool through the same simulated retrieval path and
     * parse it — proof the archive is self-describing in DNA.
     */
    [[nodiscard]] ManifestParseResult
    decodeManifestFromDna(const RetrievalConfig &config = {}) const;

  private:
    Archive() = default;

    /** (Re)build codec modules from manifest_.params; false on error. */
    bool buildCodecs(std::string &error);

    /**
     * Ensure the cached primer library covers pair ids [0, num_pairs).
     * Deterministic re-design from params.primer_seed, so the library is
     * rebuilt lazily (const) on whichever operation first needs it.
     */
    bool ensurePairs(std::size_t num_pairs, std::string &error) const;

    /** Persist manifest.json + pool.fasta (incl. DNA manifest copy). */
    bool save(std::string &error);

    /**
     * Read access to the designed primer library after a successful
     * ensurePairs() on this call path.  Safe without the mutex: once a
     * caller's ensurePairs returned, no concurrent const operation can
     * shrink or replace the library (designs only ever grow, prefix-
     * stable), so the annotation is suppressed rather than taking the
     * lock on every pairFor lookup.
     */
    const PrimerLibrary &
    publishedLibrary() const DNASTORE_NO_THREAD_SAFETY_ANALYSIS
    {
        return *library_;
    }

    /** Decode one shard out of the pool; returns its payload bytes. */
    [[nodiscard]] std::vector<std::uint8_t>
    decodeShard(const ShardEntry &shard, const RetrievalConfig &config,
                ShardOutcome &outcome) const;

    std::string dir_;
    ArchiveManifest manifest_;
    std::vector<Strand> pool_;              //!< Tagged molecules.
    std::vector<std::uint32_t> pool_pairs_; //!< Pair id per molecule.
    std::shared_ptr<MatrixEncoder> encoder_;
    std::shared_ptr<MatrixDecoder> decoder_;
    /** Guards library_'s lazy design from concurrent const callers;
     *  heap-allocated so Archive stays movable. */
    mutable std::unique_ptr<Mutex> library_mutex_ =
        std::make_unique<Mutex>("archive.library");
    /** Lazily (re)designed primer cache; see ensurePairs. */
    mutable std::optional<PrimerLibrary> library_
        DNASTORE_GUARDED_BY(*library_mutex_);
};

/** No-throw factory result: the archive is set iff status == Ok. */
struct OpenResult
{
    ArchiveStatus status = ArchiveStatus::Ok;
    std::string error;
    std::optional<Archive> archive; //!< Set iff status == Ok.

    bool ok() const { return status == ArchiveStatus::Ok; }
};

/**
 * Canonical machine-readable listing of @p archive (schema
 * `dnastore.archive_ls`, obs::JsonWriter): every object with its id,
 * sizes, CRC and shard count, plus pool totals.  Consumed by
 * `dnastore archive ls --json`, the server's LsOk reply and the load
 * generator.
 */
[[nodiscard]] std::string lsJson(const Archive &archive);

/**
 * Canonical machine-readable metadata of one object (schema
 * `dnastore.archive_stat`): sizes, CRC and the per-shard primer-pair
 * address table.  Consumed by `dnastore archive stat --json` and the
 * server's StatOk reply.
 */
[[nodiscard]] std::string statJson(const ObjectEntry &object);

} // namespace dnastore::archive
