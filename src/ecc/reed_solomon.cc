#include "ecc/reed_solomon.hh"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "util/assert.hh"

namespace dnastore
{

using gf256::Poly;

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k)
{
    if (n == 0 || n > 255)
        throw std::invalid_argument("ReedSolomon: n must be in [1, 255]");
    if (k == 0 || k >= n)
        throw std::invalid_argument("ReedSolomon: k must be in [1, n-1]");

    // g(x) = prod_{i=0}^{n-k-1} (x - alpha^i), little-endian.
    generator = {1};
    for (std::size_t i = 0; i < parity(); ++i) {
        const Poly factor = {gf256::alphaPow(static_cast<int>(i)), 1};
        generator = gf256::polyMul(generator, factor);
    }
}

std::vector<std::uint8_t>
ReedSolomon::encode(std::span<const std::uint8_t> message) const
{
    if (message.size() != k_)
        throw std::invalid_argument("ReedSolomon::encode: message size");

    // m(x) * x^(n-k) in little-endian layout; message index i has degree
    // n-1-i.
    Poly shifted(n_, 0);
    for (std::size_t i = 0; i < k_; ++i)
        shifted[n_ - 1 - i] = message[i];

    Poly quotient, remainder;
    gf256::polyDivMod(shifted, generator, quotient, remainder);
    DNASTORE_ASSERT(gf256::degree(remainder) <
                        static_cast<int>(parity()),
                    "parity remainder must have degree < n-k");

    std::vector<std::uint8_t> codeword(n_, 0);
    std::copy(message.begin(), message.end(), codeword.begin());
    // Parity symbol j sits at codeword index k+j, i.e. degree n-k-1-j.
    for (std::size_t j = 0; j < parity(); ++j) {
        const std::size_t deg = parity() - 1 - j;
        codeword[k_ + j] = deg < remainder.size() ? remainder[deg] : 0;
    }
    DNASTORE_DCHECK(isCodeword(codeword),
                    "systematic encoder must emit zero syndromes");
    return codeword;
}

Poly
ReedSolomon::syndromes(std::span<const std::uint8_t> codeword) const
{
    Poly s(parity(), 0);
    for (std::size_t j = 0; j < parity(); ++j) {
        const std::uint8_t x = gf256::alphaPow(static_cast<int>(j));
        std::uint8_t acc = 0;
        for (std::size_t i = 0; i < n_; ++i)
            acc = static_cast<std::uint8_t>(gf256::mul(acc, x) ^ codeword[i]);
        s[j] = acc;
    }
    return s;
}

bool
ReedSolomon::isCodeword(std::span<const std::uint8_t> codeword) const
{
    if (codeword.size() != n_)
        return false;
    const Poly s = syndromes(codeword);
    return std::all_of(s.begin(), s.end(),
                       [](std::uint8_t v) { return v == 0; });
}

std::vector<std::uint8_t>
ReedSolomon::message(std::span<const std::uint8_t> codeword) const
{
    if (codeword.size() != n_)
        throw std::invalid_argument("ReedSolomon::message: codeword size");
    return {codeword.begin(), codeword.begin() + static_cast<long>(k_)};
}

ReedSolomon::DecodeResult
ReedSolomon::decode(std::span<std::uint8_t> codeword,
                    std::span<const std::size_t> erasure_positions) const
{
    DecodeResult result;
    if (codeword.size() != n_)
        throw std::invalid_argument("ReedSolomon::decode: codeword size");

    // Deduplicate and validate erasures, then blank them so the computed
    // magnitude equals the true symbol value.
    std::vector<std::size_t> erasures(erasure_positions.begin(),
                                      erasure_positions.end());
    std::sort(erasures.begin(), erasures.end());
    erasures.erase(std::unique(erasures.begin(), erasures.end()),
                   erasures.end());
    if (!erasures.empty() && erasures.back() >= n_)
        throw std::invalid_argument("ReedSolomon::decode: erasure index");
    for (std::size_t pos : erasures)
        codeword[pos] = 0;

    const std::size_t two_t = parity();
    const std::size_t rho = erasures.size();
    result.erasures = rho;
    if (rho > two_t)
        return result; // beyond any hope of correction

    const Poly s = syndromes(codeword);
    const bool clean = std::all_of(s.begin(), s.end(),
                                   [](std::uint8_t v) { return v == 0; });
    if (clean) {
        result.ok = true;
        return result;
    }

    // Erasure locator Gamma(x) = prod (1 - X_e x), X_e = alpha^(degree).
    Poly gamma = {1};
    for (std::size_t pos : erasures) {
        const std::uint8_t x_e =
            gf256::alphaPow(static_cast<int>(n_ - 1 - pos));
        gamma = gf256::polyMul(gamma, Poly{1, x_e});
    }

    // Modified syndrome Xi = S * Gamma mod x^{2t}.
    const Poly xi = gf256::polyModXk(gf256::polyMul(s, gamma), two_t);
    if (gf256::degree(xi) < 0)
        return result; // cannot happen with nonzero S (Gamma is a unit)

    // Sugiyama: run extended Euclid on (x^{2t}, Xi) until
    // 2*deg(r) < 2t + rho.
    Poly r_prev(two_t + 1, 0);
    r_prev[two_t] = 1;
    Poly r = xi;
    Poly v_prev = {};
    Poly v = {1};
    while (2 * gf256::degree(r) >= static_cast<int>(two_t + rho)) {
        Poly q, rem;
        gf256::polyDivMod(r_prev, r, q, rem);
        r_prev = std::move(r);
        r = std::move(rem);
        Poly v_next = gf256::polyAdd(v_prev, gf256::polyMul(q, v));
        v_prev = std::move(v);
        v = std::move(v_next);
        if (gf256::degree(r) < 0)
            return result; // degenerate: Xi divides x^{2t}
    }

    if (v.empty() || v[0] == 0)
        return result; // locator has no constant term: decoding failure
    const std::uint8_t norm = gf256::inverse(v[0]);
    const Poly lambda = gf256::polyScale(v, norm);
    const Poly omega = gf256::polyScale(r, norm);

    // Errata locator covers both unknown errors and erasures.
    const Poly psi = gf256::polyMul(lambda, gamma);
    const int psi_degree = gf256::degree(psi);
    if (psi_degree <= 0 || psi_degree > static_cast<int>(two_t))
        return result;

    // Chien search over valid codeword positions.
    std::vector<std::size_t> errata_positions;
    std::vector<std::uint8_t> errata_x;
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const int deg = static_cast<int>(n_ - 1 - pos);
        const std::uint8_t x_inv = gf256::alphaPow(-deg);
        if (gf256::polyEval(psi, x_inv) == 0) {
            errata_positions.push_back(pos);
            errata_x.push_back(gf256::alphaPow(deg));
        }
    }
    if (static_cast<int>(errata_positions.size()) != psi_degree)
        return result; // locator roots outside the codeword: failure

    // Forney magnitudes: Y = X * Omega(X^{-1}) / Psi'(X^{-1}).
    const Poly psi_prime = gf256::polyDerivative(psi);
    for (std::size_t idx = 0; idx < errata_positions.size(); ++idx) {
        const std::uint8_t x = errata_x[idx];
        const std::uint8_t x_inv = gf256::inverse(x);
        const std::uint8_t denom = gf256::polyEval(psi_prime, x_inv);
        if (denom == 0)
            return result;
        const std::uint8_t num =
            gf256::mul(x, gf256::polyEval(omega, x_inv));
        const std::uint8_t magnitude = gf256::div(num, denom);
        codeword[errata_positions[idx]] ^= magnitude;
    }

    if (!isCodeword(codeword))
        return result;

    // Count true (non-erasure) error positions.
    std::size_t unknown_errors = 0;
    for (std::size_t pos : errata_positions) {
        if (!std::binary_search(erasures.begin(), erasures.end(), pos))
            ++unknown_errors;
    }
    result.errors = unknown_errors;
    result.ok = true;
    return result;
}

} // namespace dnastore
