#include "ecc/gf256.hh"

#include <array>
#include <stdexcept>

#include "util/assert.hh"

namespace dnastore
{
namespace gf256
{

namespace
{

/** exp/log tables for 0x11D, built once at static-init time. */
struct Tables
{
    std::array<std::uint8_t, 512> exp{}; // doubled to skip a mod 255
    std::array<int, 256> log{};

    Tables()
    {
        std::uint16_t x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[x] = i;
            x = static_cast<std::uint16_t>(x << 1);
            if (x & 0x100)
                x ^= 0x11D;
        }
        for (int i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = -1;
        DNASTORE_ASSERT(x == 1,
                        "0x11D must generate the full multiplicative "
                        "group (alpha^255 == 1)");
        DNASTORE_ASSERT(exp[0] == 1 && log[1] == 0 && log[kAlpha] == 1,
                        "GF(2^8) exp/log tables must be mutually inverse "
                        "at the anchor points");
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // namespace

std::uint8_t
mul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t
div(std::uint8_t a, std::uint8_t b)
{
    if (b == 0)
        throw std::domain_error("gf256::div by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] - t.log[b] + 255];
}

std::uint8_t
alphaPow(int power)
{
    power %= 255;
    if (power < 0)
        power += 255;
    return tables().exp[power];
}

int
logOf(std::uint8_t a)
{
    if (a == 0)
        throw std::domain_error("gf256::logOf(0)");
    return tables().log[a];
}

std::uint8_t
inverse(std::uint8_t a)
{
    if (a == 0)
        throw std::domain_error("gf256::inverse(0)");
    return tables().exp[255 - tables().log[a]];
}

std::uint8_t
pow(std::uint8_t a, unsigned power)
{
    if (power == 0)
        return 1;
    if (a == 0)
        return 0;
    const long exponent =
        static_cast<long>(tables().log[a]) * static_cast<long>(power % 255);
    return tables().exp[static_cast<std::size_t>(exponent % 255)];
}

int
degree(const Poly &p)
{
    for (std::size_t i = p.size(); i > 0; --i)
        if (p[i - 1] != 0)
            return static_cast<int>(i) - 1;
    return -1;
}

void
trim(Poly &p)
{
    while (!p.empty() && p.back() == 0)
        p.pop_back();
}

Poly
polyAdd(const Poly &p, const Poly &q)
{
    Poly out(std::max(p.size(), q.size()), 0);
    for (std::size_t i = 0; i < p.size(); ++i)
        out[i] ^= p[i];
    for (std::size_t i = 0; i < q.size(); ++i)
        out[i] ^= q[i];
    trim(out);
    return out;
}

Poly
polyMul(const Poly &p, const Poly &q)
{
    if (p.empty() || q.empty())
        return {};
    Poly out(p.size() + q.size() - 1, 0);
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] == 0)
            continue;
        for (std::size_t j = 0; j < q.size(); ++j)
            out[i + j] ^= mul(p[i], q[j]);
    }
    trim(out);
    return out;
}

Poly
polyScale(const Poly &p, std::uint8_t c)
{
    Poly out(p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        out[i] = mul(p[i], c);
    trim(out);
    return out;
}

Poly
polyModXk(const Poly &p, std::size_t k)
{
    Poly out(p.begin(), p.begin() + std::min(p.size(), k));
    trim(out);
    return out;
}

std::uint8_t
polyEval(const Poly &p, std::uint8_t x)
{
    std::uint8_t acc = 0;
    for (std::size_t i = p.size(); i > 0; --i)
        acc = static_cast<std::uint8_t>(mul(acc, x) ^ p[i - 1]);
    return acc;
}

Poly
polyDerivative(const Poly &p)
{
    // d/dx sum c_i x^i = sum (i mod 2) c_i x^{i-1} in characteristic 2.
    Poly out;
    if (p.size() <= 1)
        return out;
    out.resize(p.size() - 1, 0);
    for (std::size_t i = 1; i < p.size(); i += 2)
        out[i - 1] = p[i];
    trim(out);
    return out;
}

void
polyDivMod(const Poly &p, const Poly &d, Poly &q, Poly &r)
{
    const int dd = degree(d);
    if (dd < 0)
        throw std::domain_error("gf256::polyDivMod by zero polynomial");
    r = p;
    trim(r);
    q.assign(r.size() > static_cast<std::size_t>(dd)
                 ? r.size() - static_cast<std::size_t>(dd)
                 : 1,
             0);
    const std::uint8_t lead_inv = inverse(d[static_cast<std::size_t>(dd)]);
    while (degree(r) >= dd) {
        const int dr = degree(r);
        const std::uint8_t coeff =
            mul(r[static_cast<std::size_t>(dr)], lead_inv);
        const std::size_t shift = static_cast<std::size_t>(dr - dd);
        q[shift] = coeff;
        for (int i = 0; i <= dd; ++i) {
            r[shift + static_cast<std::size_t>(i)] ^=
                mul(coeff, d[static_cast<std::size_t>(i)]);
        }
        trim(r);
    }
    trim(q);
}

} // namespace gf256
} // namespace dnastore
