/**
 * @file
 * Arithmetic in GF(2^8) with the primitive polynomial
 * x^8 + x^4 + x^3 + x^2 + 1 (0x11D), plus dense polynomial helpers.
 * This is the field underlying the outer Reed-Solomon code of the
 * storage architecture (paper Section IV).
 *
 * Polynomials are stored little-endian: coefficient i multiplies x^i.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace dnastore
{
namespace gf256
{

/** The generator element alpha = 0x02. */
inline constexpr std::uint8_t kAlpha = 0x02;

/** Field addition (= subtraction): XOR. */
constexpr std::uint8_t
add(std::uint8_t a, std::uint8_t b)
{
    return a ^ b;
}

/** Field multiplication via log/antilog tables. */
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/** Field division a / b; throws std::domain_error if b == 0. */
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/** alpha^power (power taken mod 255, may be negative). */
std::uint8_t alphaPow(int power);

/** Discrete log base alpha; throws std::domain_error for 0. */
int logOf(std::uint8_t a);

/** Multiplicative inverse; throws std::domain_error for 0. */
std::uint8_t inverse(std::uint8_t a);

/** a^power for non-negative power. */
std::uint8_t pow(std::uint8_t a, unsigned power);

/** Dense little-endian polynomial over GF(256). */
using Poly = std::vector<std::uint8_t>;

/** Degree of p (-1 for the zero polynomial). */
int degree(const Poly &p);

/** Remove trailing (high-degree) zero coefficients. */
void trim(Poly &p);

/** p + q. */
Poly polyAdd(const Poly &p, const Poly &q);

/** p * q (schoolbook). */
Poly polyMul(const Poly &p, const Poly &q);

/** p scaled by a field constant. */
Poly polyScale(const Poly &p, std::uint8_t c);

/** p mod x^k (truncate to the k low-order coefficients). */
Poly polyModXk(const Poly &p, std::size_t k);

/** Evaluate p at x (Horner). */
std::uint8_t polyEval(const Poly &p, std::uint8_t x);

/** Formal derivative of p (char-2: even-power terms vanish). */
Poly polyDerivative(const Poly &p);

/**
 * Division with remainder: p = q * d + r, deg r < deg d.
 * Throws std::domain_error if d is zero.
 */
void polyDivMod(const Poly &p, const Poly &d, Poly &q, Poly &r);

} // namespace gf256
} // namespace dnastore

