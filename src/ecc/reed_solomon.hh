/**
 * @file
 * Systematic Reed-Solomon code over GF(2^8) with errors-and-erasures
 * decoding.  This is the outer code that protects each row (codeword) of
 * the encoding-unit matrix in the storage architecture (paper Section
 * IV): lost molecules become erasures, corrupted molecules become
 * symbol errors.
 *
 * Decoding uses the Sugiyama (extended Euclidean) key-equation solver
 * with erasure pre-multiplication, Chien search and Forney magnitudes,
 * followed by syndrome re-verification so miscorrections are reported
 * as failures rather than silent corruption.
 */

#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "ecc/gf256.hh"

namespace dnastore
{

/**
 * RS(n, k) codec; n <= 255, 0 < k < n.  Codewords are laid out
 * big-endian: index 0 is the highest-degree coefficient, so a systematic
 * codeword is [message bytes..., parity bytes...].
 */
class ReedSolomon
{
  public:
    /** Outcome of a decode attempt. */
    struct DecodeResult
    {
        bool ok = false;               //!< Codeword recovered and verified.
        std::size_t errors = 0;        //!< Unknown-position errors fixed.
        std::size_t erasures = 0;      //!< Erasure positions filled.
    };

    /**
     * @param n Codeword length in symbols (<= 255).
     * @param k Message length in symbols (< n).
     * Throws std::invalid_argument for out-of-range parameters.
     */
    ReedSolomon(std::size_t n, std::size_t k);

    std::size_t n() const { return n_; }
    std::size_t k() const { return k_; }
    /** Number of parity symbols (n - k). */
    std::size_t parity() const { return n_ - k_; }
    /** Guaranteed error-correction radius floor((n-k)/2). */
    std::size_t correctionCapacity() const { return parity() / 2; }

    /**
     * Encode a k-symbol message into an n-symbol systematic codeword.
     * Throws std::invalid_argument on size mismatch.
     */
    [[nodiscard]] std::vector<std::uint8_t>
    encode(std::span<const std::uint8_t> message) const;

    /**
     * Decode in place.  @p erasures lists known-bad codeword indices
     * (e.g. positions of molecules that were never recovered); their
     * current contents are ignored.  Correctable iff
     * 2*errors + erasures <= n - k.
     *
     * On success the codeword holds the corrected symbols and result.ok
     * is true; on failure the codeword is left in its (possibly
     * partially modified but re-checked) state and ok is false.
     */
    [[nodiscard]] DecodeResult
    decode(std::span<std::uint8_t> codeword,
           std::span<const std::size_t> erasures = {}) const;

    /** Extract the message part of a (corrected) codeword. */
    [[nodiscard]] std::vector<std::uint8_t>
    message(std::span<const std::uint8_t> codeword) const;

    /** True iff the codeword has all-zero syndromes. */
    bool isCodeword(std::span<const std::uint8_t> codeword) const;

  private:
    gf256::Poly syndromes(std::span<const std::uint8_t> codeword) const;

    std::size_t n_;
    std::size_t k_;
    gf256::Poly generator; //!< Generator polynomial, little-endian.
};

} // namespace dnastore

