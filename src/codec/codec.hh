/**
 * @file
 * Module interfaces for the encoding/decoding step of the pipeline
 * (paper Sections III and IV).  Any encoder/decoder implementing these
 * interfaces can be slotted into the Pipeline; the toolkit ships the
 * Organick-style matrix codec with Baseline, Gini and DNAMapper layouts.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dna/strand.hh"

namespace dnastore
{

/**
 * Outcome of decoding a set of reconstructed strands back into a file.
 */
struct DecodeReport
{
    bool ok = false;                 //!< Header valid and CRC matched.
    std::vector<std::uint8_t> data;  //!< Recovered file contents.

    std::size_t total_rows = 0;      //!< RS codewords processed.
    std::size_t failed_rows = 0;     //!< Codewords RS could not correct.
    /** (unit, row) of every failed codeword, for reliability analyses. */
    std::vector<std::pair<std::size_t, std::size_t>> failed_row_ids;
    std::size_t corrected_errors = 0; //!< RS symbol errors fixed.
    std::size_t erased_columns = 0;  //!< Missing molecules (erasures).
    std::size_t malformed_strands = 0; //!< Wrong length / bad index field.
    std::size_t conflicting_strands = 0; //!< Duplicate-index disagreements.
};

/**
 * Encoding module interface: binary data in, DNA strands out.  Each
 * strand carries its index field; primers are attached later, at the
 * pool level.
 */
class FileEncoder
{
  public:
    virtual ~FileEncoder() = default;

    /** Encode a file into index-tagged payload strands. */
    [[nodiscard]] virtual std::vector<Strand>
    encode(const std::vector<std::uint8_t> &data) const = 0;

    /**
     * Number of encoding units a file of the given size occupies, when
     * the scheme has such a notion (0 = unknown; decoders then infer it
     * from the observed indices).
     */
    virtual std::size_t unitsForSize(std::size_t) const { return 0; }

    /** Human-readable module name (for reports). */
    virtual std::string name() const = 0;
};

/**
 * Decoding module interface: reconstructed strands in, binary data out.
 */
class FileDecoder
{
  public:
    virtual ~FileDecoder() = default;

    /**
     * Decode reconstructed strands.
     *
     * @param strands Reconstructed index+payload strands (any order,
     *                duplicates allowed).
     * @param expected_units Number of encoding units the file was
     *                encoded into, when known (0 = infer from indices).
     */
    [[nodiscard]] virtual DecodeReport
    decode(const std::vector<Strand> &strands,
           std::size_t expected_units = 0) const = 0;

    /** Human-readable module name (for reports). */
    virtual std::string name() const = 0;
};

} // namespace dnastore

