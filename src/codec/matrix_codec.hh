/**
 * @file
 * The Organick-style matrix codec (paper Section IV) with three layout
 * schemes:
 *
 *  - Baseline: molecules are columns of an encoding-unit matrix and
 *    every row is a Reed-Solomon codeword (Organick et al.).  Lost
 *    molecules become erasures in every row; insertions/deletions inside
 *    a molecule surface as substitution errors in the affected rows.
 *  - Gini: codewords are laid out diagonally, so the unreliable middle
 *    strand positions produced by double-sided BMA are spread evenly
 *    across all codewords instead of concentrating in the middle rows.
 *  - DNAMapper: data bytes carry priority classes, and higher-priority
 *    bytes are mapped onto more reliable strand positions, degrading
 *    quality-tolerant data first when rows fail.
 *
 * A 20-byte header (magic, version, scheme, payload length, CRC-32) is
 * replicated at the start of every encoding unit — the decoder recovers
 * it by byte-wise majority vote across units and verifies end-to-end
 * integrity with the CRC.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "codec/codec.hh"
#include "codec/index_codec.hh"
#include "codec/randomizer.hh"
#include "ecc/reed_solomon.hh"

namespace dnastore
{

/** Matrix layout variants (paper Sections IV-A/B/C). */
enum class LayoutScheme : std::uint8_t
{
    Baseline = 0,
    Gini = 1,
    DNAMapper = 2,
};

/** Name of a layout scheme. */
const char *layoutSchemeName(LayoutScheme scheme);

/**
 * Shared configuration of the matrix encoder/decoder pair.  A file is
 * split into encoding units of rs_n molecules (rs_k data + rs_n - rs_k
 * ECC); each molecule payload holds payload_nt/4 bytes, one per matrix
 * row.
 */
struct MatrixCodecConfig
{
    std::size_t payload_nt = 120; //!< Payload nucleotides (multiple of 4).
    std::size_t index_nt = 12;    //!< Index field width in nucleotides.
    std::size_t rs_n = 96;        //!< Columns (molecules) per unit, <= 255.
    std::size_t rs_k = 64;        //!< Data columns per unit.
    std::uint64_t randomizer_seed = 0x0dd5eedULL;
    LayoutScheme scheme = LayoutScheme::Baseline;

    /**
     * DNAMapper only: priority class per payload byte (lower value =
     * more important).  Must match the encoded data length; empty means
     * identity mapping (DNAMapper degenerates to Baseline).
     */
    std::vector<std::uint32_t> priorities;

    /**
     * DNAMapper only: matrix rows listed most-reliable first.  Empty
     * selects the double-sided-BMA default, where reliability decreases
     * toward the middle of the strand.
     */
    std::vector<std::size_t> row_reliability_order;

    /** Bytes stored per molecule payload (= matrix rows). */
    std::size_t bytesPerMolecule() const { return payload_nt / 4; }
    /** Total strand length (index + payload). */
    std::size_t strandLength() const { return index_nt + payload_nt; }
    /** Data bytes per encoding unit. */
    std::size_t unitDataBytes() const { return rs_k * bytesPerMolecule(); }

    /** Throws std::invalid_argument on inconsistent parameters. */
    void validate() const;

    /** Rows in most-reliable-first order (explicit or DBMA default). */
    std::vector<std::size_t> effectiveRowOrder() const;
};

/** Matrix encoder: file bytes to index-tagged strands. */
class MatrixEncoder : public FileEncoder
{
  public:
    explicit MatrixEncoder(MatrixCodecConfig config);

    [[nodiscard]] std::vector<Strand>
    encode(const std::vector<std::uint8_t> &data) const override;

    std::string name() const override;

    /** Units needed for a file of the given size. */
    std::size_t unitsForSize(std::size_t data_size) const override;

    const MatrixCodecConfig &config() const { return cfg; }

  private:
    MatrixCodecConfig cfg;
    ReedSolomon rs;
    Randomizer randomizer;
    IndexCodec index_codec;
};

/** Matrix decoder: reconstructed strands back to file bytes. */
class MatrixDecoder : public FileDecoder
{
  public:
    explicit MatrixDecoder(MatrixCodecConfig config);

    [[nodiscard]] DecodeReport
    decode(const std::vector<Strand> &strands,
           std::size_t expected_units = 0) const override;

    std::string name() const override;

    const MatrixCodecConfig &config() const { return cfg; }

  private:
    std::size_t inferUnits(
        const std::vector<std::vector<std::vector<std::uint8_t>>> &) const;

    MatrixCodecConfig cfg;
    ReedSolomon rs;
    Randomizer randomizer;
    IndexCodec index_codec;
};

namespace detail
{

/**
 * Build the DNAMapper source permutation: sourceOf[slot] is the stream
 * position whose byte is stored in physical slot `slot`.  Exposed for
 * testing.
 *
 * @param stream_size Padded stream length (units * unitDataBytes).
 * @param header_size Bytes of header replica at each unit front
 *                    (always priority class 0).
 * @param data_size   Total payload bytes across units.
 * @param priorities  Priority class per payload byte (empty = one class).
 * @param cfg         Codec geometry (rows per molecule, columns).
 */
std::vector<std::size_t>
dnaMapperPermutation(std::size_t stream_size, std::size_t header_size,
                     std::size_t data_size,
                     const std::vector<std::uint32_t> &priorities,
                     const MatrixCodecConfig &cfg);

} // namespace detail

} // namespace dnastore

