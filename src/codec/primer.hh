/**
 * @file
 * PCR primer design and handling (paper Sections II-E/F and VIII).
 * A pair of ~20-nt primers is the "key" of a stored file: all molecules
 * of the file are tagged with the pair, and PCR amplification of the
 * pair implements random access.  Primers must be mutually distant in
 * Hamming distance, GC-balanced and homopolymer-free so that PCR binds
 * specifically and synthesis succeeds.
 */

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{

/** A forward/reverse primer pair addressing one file. */
struct PrimerPair
{
    Strand forward;
    Strand reverse;
};

/** Constraints a primer must satisfy. */
struct PrimerConstraints
{
    std::size_t length = 20;          //!< Primer length in nucleotides.
    std::size_t min_hamming = 8;      //!< Pairwise distance to all others.
    double min_gc = 0.40;             //!< Lower GC-content bound.
    double max_gc = 0.60;             //!< Upper GC-content bound.
    std::size_t max_homopolymer = 3;  //!< Longest run allowed.
};

/**
 * A library of mutually well-separated primers.  Primer i and its
 * reverse complement are both kept at distance from every other library
 * member, so reads can be orientation-classified unambiguously.
 */
class PrimerLibrary
{
  public:
    /**
     * Greedily design num_primers primers satisfying the constraints.
     * Throws std::runtime_error if the search cannot place a primer
     * within a bounded number of attempts (constraints too tight).
     */
    static PrimerLibrary design(Rng &rng, std::size_t num_primers,
                                const PrimerConstraints &constraints = {});

    /** Construct from pre-existing primers (validated for length only). */
    explicit PrimerLibrary(std::vector<Strand> primers);

    std::size_t size() const { return primers.size(); }
    const Strand &primer(std::size_t i) const { return primers.at(i); }
    const std::vector<Strand> &all() const { return primers; }

    /** Primer pair for file slot i (forward = 2i, reverse = 2i+1). */
    PrimerPair pairFor(std::size_t file_slot) const;

    /** Number of complete pairs available. */
    std::size_t numPairs() const { return primers.size() / 2; }

    /**
     * Identify which library primer best matches the first
     * prefix-length characters of a read, allowing up to max_edit edit
     * distance.  Returns the primer id and whether the match was against
     * the primer's reverse complement (read is 3'->5' oriented).
     */
    struct Match
    {
        std::size_t primer_id;
        bool reverse_complement;
        std::size_t distance;
    };
    std::optional<Match>
    matchPrefix(const std::string &read, std::size_t max_edit) const;

  private:
    std::vector<Strand> primers;
};

/** Attach a primer pair around a payload strand (Fig. 2a layout). */
Strand attachPrimers(const PrimerPair &pair, const Strand &payload);

/**
 * Strip a primer pair from a tagged strand, tolerating up to max_edit
 * edit errors in each primer region.  Returns std::nullopt when either
 * primer cannot be located within tolerance.
 */
std::optional<Strand>
stripPrimers(const PrimerPair &pair, const Strand &tagged,
             std::size_t max_edit);

} // namespace dnastore

