#include "codec/randomizer.hh"

#include "util/random.hh"

namespace dnastore
{

void
Randomizer::apply(std::vector<std::uint8_t> &data) const
{
    SplitMix64 stream(seed);
    std::size_t i = 0;
    while (i + 8 <= data.size()) {
        std::uint64_t word = stream.next();
        for (int b = 0; b < 8; ++b) {
            data[i++] ^= static_cast<std::uint8_t>(word);
            word >>= 8;
        }
    }
    if (i < data.size()) {
        std::uint64_t word = stream.next();
        while (i < data.size()) {
            data[i++] ^= static_cast<std::uint8_t>(word);
            word >>= 8;
        }
    }
}

} // namespace dnastore
