#include "codec/index_codec.hh"

#include <stdexcept>

namespace dnastore
{

IndexCodec::IndexCodec(std::size_t width_bases) : num_bases(width_bases)
{
    if (num_bases == 0 || num_bases > 32)
        throw std::invalid_argument("IndexCodec: width must be in [1, 32]");
}

std::uint64_t
IndexCodec::maxIndex() const
{
    if (num_bases >= 32)
        return ~0ULL;
    return (1ULL << (2 * num_bases)) - 1;
}

Strand
IndexCodec::encode(std::uint64_t index) const
{
    return strand::encodeNumber(index, num_bases);
}

std::optional<std::uint64_t>
IndexCodec::decode(const Strand &s) const
{
    // Garbage input is expected here (truncated reads, non-ACGT junk),
    // so the reject path must not rely on exceptions.
    if (s.size() < num_bases)
        return std::nullopt;
    return strand::tryDecodeNumber(s.substr(0, num_bases));
}

} // namespace dnastore
