#include "codec/primer.hh"

#include <limits>
#include <stdexcept>

#include "dna/distance.hh"

namespace dnastore
{

namespace
{

bool
satisfiesLocalRules(const Strand &candidate, const PrimerConstraints &cons)
{
    const double gc = strand::gcContent(candidate);
    if (gc < cons.min_gc || gc > cons.max_gc)
        return false;
    return strand::maxHomopolymerRun(candidate) <= cons.max_homopolymer;
}

bool
farFromAll(const Strand &candidate, const std::vector<Strand> &accepted,
           std::size_t min_hamming)
{
    const Strand rc = strand::reverseComplement(candidate);
    for (const Strand &other : accepted) {
        if (hammingDistance(candidate, other) < min_hamming)
            return false;
        if (hammingDistance(rc, other) < min_hamming)
            return false;
    }
    // Self-complementary primers would bind to themselves during PCR.
    return hammingDistance(candidate, rc) >= min_hamming;
}

} // namespace

PrimerLibrary
PrimerLibrary::design(Rng &rng, std::size_t num_primers,
                      const PrimerConstraints &cons)
{
    constexpr std::size_t max_attempts_per_primer = 200000;
    std::vector<Strand> accepted;
    accepted.reserve(num_primers);
    while (accepted.size() < num_primers) {
        bool placed = false;
        for (std::size_t attempt = 0; attempt < max_attempts_per_primer;
             ++attempt) {
            Strand candidate = strand::random(rng, cons.length);
            if (!satisfiesLocalRules(candidate, cons))
                continue;
            if (!farFromAll(candidate, accepted, cons.min_hamming))
                continue;
            accepted.push_back(std::move(candidate));
            placed = true;
            break;
        }
        if (!placed) {
            throw std::runtime_error(
                "PrimerLibrary::design: constraints too tight after " +
                std::to_string(accepted.size()) + " primers");
        }
    }
    return PrimerLibrary(std::move(accepted));
}

PrimerLibrary::PrimerLibrary(std::vector<Strand> primers_in)
    : primers(std::move(primers_in))
{
    for (const Strand &p : primers) {
        if (p.empty() || !strand::isValid(p))
            throw std::invalid_argument("PrimerLibrary: invalid primer");
    }
}

PrimerPair
PrimerLibrary::pairFor(std::size_t file_slot) const
{
    if (2 * file_slot + 1 >= primers.size())
        throw std::out_of_range("PrimerLibrary::pairFor: no such pair");
    return {primers[2 * file_slot], primers[2 * file_slot + 1]};
}

std::optional<PrimerLibrary::Match>
PrimerLibrary::matchPrefix(const std::string &read, std::size_t max_edit) const
{
    std::optional<Match> best;
    for (std::size_t id = 0; id < primers.size(); ++id) {
        const Strand &primer = primers[id];
        if (read.size() < primer.size())
            continue;
        const std::string prefix = read.substr(0, primer.size());

        const std::size_t d_fwd =
            boundedLevenshtein(prefix, primer, max_edit);
        if (d_fwd <= max_edit && (!best || d_fwd < best->distance))
            best = Match{id, false, d_fwd};

        const std::size_t d_rc = boundedLevenshtein(
            prefix, strand::reverseComplement(primer), max_edit);
        if (d_rc <= max_edit && (!best || d_rc < best->distance))
            best = Match{id, true, d_rc};
    }
    return best;
}

Strand
attachPrimers(const PrimerPair &pair, const Strand &payload)
{
    return pair.forward + payload + pair.reverse;
}

namespace
{

/**
 * Best split point for a primer at the front of s: returns the cut
 * position with minimal edit distance between the primer and s[0, cut),
 * scanning cut in [len - slack, len + slack].
 */
std::optional<std::size_t>
frontCut(const Strand &primer, const std::string &s, std::size_t max_edit)
{
    const std::size_t len = primer.size();
    std::size_t best_cut = 0;
    std::size_t best_d = std::numeric_limits<std::size_t>::max();
    const std::size_t lo = len > max_edit ? len - max_edit : 0;
    const std::size_t hi = std::min(s.size(), len + max_edit);
    for (std::size_t cut = lo; cut <= hi; ++cut) {
        const std::size_t d =
            boundedLevenshtein(s.substr(0, cut), primer, max_edit);
        if (d < best_d) {
            best_d = d;
            best_cut = cut;
        }
    }
    if (best_d > max_edit)
        return std::nullopt;
    return best_cut;
}

} // namespace

std::optional<Strand>
stripPrimers(const PrimerPair &pair, const Strand &tagged,
             std::size_t max_edit)
{
    if (tagged.size() < pair.forward.size() + pair.reverse.size())
        return std::nullopt;

    const auto front = frontCut(pair.forward, tagged, max_edit);
    if (!front)
        return std::nullopt;

    // Strip the reverse primer by mirroring the strand.
    std::string flipped(tagged.rbegin(), tagged.rend());
    Strand reverse_mirrored(pair.reverse.rbegin(), pair.reverse.rend());
    const auto back = frontCut(reverse_mirrored, flipped, max_edit);
    if (!back)
        return std::nullopt;

    const std::size_t start = *front;
    const std::size_t end = tagged.size() - *back;
    if (end <= start)
        return std::nullopt;
    return tagged.substr(start, end - start);
}

} // namespace dnastore
