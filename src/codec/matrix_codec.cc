#include "codec/matrix_codec.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/assert.hh"
#include "util/crc32.hh"

namespace dnastore
{

namespace
{

/**
 * Publishes the decode tallies into the metrics registry on scope exit,
 * so every early return (bad framing, zero units) still reports.
 */
class DecodeMetricsGuard
{
  public:
    DecodeMetricsGuard(const DecodeReport &report, std::size_t strands)
        : report_(report), strands_(strands)
    {
    }

    DecodeMetricsGuard(const DecodeMetricsGuard &) = delete;
    DecodeMetricsGuard &operator=(const DecodeMetricsGuard &) = delete;

    ~DecodeMetricsGuard()
    {
        obs::MetricsRegistry &reg = obs::metrics();
        reg.counter("decoding.strands_total").add(strands_);
        reg.counter("decoding.rs_rows_total").add(report_.total_rows);
        reg.counter("decoding.rs_rows_failed_total")
            .add(report_.failed_rows);
        reg.counter("decoding.rs_symbols_corrected_total")
            .add(report_.corrected_errors);
        reg.counter("decoding.rs_erasures_total")
            .add(report_.erased_columns);
        reg.counter("decoding.malformed_strands_total")
            .add(report_.malformed_strands);
        reg.counter("decoding.conflicting_strands_total")
            .add(report_.conflicting_strands);
        reg.counter("decoding.bytes_total").add(report_.data.size());
    }

  private:
    const DecodeReport &report_;
    std::size_t strands_;
};

constexpr std::size_t kHeaderSize = 20;
constexpr std::uint8_t kMagic[4] = {'D', 'N', 'S', 'T'};
constexpr std::uint8_t kVersion = 1;

/** Serialise the stream header: magic, version, scheme, length, CRC. */
void
writeHeader(std::vector<std::uint8_t> &stream, LayoutScheme scheme,
            const std::vector<std::uint8_t> &data)
{
    stream.insert(stream.end(), kMagic, kMagic + 4);
    stream.push_back(kVersion);
    stream.push_back(static_cast<std::uint8_t>(scheme));
    stream.push_back(0);
    stream.push_back(0);
    std::uint64_t length = data.size();
    for (int b = 0; b < 8; ++b) {
        stream.push_back(static_cast<std::uint8_t>(length));
        length >>= 8;
    }
    std::uint32_t crc = crc32(data);
    for (int b = 0; b < 4; ++b) {
        stream.push_back(static_cast<std::uint8_t>(crc));
        crc >>= 8;
    }
}

struct ParsedHeader
{
    bool magic_ok = false;
    std::uint8_t version = 0;
    std::uint8_t scheme = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
};

ParsedHeader
parseHeader(const std::vector<std::uint8_t> &stream)
{
    ParsedHeader h;
    if (stream.size() < kHeaderSize)
        return h;
    h.magic_ok = std::equal(kMagic, kMagic + 4, stream.begin());
    h.version = stream[4];
    h.scheme = stream[5];
    for (int b = 7; b >= 0; --b)
        h.length = (h.length << 8) | stream[8 + static_cast<std::size_t>(b)];
    for (int b = 3; b >= 0; --b)
        h.crc = (h.crc << 8) | stream[16 + static_cast<std::size_t>(b)];
    return h;
}

} // namespace

const char *
layoutSchemeName(LayoutScheme scheme)
{
    switch (scheme) {
      case LayoutScheme::Baseline: return "baseline";
      case LayoutScheme::Gini: return "gini";
      case LayoutScheme::DNAMapper: return "dnamapper";
    }
    return "unknown";
}

void
MatrixCodecConfig::validate() const
{
    if (payload_nt == 0 || payload_nt % 4 != 0)
        throw std::invalid_argument(
            "MatrixCodecConfig: payload_nt must be a positive multiple of 4");
    if (index_nt == 0 || index_nt > 32)
        throw std::invalid_argument(
            "MatrixCodecConfig: index_nt must be in [1, 32]");
    if (rs_n == 0 || rs_n > 255)
        throw std::invalid_argument(
            "MatrixCodecConfig: rs_n must be in [1, 255]");
    if (rs_k == 0 || rs_k >= rs_n)
        throw std::invalid_argument(
            "MatrixCodecConfig: rs_k must be in [1, rs_n - 1]");
    if (!row_reliability_order.empty()) {
        if (row_reliability_order.size() != bytesPerMolecule())
            throw std::invalid_argument(
                "MatrixCodecConfig: row order must cover every row");
        std::vector<bool> seen(bytesPerMolecule(), false);
        for (std::size_t row : row_reliability_order) {
            if (row >= bytesPerMolecule() || seen[row])
                throw std::invalid_argument(
                    "MatrixCodecConfig: row order must be a permutation");
            seen[row] = true;
        }
    }
}

std::vector<std::size_t>
MatrixCodecConfig::effectiveRowOrder() const
{
    if (!row_reliability_order.empty())
        return row_reliability_order;
    // DBMA concentrates reconstruction errors in the middle of the
    // strand, so edge rows are most reliable.
    const std::size_t rows = bytesPerMolecule();
    std::vector<std::size_t> order(rows);
    std::iota(order.begin(), order.end(), 0);
    const double centre = (static_cast<double>(rows) - 1.0) / 2.0;
    std::stable_sort(order.begin(), order.end(),
                     [centre](std::size_t a, std::size_t b) {
                         const double da =
                             std::abs(static_cast<double>(a) - centre);
                         const double db =
                             std::abs(static_cast<double>(b) - centre);
                         return da > db;
                     });
    return order;
}

namespace detail
{

std::vector<std::size_t>
dnaMapperPermutation(std::size_t stream_size, std::size_t header_size,
                     std::size_t data_size,
                     const std::vector<std::uint32_t> &priorities,
                     const MatrixCodecConfig &cfg)
{
    // Stream positions sorted by (priority class, position); physical
    // slots sorted by (row reliability rank, slot).  The i-th most
    // important position lands in the i-th most reliable slot.
    const std::vector<std::size_t> row_order = cfg.effectiveRowOrder();
    std::vector<std::size_t> row_rank(row_order.size());
    for (std::size_t rank = 0; rank < row_order.size(); ++rank)
        row_rank[row_order[rank]] = rank;

    std::vector<std::size_t> positions(stream_size);
    std::iota(positions.begin(), positions.end(), 0);
    const std::size_t unit_bytes = cfg.unitDataBytes();
    const std::size_t per_unit = unit_bytes - header_size;
    auto priority_of = [&](std::size_t pos) -> std::uint64_t {
        // Each unit leads with a header replica: always most important.
        const std::size_t in_unit = pos % unit_bytes;
        if (in_unit < header_size)
            return 0;
        const std::size_t data_index =
            (pos / unit_bytes) * per_unit + (in_unit - header_size);
        if (data_index < data_size) {
            if (priorities.empty())
                return 1;
            return 1ULL + priorities[data_index];
        }
        return ~0ULL; // padding: least important
    };
    std::stable_sort(positions.begin(), positions.end(),
                     [&](std::size_t a, std::size_t b) {
                         return priority_of(a) < priority_of(b);
                     });

    const std::size_t rows = cfg.bytesPerMolecule();
    std::vector<std::size_t> slots(stream_size);
    std::iota(slots.begin(), slots.end(), 0);
    std::stable_sort(slots.begin(), slots.end(),
                     [&](std::size_t a, std::size_t b) {
                         return row_rank[a % rows] < row_rank[b % rows];
                     });

    std::vector<std::size_t> source_of(stream_size);
    for (std::size_t i = 0; i < stream_size; ++i)
        source_of[slots[i]] = positions[i];
    return source_of;
}

} // namespace detail

MatrixEncoder::MatrixEncoder(MatrixCodecConfig config)
    : cfg(std::move(config)),
      rs(cfg.rs_n, cfg.rs_k),
      randomizer(cfg.randomizer_seed),
      index_codec(cfg.index_nt)
{
    cfg.validate();
    if (cfg.unitDataBytes() <= kHeaderSize) {
        throw std::invalid_argument(
            "MatrixEncoder: unit too small for the header replica");
    }
}

std::string
MatrixEncoder::name() const
{
    return std::string("matrix-encoder/") + layoutSchemeName(cfg.scheme);
}

std::size_t
MatrixEncoder::unitsForSize(std::size_t data_size) const
{
    // Every unit carries its own header replica, so a unit holds
    // unitDataBytes() - kHeaderSize payload bytes.
    const std::size_t per_unit = cfg.unitDataBytes() - kHeaderSize;
    return std::max<std::size_t>(1, (data_size + per_unit - 1) / per_unit);
}

std::vector<Strand>
MatrixEncoder::encode(const std::vector<std::uint8_t> &data) const
{
    if (cfg.scheme == LayoutScheme::DNAMapper && !cfg.priorities.empty() &&
        cfg.priorities.size() != data.size()) {
        throw std::invalid_argument(
            "MatrixEncoder: priorities must match data length");
    }

    const std::size_t units = unitsForSize(data.size());
    const std::size_t rows = cfg.bytesPerMolecule();
    const std::size_t padded = units * cfg.unitDataBytes();
    if (units * cfg.rs_n - 1 > index_codec.maxIndex()) {
        throw std::invalid_argument(
            "MatrixEncoder: file too large for index width");
    }

    // Stream layout: every unit starts with its own replica of the
    // 20-byte header (a single header copy is a single point of failure
    // — one failed RS row could otherwise erase the file length),
    // followed by the unit's slice of the payload.
    std::vector<std::uint8_t> header;
    writeHeader(header, cfg.scheme, data);
    std::vector<std::uint8_t> stream(padded, 0);
    const std::size_t per_unit = cfg.unitDataBytes() - kHeaderSize;
    for (std::size_t u = 0; u < units; ++u) {
        const std::size_t base = u * cfg.unitDataBytes();
        std::copy(header.begin(), header.end(),
                  stream.begin() + static_cast<long>(base));
        const std::size_t lo = u * per_unit;
        const std::size_t hi = std::min(data.size(), lo + per_unit);
        if (lo < hi) {
            std::copy(data.begin() + static_cast<long>(lo),
                      data.begin() + static_cast<long>(hi),
                      stream.begin() + static_cast<long>(base + kHeaderSize));
        }
    }

    // With no priorities there is nothing to rank, and the decoder could
    // not reconstruct a data-length-dependent permutation anyway:
    // DNAMapper degenerates to Baseline (documented behaviour).
    if (cfg.scheme == LayoutScheme::DNAMapper && !cfg.priorities.empty()) {
        const auto source_of = detail::dnaMapperPermutation(
            padded, kHeaderSize, data.size(), cfg.priorities, cfg);
        std::vector<std::uint8_t> permuted(padded);
        for (std::size_t slot = 0; slot < padded; ++slot)
            permuted[slot] = stream[source_of[slot]];
        stream = std::move(permuted);
    }

    randomizer.apply(stream);

    std::vector<Strand> strands;
    strands.reserve(units * cfg.rs_n);
    std::vector<std::uint8_t> row_message(cfg.rs_k);
    for (std::size_t u = 0; u < units; ++u) {
        obs::Span unit_span("encoding/unit");
        // logical[r][c], row-major over rows.
        std::vector<std::uint8_t> logical(rows * cfg.rs_n, 0);
        const std::size_t base = u * cfg.unitDataBytes();
        for (std::size_t c = 0; c < cfg.rs_k; ++c)
            for (std::size_t r = 0; r < rows; ++r)
                logical[r * cfg.rs_n + c] = stream[base + c * rows + r];

        {
            obs::Span rs_span("encoding/rs_rows");
            for (std::size_t r = 0; r < rows; ++r) {
                std::copy_n(
                    logical.begin() + static_cast<long>(r * cfg.rs_n),
                    cfg.rs_k, row_message.begin());
                const auto codeword = rs.encode(row_message);
                for (std::size_t c = cfg.rs_k; c < cfg.rs_n; ++c)
                    logical[r * cfg.rs_n + c] = codeword[c];
            }
        }

        for (std::size_t c = 0; c < cfg.rs_n; ++c) {
            std::vector<std::uint8_t> column(rows);
            for (std::size_t pr = 0; pr < rows; ++pr) {
                // Gini stores logical row (pr - c) mod rows at physical
                // row pr, spreading each codeword across all strand
                // positions.
                const std::size_t lr = cfg.scheme == LayoutScheme::Gini
                    ? (pr + rows - (c % rows)) % rows
                    : pr;
                column[pr] = logical[lr * cfg.rs_n + c];
            }
            const std::uint64_t index =
                static_cast<std::uint64_t>(u) * cfg.rs_n + c;
            strands.push_back(index_codec.encode(index) +
                              strand::fromBytes(column));
            DNASTORE_DCHECK(strands.back().size() == cfg.strandLength(),
                            "emitted strand length must match the "
                            "configured geometry");
        }
    }
    DNASTORE_ASSERT(strands.size() == units * cfg.rs_n,
                    "encoder must emit exactly rs_n strands per unit");
    obs::MetricsRegistry &reg = obs::metrics();
    reg.counter("encoding.units_total").add(units);
    reg.counter("encoding.strands_total").add(strands.size());
    reg.counter("encoding.bytes_total").add(data.size());
    return strands;
}

MatrixDecoder::MatrixDecoder(MatrixCodecConfig config)
    : cfg(std::move(config)),
      rs(cfg.rs_n, cfg.rs_k),
      randomizer(cfg.randomizer_seed),
      index_codec(cfg.index_nt)
{
    cfg.validate();
    if (cfg.unitDataBytes() <= kHeaderSize) {
        throw std::invalid_argument(
            "MatrixDecoder: unit too small for the header replica");
    }
}

std::string
MatrixDecoder::name() const
{
    return std::string("matrix-decoder/") + layoutSchemeName(cfg.scheme);
}

std::size_t
MatrixDecoder::inferUnits(
    const std::vector<std::vector<std::vector<std::uint8_t>>> &units_seen)
    const
{
    // Trust the highest unit id that holds a meaningful share of its
    // expected molecules; a lone corrupted index should not inflate the
    // file size.
    const std::size_t quorum = std::max<std::size_t>(1, cfg.rs_n / 4);
    std::size_t best = 0;
    for (std::size_t u = 0; u < units_seen.size(); ++u) {
        std::size_t present = 0;
        for (const auto &column : units_seen[u])
            present += !column.empty();
        if (present >= quorum)
            best = u + 1;
    }
    if (best == 0 && !units_seen.empty())
        best = units_seen.size();
    return best;
}

DecodeReport
MatrixDecoder::decode(const std::vector<Strand> &strands,
                      std::size_t expected_units) const
{
    DecodeReport report;
    const DecodeMetricsGuard metrics_guard(report, strands.size());
    const std::size_t rows = cfg.bytesPerMolecule();

    // Group payload candidates by global column index.
    obs::Span group_span("decoding/group_candidates");
    std::map<std::uint64_t, std::vector<std::vector<std::uint8_t>>>
        candidates;
    for (const Strand &s : strands) {
        // Reject anything the fault injector (or a real sequencer) can
        // produce — zero-length reads, wrong lengths, non-ACGT bases —
        // without throwing: garbage is counted, never fatal.
        if (s.empty() || s.size() != cfg.strandLength()) {
            ++report.malformed_strands;
            continue;
        }
        const auto index = index_codec.decode(s);
        if (!index) {
            ++report.malformed_strands;
            continue;
        }
        auto payload = strand::tryToBytes(s.substr(cfg.index_nt));
        if (!payload) {
            ++report.malformed_strands;
            continue;
        }
        DNASTORE_DCHECK(payload->size() == rows,
                        "accepted payload must span bytesPerMolecule() "
                        "matrix rows");
        candidates[*index].push_back(std::move(*payload));
    }

    // Organise candidates into units[u][c] and resolve duplicates with a
    // per-byte majority vote.
    std::size_t max_unit = expected_units;
    if (max_unit == 0) {
        for (const auto &[index, list] : candidates)
            max_unit = std::max<std::size_t>(
                max_unit, static_cast<std::size_t>(index / cfg.rs_n) + 1);
    }
    std::vector<std::vector<std::vector<std::uint8_t>>> units(
        max_unit,
        std::vector<std::vector<std::uint8_t>>(cfg.rs_n));
    for (auto &[index, list] : candidates) {
        const std::size_t u = static_cast<std::size_t>(index / cfg.rs_n);
        const std::size_t c = static_cast<std::size_t>(index % cfg.rs_n);
        if (u >= max_unit) {
            report.malformed_strands += list.size();
            continue;
        }
        if (list.size() == 1) {
            units[u][c] = std::move(list.front());
            continue;
        }
        std::vector<std::uint8_t> consensus(rows, 0);
        for (std::size_t r = 0; r < rows; ++r) {
            std::map<std::uint8_t, std::size_t> votes;
            for (const auto &candidate : list)
                ++votes[candidate[r]];
            std::uint8_t best_byte = 0;
            std::size_t best_votes = 0;
            for (const auto &[byte, count] : votes) {
                if (count > best_votes) {
                    best_votes = count;
                    best_byte = byte;
                }
            }
            consensus[r] = best_byte;
        }
        for (const auto &candidate : list)
            report.conflicting_strands += candidate != consensus;
        units[u][c] = std::move(consensus);
    }
    group_span.end();

    const std::size_t num_units =
        expected_units > 0 ? expected_units : inferUnits(units);
    if (num_units == 0)
        return report;

    // Row-by-row RS decoding with missing columns as erasures.
    std::vector<std::uint8_t> stream(num_units * cfg.unitDataBytes(), 0);
    report.total_rows = num_units * rows;
    for (std::size_t u = 0; u < num_units; ++u) {
        obs::Span unit_span("decoding/unit");
        std::vector<std::size_t> missing;
        for (std::size_t c = 0; c < cfg.rs_n; ++c)
            if (u >= units.size() || units[u][c].empty())
                missing.push_back(c);
        report.erased_columns += missing.size();

        std::vector<std::uint8_t> codeword(cfg.rs_n);
        for (std::size_t r = 0; r < rows; ++r) {
            obs::Span row_span("decoding/rs_row");
            for (std::size_t c = 0; c < cfg.rs_n; ++c) {
                if (u >= units.size() || units[u][c].empty()) {
                    codeword[c] = 0;
                    continue;
                }
                const std::size_t pr = cfg.scheme == LayoutScheme::Gini
                    ? (r + c) % rows
                    : r;
                codeword[c] = units[u][c][pr];
            }
            const auto result = rs.decode(codeword, missing);
            if (result.ok) {
                report.corrected_errors += result.errors;
            } else {
                ++report.failed_rows;
                report.failed_row_ids.emplace_back(u, r);
            }
            const std::size_t base = u * cfg.unitDataBytes();
            for (std::size_t c = 0; c < cfg.rs_k; ++c)
                stream[base + c * rows + r] = codeword[c];
        }
    }

    randomizer.apply(stream);

    const std::size_t per_unit = cfg.unitDataBytes() - kHeaderSize;
    if (cfg.scheme == LayoutScheme::DNAMapper && !cfg.priorities.empty()) {
        const std::size_t data_size = cfg.priorities.size();
        if (data_size <= num_units * per_unit) {
            const auto source_of = detail::dnaMapperPermutation(
                stream.size(), kHeaderSize, data_size, cfg.priorities, cfg);
            std::vector<std::uint8_t> unpermuted(stream.size());
            for (std::size_t slot = 0; slot < stream.size(); ++slot)
                unpermuted[source_of[slot]] = stream[slot];
            stream = std::move(unpermuted);
        }
    }

    // Reassemble the header by byte-wise majority over the per-unit
    // replicas, then parse it.
    std::vector<std::uint8_t> header_bytes(kHeaderSize, 0);
    for (std::size_t b = 0; b < kHeaderSize; ++b) {
        std::map<std::uint8_t, std::size_t> votes;
        for (std::size_t u = 0; u < num_units; ++u)
            ++votes[stream[u * cfg.unitDataBytes() + b]];
        std::size_t best_votes = 0;
        for (const auto &[byte, count] : votes) {
            if (count > best_votes) {
                best_votes = count;
                header_bytes[b] = byte;
            }
        }
    }
    const ParsedHeader header = parseHeader(header_bytes);
    if (!header.magic_ok || header.version != kVersion ||
        header.length > num_units * per_unit) {
        return report; // unrecoverable framing: report.ok stays false
    }

    report.data.reserve(header.length);
    for (std::size_t u = 0; u < num_units && report.data.size() <
             header.length; ++u) {
        const std::size_t base = u * cfg.unitDataBytes() + kHeaderSize;
        const std::size_t take = std::min<std::uint64_t>(
            per_unit, header.length - report.data.size());
        report.data.insert(report.data.end(),
                           stream.begin() + static_cast<long>(base),
                           stream.begin() + static_cast<long>(base + take));
    }
    report.ok = crc32(report.data) == header.crc;
    return report;
}

} // namespace dnastore
