/**
 * @file
 * Fixed-width nucleotide index field (paper Section II-C).  Molecules in
 * a pool have no physical order, so every strand carries an internal
 * address that places its payload within the file.
 */

#pragma once

#include <cstdint>
#include <optional>

#include "dna/strand.hh"

namespace dnastore
{

/**
 * Encodes a molecule index as a fixed number of nucleotides (2 bits per
 * base, big-endian).
 */
class IndexCodec
{
  public:
    /**
     * @param num_bases Index field width in nucleotides (1..32).
     * Throws std::invalid_argument when out of range.
     */
    explicit IndexCodec(std::size_t num_bases);

    /** Index field width in nucleotides. */
    std::size_t width() const { return num_bases; }

    /** Largest representable index. */
    std::uint64_t maxIndex() const;

    /** Encode an index; throws std::invalid_argument if it can't fit. */
    [[nodiscard]] Strand encode(std::uint64_t index) const;

    /**
     * Decode the index from the first width() bases of a strand.
     * Returns std::nullopt if the strand is too short or contains
     * non-ACGT characters in the index field.
     */
    [[nodiscard]] std::optional<std::uint64_t>
    decode(const Strand &strand) const;

  private:
    std::size_t num_bases;
};

} // namespace dnastore

