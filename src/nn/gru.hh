/**
 * @file
 * A Gated Recurrent Unit cell (Cho et al.) with manual backpropagation.
 * GRUs are chosen over LSTMs following the paper (Section V-B), which
 * cites their resistance to overfitting.  Formulation:
 *
 *   z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)
 *   r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)
 *   n_t = tanh(W_n x_t + r_t .* (U_n h_{t-1}) + b_n)
 *   h_t = (1 - z_t) .* n_t + z_t .* h_{t-1}
 */

#pragma once

#include <vector>

#include "nn/param.hh"

namespace dnastore
{
namespace nn
{

/** Per-timestep activations kept for the backward pass. */
struct GruCache
{
    Vec x;      //!< Input.
    Vec h_prev; //!< Previous hidden state.
    Vec z, r, n;
    Vec un_h;   //!< U_n h_{t-1} before gating by r.
};

/** One GRU cell; reusable across timesteps (weights are shared). */
class GruCell
{
  public:
    GruCell(std::size_t input_size, std::size_t hidden_size,
            const std::string &name);

    /** Initialise all parameters uniform(-scale, scale). */
    void init(Rng &rng, float scale);

    /** Register parameters with an optimizer. */
    void registerParams(Adam &opt);

    /** Collect raw parameter pointers (for tests / serialisation). */
    std::vector<Param *> params();

    std::size_t inputSize() const { return input_size; }
    std::size_t hiddenSize() const { return hidden_size; }

    /**
     * One step forward.  @p cache is filled for use by backward().
     * Returns h_t (size hidden_size).
     */
    Vec forward(const Vec &x, const Vec &h_prev, GruCache &cache) const;

    /**
     * One step backward.  @p dh is dLoss/dh_t; the input and previous-
     * hidden gradients are *accumulated* into dx and dh_prev (which must
     * be pre-sized and may carry gradients from other consumers).
     * Parameter gradients accumulate into the cell's Param::grad.
     */
    void backward(const GruCache &cache, const Vec &dh, Vec &dx,
                  Vec &dh_prev);

  private:
    std::size_t input_size;
    std::size_t hidden_size;

  public:
    Param wz, wr, wn; //!< [H x I]
    Param uz, ur, un; //!< [H x H]
    Param bz, br, bn; //!< [H x 1]
};

} // namespace nn
} // namespace dnastore

