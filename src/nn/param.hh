/**
 * @file
 * A trainable parameter: value, gradient and Adam moment buffers, all
 * the same shape.  Modules register their parameters with the optimizer
 * by pointer, so one Adam step updates the whole model.
 */

#pragma once

#include <string>
#include <vector>

#include "nn/matrix.hh"

namespace dnastore
{
namespace nn
{

/** One trainable tensor with its gradient and Adam state. */
struct Param
{
    Param() = default;
    Param(std::size_t rows, std::size_t cols, std::string param_name = "")
        : value(rows, cols), grad(rows, cols), m(rows, cols), v(rows, cols),
          name(std::move(param_name))
    {
    }

    void
    init(Rng &rng, float scale)
    {
        value.randomInit(rng, scale);
        grad.zero();
        m.zero();
        v.zero();
    }

    std::size_t size() const { return value.raw().size(); }

    Matrix value;
    Matrix grad;
    Matrix m; //!< Adam first moment.
    Matrix v; //!< Adam second moment.
    std::string name;
};

/** Adam optimizer over a set of registered parameters. */
class Adam
{
  public:
    struct Config
    {
        float lr = 1e-3f;
        float beta1 = 0.9f;
        float beta2 = 0.999f;
        float eps = 1e-8f;
        float clip_norm = 5.0f; //!< Global gradient-norm clip (0 = off).
    };

    Adam();
    explicit Adam(Config config);

    /** Register a parameter (must outlive the optimizer). */
    void add(Param *param) { params.push_back(param); }

    /** Apply one update and zero all gradients. */
    void step();

    /** Zero gradients without updating. */
    void zeroGrad();

    const Config &config() const { return cfg; }
    void setLearningRate(float lr) { cfg.lr = lr; }

  private:
    Config cfg;
    std::vector<Param *> params;
    std::size_t t = 0;
};

} // namespace nn
} // namespace dnastore

