#include "nn/param.hh"

#include <cmath>

namespace dnastore
{
namespace nn
{

Adam::Adam() = default;

Adam::Adam(Config config) : cfg(config)
{
}

void
Adam::step()
{
    ++t;

    if (cfg.clip_norm > 0.0f) {
        double norm_sq = 0.0;
        for (const Param *p : params)
            for (float g : p->grad.raw())
                norm_sq += static_cast<double>(g) * static_cast<double>(g);
        const double norm = std::sqrt(norm_sq);
        if (norm > static_cast<double>(cfg.clip_norm)) {
            const float scale =
                static_cast<float>(static_cast<double>(cfg.clip_norm) / norm);
            for (Param *p : params)
                for (float &g : p->grad.raw())
                    g *= scale;
        }
    }

    const float correction1 =
        1.0f - std::pow(cfg.beta1, static_cast<float>(t));
    const float correction2 =
        1.0f - std::pow(cfg.beta2, static_cast<float>(t));

    for (Param *p : params) {
        Vec &value = p->value.raw();
        Vec &grad = p->grad.raw();
        Vec &m = p->m.raw();
        Vec &v = p->v.raw();
        for (std::size_t i = 0; i < value.size(); ++i) {
            m[i] = cfg.beta1 * m[i] + (1.0f - cfg.beta1) * grad[i];
            v[i] = cfg.beta2 * v[i] + (1.0f - cfg.beta2) * grad[i] * grad[i];
            const float m_hat = m[i] / correction1;
            const float v_hat = v[i] / correction2;
            value[i] -= cfg.lr * m_hat / (std::sqrt(v_hat) + cfg.eps);
            grad[i] = 0.0f;
        }
    }
}

void
Adam::zeroGrad()
{
    for (Param *p : params)
        p->grad.zero();
}

} // namespace nn
} // namespace dnastore
