#include "nn/attention.hh"

namespace dnastore
{
namespace nn
{

Attention::Attention(std::size_t state_size, std::size_t ann_size,
                     std::size_t attention_size, const std::string &name)
    : attn_size(attention_size),
      wa(attention_size, state_size, name + ".wa"),
      ua(attention_size, ann_size, name + ".ua"),
      va(attn_size, 1, name + ".va")
{
}

void
Attention::init(Rng &rng, float scale)
{
    for (Param *p : params())
        p->init(rng, scale);
}

void
Attention::registerParams(Adam &opt)
{
    for (Param *p : params())
        opt.add(p);
}

std::vector<Param *>
Attention::params()
{
    return {&wa, &ua, &va};
}

std::vector<Vec>
Attention::precompute(const std::vector<Vec> &annotations) const
{
    std::vector<Vec> pre(annotations.size());
    for (std::size_t i = 0; i < annotations.size(); ++i)
        matVec(ua.value, annotations[i], pre[i]);
    return pre;
}

Vec
Attention::forward(const Vec &s_prev, const std::vector<Vec> &annotations,
                   const std::vector<Vec> &pre, AttentionCache &cache) const
{
    const std::size_t count = annotations.size();
    cache.s_prev = s_prev;
    cache.t.resize(count);

    Vec q;
    matVec(wa.value, s_prev, q);

    Vec scores(count);
    for (std::size_t i = 0; i < count; ++i) {
        Vec &t_i = cache.t[i];
        t_i.resize(attn_size);
        float score = 0.0f;
        for (std::size_t a = 0; a < attn_size; ++a) {
            t_i[a] = std::tanh(q[a] + pre[i][a]);
            score += va.value(a, 0) * t_i[a];
        }
        scores[i] = score;
    }
    softmaxInPlace(scores);
    cache.alpha = scores;

    const std::size_t ann_size = annotations.empty()
        ? 0
        : annotations.front().size();
    Vec context(ann_size, 0.0f);
    for (std::size_t i = 0; i < count; ++i)
        axpy(context, annotations[i], cache.alpha[i]);
    return context;
}

void
Attention::backward(const AttentionCache &cache,
                    const std::vector<Vec> &annotations, const Vec &dcontext,
                    Vec &ds_prev, std::vector<Vec> &dann)
{
    const std::size_t count = annotations.size();

    // Context is an alpha-weighted sum of annotations.
    Vec dalpha(count, 0.0f);
    for (std::size_t i = 0; i < count; ++i) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < dcontext.size(); ++k)
            acc += dcontext[k] * annotations[i][k];
        dalpha[i] = acc;
        axpy(dann[i], dcontext, cache.alpha[i]);
    }

    // Softmax backward.
    float dot = 0.0f;
    for (std::size_t i = 0; i < count; ++i)
        dot += cache.alpha[i] * dalpha[i];
    Vec dscore(count);
    for (std::size_t i = 0; i < count; ++i)
        dscore[i] = cache.alpha[i] * (dalpha[i] - dot);

    // Scores: e_i = v^T t_i, t_i = tanh(q + pre_i).
    Vec dq(attn_size, 0.0f);
    Vec da(attn_size);
    for (std::size_t i = 0; i < count; ++i) {
        const Vec &t_i = cache.t[i];
        for (std::size_t a = 0; a < attn_size; ++a) {
            va.grad(a, 0) += dscore[i] * t_i[a];
            da[a] = dscore[i] * va.value(a, 0) * (1.0f - t_i[a] * t_i[a]);
            dq[a] += da[a];
        }
        addOuter(ua.grad, da, annotations[i]);
        matTVecAdd(ua.value, da, dann[i]);
    }

    addOuter(wa.grad, dq, cache.s_prev);
    matTVecAdd(wa.value, dq, ds_prev);
}

} // namespace nn
} // namespace dnastore
