/**
 * @file
 * The attention-based encoder-decoder channel model of paper Section
 * V-B (Figure 4): a bi-directional GRU encoder turns the clean strand
 * into annotations; a GRU decoder with Bahdanau attention models
 * Pr(noisy | clean) auto-regressively.  Training uses teacher forcing
 * and Adam; inference samples the next nucleotide from the predicted
 * distribution position-by-position ("greedy sampling" in the paper's
 * terminology).
 *
 * All gradients are hand-derived and covered by finite-difference
 * checks in the test suite.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dna/strand.hh"
#include "nn/attention.hh"
#include "nn/gru.hh"

namespace dnastore
{
namespace nn
{

/** Token ids: 0..3 = A,C,G,T; 4 = EOS; 5 = BOS (decoder input only). */
inline constexpr std::size_t kTokenEos = 4;
inline constexpr std::size_t kTokenBos = 5;
inline constexpr std::size_t kInVocab = 4;  //!< Encoder alphabet.
inline constexpr std::size_t kOutVocab = 5; //!< Decoder output alphabet.
inline constexpr std::size_t kDecVocab = 6; //!< Decoder input alphabet.

/** Model hyperparameters. */
struct Seq2SeqConfig
{
    std::size_t hidden = 32;       //!< GRU hidden size (both directions).
    std::size_t attention = 32;    //!< Attention scoring dimensionality.
    std::uint64_t seed = 0x5e25e9ULL;  //!< Weight-init seed.
    Adam::Config adam{};
    /** Output length cap as percent of input length (runaway guard). */
    std::size_t max_output_percent = 160;
};

/** One training example: a clean strand and one noisy read of it. */
struct StrandPair
{
    Strand clean;
    Strand noisy;
};

/** GRU+attention sequence-to-sequence channel model. */
class Seq2Seq
{
  public:
    explicit Seq2Seq(const Seq2SeqConfig &config);

    /**
     * Forward pass only: mean per-token negative log-likelihood of
     * noisy given clean.
     */
    double loss(const Strand &clean, const Strand &noisy) const;

    /**
     * Forward+backward on one pair, accumulating parameter gradients
     * scaled by @p grad_scale.  Returns the mean per-token NLL.
     */
    double accumulate(const Strand &clean, const Strand &noisy,
                      double grad_scale);

    /** Train on a batch of pairs (one Adam step); returns mean loss. */
    double trainBatch(const std::vector<StrandPair> &pairs,
                      const std::vector<std::size_t> &indices);

    /**
     * Train for @p epochs over the dataset with the given batch size,
     * shuffling each epoch.  The learning rate is multiplied by
     * @p lr_decay after every epoch.  Returns the final epoch's mean
     * loss.
     */
    double train(const std::vector<StrandPair> &pairs, std::size_t epochs,
                 std::size_t batch_size, Rng &rng, double lr_decay = 1.0);

    /**
     * Calibrate the sampling temperature so that the mean per-base edit
     * rate of sampled reads matches @p target_rate (e.g. the training
     * data's measured rate).  Returns the chosen temperature.
     */
    double calibrateTemperature(const std::vector<Strand> &probe_cleans,
                                double target_rate, Rng &rng,
                                std::size_t samples_per_clean = 2);

    /** Mean loss over a dataset (no gradient). */
    double evaluate(const std::vector<StrandPair> &pairs) const;

    /**
     * Sample one noisy read: ancestral sampling from the predicted
     * distribution, stopping at EOS or the length cap.
     */
    Strand sample(const Strand &clean, Rng &rng,
                  double temperature = 1.0) const;

    /** All trainable parameters (for tests and persistence). */
    std::vector<Param *> allParams();

    const Seq2SeqConfig &config() const { return cfg; }

    /** Serialise parameters to / from a binary file. */
    bool save(const std::string &path) const;
    bool load(const std::string &path);

  private:
    struct Forward; // full per-sequence activation record

    /** Run the encoder+decoder with teacher forcing; fill fwd. */
    double runForward(const Strand &clean,
                      const std::vector<std::size_t> &targets,
                      Forward &fwd) const;

    void runBackward(const Forward &fwd, double grad_scale);

    /** Encode a strand into annotations; fill encoder caches. */
    void encode(const Strand &clean, Forward &fwd) const;

    Seq2SeqConfig cfg;
    GruCell enc_fwd;
    GruCell enc_bwd;
    GruCell dec;
    Attention attn;
    Param w_init; //!< [H x 2H] initial-state projection.
    Param b_init; //!< [H x 1]
    Param w_out;  //!< [V x (H + 2H)] output projection.
    Param b_out;  //!< [V x 1]
    Adam opt;
};

} // namespace nn
} // namespace dnastore

