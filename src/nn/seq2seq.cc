#include "nn/seq2seq.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "dna/base.hh"
#include "dna/distance.hh"

namespace dnastore
{
namespace nn
{

namespace
{

std::vector<std::size_t>
tokenise(const Strand &s)
{
    std::vector<std::size_t> tokens;
    tokens.reserve(s.size() + 1);
    for (char c : s) {
        const std::uint8_t code = charToCode(c);
        if (code == 0xff)
            throw std::invalid_argument("Seq2Seq: non-ACGT character");
        tokens.push_back(code);
    }
    return tokens;
}

} // namespace

/** Activation record for one (clean, noisy) training pair. */
struct Seq2Seq::Forward
{
    // Encoder.
    std::vector<Vec> enc_inputs;          //!< One-hot clean bases.
    std::vector<GruCache> fwd_caches;
    std::vector<GruCache> bwd_caches;
    std::vector<Vec> annotations;         //!< [2H] per position.
    std::vector<Vec> attn_pre;            //!< U_a h_i per position.
    Vec ann_mean;
    Vec s0_pre;                           //!< W_init * mean + b (pre-tanh).
    Vec s0;

    // Decoder (teacher forcing).
    std::vector<std::size_t> targets;     //!< Output tokens incl. EOS.
    std::vector<Vec> dec_inputs;          //!< One-hot(dec vocab) per step.
    std::vector<AttentionCache> attn_caches;
    std::vector<GruCache> dec_caches;
    std::vector<Vec> contexts;            //!< [2H] per step.
    std::vector<Vec> states;              //!< s_1..s_T, [H].
    std::vector<Vec> probs;               //!< Softmax outputs per step.
};

Seq2Seq::Seq2Seq(const Seq2SeqConfig &config)
    : cfg(config),
      enc_fwd(kInVocab, cfg.hidden, "enc_fwd"),
      enc_bwd(kInVocab, cfg.hidden, "enc_bwd"),
      dec(kDecVocab + 2 * cfg.hidden, cfg.hidden, "dec"),
      attn(cfg.hidden, 2 * cfg.hidden, cfg.attention, "attn"),
      w_init(cfg.hidden, 2 * cfg.hidden, "w_init"),
      b_init(cfg.hidden, 1, "b_init"),
      w_out(kOutVocab, 3 * cfg.hidden, "w_out"),
      b_out(kOutVocab, 1, "b_out"),
      opt(cfg.adam)
{
    Rng rng(cfg.seed);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(cfg.hidden));
    enc_fwd.init(rng, scale);
    enc_bwd.init(rng, scale);
    dec.init(rng, scale);
    attn.init(rng, scale);
    w_init.init(rng, scale);
    b_init.init(rng, scale);
    w_out.init(rng, scale);
    b_out.init(rng, scale);

    enc_fwd.registerParams(opt);
    enc_bwd.registerParams(opt);
    dec.registerParams(opt);
    attn.registerParams(opt);
    opt.add(&w_init);
    opt.add(&b_init);
    opt.add(&w_out);
    opt.add(&b_out);
}

std::vector<Param *>
Seq2Seq::allParams()
{
    std::vector<Param *> out;
    for (Param *p : enc_fwd.params())
        out.push_back(p);
    for (Param *p : enc_bwd.params())
        out.push_back(p);
    for (Param *p : dec.params())
        out.push_back(p);
    for (Param *p : attn.params())
        out.push_back(p);
    out.push_back(&w_init);
    out.push_back(&b_init);
    out.push_back(&w_out);
    out.push_back(&b_out);
    return out;
}

void
Seq2Seq::encode(const Strand &clean, Forward &fwd) const
{
    const auto tokens = tokenise(clean);
    const std::size_t len = tokens.size();
    if (len == 0)
        throw std::invalid_argument("Seq2Seq: empty clean strand");
    const std::size_t h_size = cfg.hidden;

    fwd.enc_inputs.assign(len, Vec(kInVocab, 0.0f));
    for (std::size_t i = 0; i < len; ++i)
        fwd.enc_inputs[i][tokens[i]] = 1.0f;

    fwd.fwd_caches.resize(len);
    fwd.bwd_caches.resize(len);
    fwd.annotations.assign(len, Vec(2 * h_size, 0.0f));

    Vec h(h_size, 0.0f);
    for (std::size_t i = 0; i < len; ++i) {
        h = enc_fwd.forward(fwd.enc_inputs[i], h, fwd.fwd_caches[i]);
        std::copy(h.begin(), h.end(), fwd.annotations[i].begin());
    }
    h.assign(h_size, 0.0f);
    for (std::size_t r = 0; r < len; ++r) {
        const std::size_t i = len - 1 - r;
        h = enc_bwd.forward(fwd.enc_inputs[i], h, fwd.bwd_caches[i]);
        std::copy(h.begin(), h.end(),
                  fwd.annotations[i].begin() + static_cast<long>(h_size));
    }

    fwd.attn_pre = attn.precompute(fwd.annotations);

    fwd.ann_mean.assign(2 * h_size, 0.0f);
    for (const Vec &ann : fwd.annotations)
        axpy(fwd.ann_mean, ann);
    for (float &v : fwd.ann_mean)
        v /= static_cast<float>(len);

    matVec(w_init.value, fwd.ann_mean, fwd.s0_pre);
    fwd.s0.resize(h_size);
    for (std::size_t i = 0; i < h_size; ++i)
        fwd.s0[i] = std::tanh(fwd.s0_pre[i] + b_init.value(i, 0));
}

double
Seq2Seq::runForward(const Strand &clean,
                    const std::vector<std::size_t> &targets,
                    Forward &fwd) const
{
    encode(clean, fwd);
    fwd.targets = targets;

    const std::size_t steps = targets.size();
    const std::size_t h_size = cfg.hidden;
    fwd.dec_inputs.resize(steps);
    fwd.attn_caches.resize(steps);
    fwd.dec_caches.resize(steps);
    fwd.contexts.resize(steps);
    fwd.states.resize(steps);
    fwd.probs.resize(steps);

    double nll = 0.0;
    const Vec *state = &fwd.s0;
    for (std::size_t t = 0; t < steps; ++t) {
        fwd.contexts[t] = attn.forward(*state, fwd.annotations, fwd.attn_pre,
                                       fwd.attn_caches[t]);

        Vec &x = fwd.dec_inputs[t];
        x.assign(kDecVocab + 2 * h_size, 0.0f);
        const std::size_t in_token = t == 0 ? kTokenBos : targets[t - 1];
        x[in_token] = 1.0f;
        std::copy(fwd.contexts[t].begin(), fwd.contexts[t].end(),
                  x.begin() + static_cast<long>(kDecVocab));

        fwd.states[t] = dec.forward(x, *state, fwd.dec_caches[t]);
        state = &fwd.states[t];

        // Output projection over [s_t ; context_t].
        Vec out_in(3 * h_size);
        std::copy(fwd.states[t].begin(), fwd.states[t].end(),
                  out_in.begin());
        std::copy(fwd.contexts[t].begin(), fwd.contexts[t].end(),
                  out_in.begin() + static_cast<long>(h_size));
        Vec logits;
        matVec(w_out.value, out_in, logits);
        for (std::size_t v = 0; v < kOutVocab; ++v)
            logits[v] += b_out.value(v, 0);
        softmaxInPlace(logits);
        fwd.probs[t] = logits;
        const float p = std::max(fwd.probs[t][targets[t]], 1e-12f);
        nll -= std::log(static_cast<double>(p));
    }
    return nll / static_cast<double>(steps);
}

void
Seq2Seq::runBackward(const Forward &fwd, double grad_scale)
{
    const std::size_t steps = fwd.targets.size();
    const std::size_t len = fwd.annotations.size();
    const std::size_t h_size = cfg.hidden;
    const float scale =
        static_cast<float>(grad_scale / static_cast<double>(steps));

    std::vector<Vec> dstates(steps + 1, Vec(h_size, 0.0f)); // s_0..s_T
    std::vector<Vec> dann(len, Vec(2 * h_size, 0.0f));

    for (std::size_t t = steps; t-- > 0;) {
        // Output layer backward.
        Vec dlogits(kOutVocab);
        for (std::size_t v = 0; v < kOutVocab; ++v) {
            dlogits[v] = scale * (fwd.probs[t][v] -
                                  (v == fwd.targets[t] ? 1.0f : 0.0f));
        }
        Vec out_in(3 * h_size);
        std::copy(fwd.states[t].begin(), fwd.states[t].end(),
                  out_in.begin());
        std::copy(fwd.contexts[t].begin(), fwd.contexts[t].end(),
                  out_in.begin() + static_cast<long>(h_size));
        addOuter(w_out.grad, dlogits, out_in);
        for (std::size_t v = 0; v < kOutVocab; ++v)
            b_out.grad(v, 0) += dlogits[v];
        Vec dout_in(3 * h_size, 0.0f);
        matTVecAdd(w_out.value, dlogits, dout_in);

        Vec dcontext(2 * h_size, 0.0f);
        for (std::size_t i = 0; i < h_size; ++i) {
            dstates[t + 1][i] += dout_in[i];
            dcontext[i] += dout_in[h_size + i];
            dcontext[h_size + i] += dout_in[2 * h_size + i];
        }

        // Decoder GRU backward (x = [token one-hot ; context]).
        Vec dx(kDecVocab + 2 * h_size, 0.0f);
        dec.backward(fwd.dec_caches[t], dstates[t + 1], dx, dstates[t]);
        for (std::size_t i = 0; i < 2 * h_size; ++i)
            dcontext[i] += dx[kDecVocab + i];

        // Attention backward feeds the previous state and annotations.
        attn.backward(fwd.attn_caches[t], fwd.annotations, dcontext,
                      dstates[t], dann);
    }

    // Initial state s_0 = tanh(W_init * mean(ann) + b_init).
    Vec da0(h_size);
    for (std::size_t i = 0; i < h_size; ++i)
        da0[i] = dstates[0][i] * (1.0f - fwd.s0[i] * fwd.s0[i]);
    addOuter(w_init.grad, da0, fwd.ann_mean);
    for (std::size_t i = 0; i < h_size; ++i)
        b_init.grad(i, 0) += da0[i];
    Vec dmean(2 * h_size, 0.0f);
    matTVecAdd(w_init.value, da0, dmean);
    const float inv_len = 1.0f / static_cast<float>(len);
    for (std::size_t i = 0; i < len; ++i)
        axpy(dann[i], dmean, inv_len);

    // Encoder backward: forward chain (top half of each annotation).
    Vec scratch_dx(kInVocab, 0.0f);
    Vec carry(h_size, 0.0f);
    for (std::size_t i = len; i-- > 0;) {
        Vec dh(h_size);
        for (std::size_t k = 0; k < h_size; ++k)
            dh[k] = dann[i][k] + carry[k];
        Vec dh_prev(h_size, 0.0f);
        std::fill(scratch_dx.begin(), scratch_dx.end(), 0.0f);
        enc_fwd.backward(fwd.fwd_caches[i], dh, scratch_dx, dh_prev);
        carry = std::move(dh_prev);
    }

    // Backward chain (bottom half); the chain runs right-to-left, so its
    // gradient propagates left-to-right.
    carry.assign(h_size, 0.0f);
    for (std::size_t i = 0; i < len; ++i) {
        Vec dh(h_size);
        for (std::size_t k = 0; k < h_size; ++k)
            dh[k] = dann[i][h_size + k] + carry[k];
        Vec dh_prev(h_size, 0.0f);
        std::fill(scratch_dx.begin(), scratch_dx.end(), 0.0f);
        enc_bwd.backward(fwd.bwd_caches[i], dh, scratch_dx, dh_prev);
        carry = std::move(dh_prev);
    }
}

double
Seq2Seq::loss(const Strand &clean, const Strand &noisy) const
{
    auto targets = tokenise(noisy);
    targets.push_back(kTokenEos);
    Forward fwd;
    return runForward(clean, targets, fwd);
}

double
Seq2Seq::accumulate(const Strand &clean, const Strand &noisy,
                    double grad_scale)
{
    auto targets = tokenise(noisy);
    targets.push_back(kTokenEos);
    Forward fwd;
    const double nll = runForward(clean, targets, fwd);
    runBackward(fwd, grad_scale);
    return nll;
}

double
Seq2Seq::trainBatch(const std::vector<StrandPair> &pairs,
                    const std::vector<std::size_t> &indices)
{
    if (indices.empty())
        return 0.0;
    const double grad_scale = 1.0 / static_cast<double>(indices.size());
    double total = 0.0;
    for (std::size_t idx : indices) {
        const StrandPair &pair = pairs.at(idx);
        total += accumulate(pair.clean, pair.noisy, grad_scale);
    }
    opt.step();
    return total / static_cast<double>(indices.size());
}

double
Seq2Seq::train(const std::vector<StrandPair> &pairs, std::size_t epochs,
               std::size_t batch_size, Rng &rng, double lr_decay)
{
    if (pairs.empty() || batch_size == 0)
        return 0.0;
    double epoch_loss = 0.0;
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        if (epoch > 0 && lr_decay != 1.0) {
            opt.setLearningRate(
                opt.config().lr * static_cast<float>(lr_decay));
        }
        rng.shuffle(order);
        epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t lo = 0; lo < order.size(); lo += batch_size) {
            const std::size_t hi = std::min(order.size(), lo + batch_size);
            std::vector<std::size_t> batch(order.begin() + static_cast<long>(lo),
                                           order.begin() + static_cast<long>(hi));
            epoch_loss += trainBatch(pairs, batch);
            ++batches;
        }
        epoch_loss /= static_cast<double>(batches);
    }
    return epoch_loss;
}

double
Seq2Seq::evaluate(const std::vector<StrandPair> &pairs) const
{
    if (pairs.empty())
        return 0.0;
    double total = 0.0;
    for (const StrandPair &pair : pairs)
        total += loss(pair.clean, pair.noisy);
    return total / static_cast<double>(pairs.size());
}

double
Seq2Seq::calibrateTemperature(const std::vector<Strand> &probe_cleans,
                              double target_rate, Rng &rng,
                              std::size_t samples_per_clean)
{
    if (probe_cleans.empty() || target_rate <= 0.0)
        return 1.0;
    auto sampled_rate = [&](double temperature) {
        double total = 0.0, positions = 0.0;
        for (const Strand &clean : probe_cleans) {
            for (std::size_t s = 0; s < samples_per_clean; ++s) {
                const Strand read = sample(clean, rng, temperature);
                total += static_cast<double>(levenshtein(clean, read));
                positions += static_cast<double>(clean.size());
            }
        }
        return positions > 0 ? total / positions : 0.0;
    };
    // The sampled error rate grows monotonically with temperature;
    // bisect on log-temperature.
    double lo = 0.3, hi = 1.6;
    for (int iter = 0; iter < 6; ++iter) {
        const double mid = std::sqrt(lo * hi);
        if (sampled_rate(mid) > target_rate)
            hi = mid;
        else
            lo = mid;
    }
    return std::sqrt(lo * hi);
}

Strand
Seq2Seq::sample(const Strand &clean, Rng &rng, double temperature) const
{
    Forward fwd;
    encode(clean, fwd);
    const std::size_t h_size = cfg.hidden;
    const std::size_t max_len =
        clean.size() * cfg.max_output_percent / 100 + 4;

    Strand out;
    Vec state = fwd.s0;
    std::size_t prev_token = kTokenBos;
    AttentionCache attn_cache;
    GruCache dec_cache;
    while (out.size() < max_len) {
        const Vec context = attn.forward(state, fwd.annotations,
                                         fwd.attn_pre, attn_cache);
        Vec x(kDecVocab + 2 * h_size, 0.0f);
        x[prev_token] = 1.0f;
        std::copy(context.begin(), context.end(),
                  x.begin() + static_cast<long>(kDecVocab));
        state = dec.forward(x, state, dec_cache);

        Vec out_in(3 * h_size);
        std::copy(state.begin(), state.end(), out_in.begin());
        std::copy(context.begin(), context.end(),
                  out_in.begin() + static_cast<long>(h_size));
        Vec logits;
        matVec(w_out.value, out_in, logits);
        for (std::size_t v = 0; v < kOutVocab; ++v) {
            logits[v] = (logits[v] + b_out.value(v, 0)) /
                static_cast<float>(temperature);
        }
        softmaxInPlace(logits);

        std::vector<double> weights(logits.begin(), logits.end());
        const std::size_t token = rng.weightedIndex(weights);
        if (token == kTokenEos)
            break;
        out.push_back(baseToChar(static_cast<std::uint8_t>(token)));
        prev_token = token;
    }
    return out;
}

bool
Seq2Seq::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    auto *self = const_cast<Seq2Seq *>(this);
    for (Param *p : self->allParams()) {
        const auto &raw = p->value.raw();
        out.write(reinterpret_cast<const char *>(raw.data()),
                  static_cast<std::streamsize>(raw.size() * sizeof(float)));
    }
    return static_cast<bool>(out);
}

bool
Seq2Seq::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    for (Param *p : allParams()) {
        auto &raw = p->value.raw();
        in.read(reinterpret_cast<char *>(raw.data()),
                static_cast<std::streamsize>(raw.size() * sizeof(float)));
        if (!in)
            return false;
    }
    return true;
}

} // namespace nn
} // namespace dnastore
