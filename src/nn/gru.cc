#include "nn/gru.hh"

namespace dnastore
{
namespace nn
{

GruCell::GruCell(std::size_t in_size, std::size_t hid_size,
                 const std::string &name)
    : input_size(in_size), hidden_size(hid_size),
      wz(hid_size, in_size, name + ".wz"),
      wr(hid_size, in_size, name + ".wr"),
      wn(hid_size, in_size, name + ".wn"),
      uz(hid_size, hid_size, name + ".uz"),
      ur(hid_size, hid_size, name + ".ur"),
      un(hid_size, hid_size, name + ".un"),
      bz(hid_size, 1, name + ".bz"),
      br(hid_size, 1, name + ".br"),
      bn(hid_size, 1, name + ".bn")
{
}

void
GruCell::init(Rng &rng, float scale)
{
    for (Param *p : params())
        p->init(rng, scale);
}

void
GruCell::registerParams(Adam &opt)
{
    for (Param *p : params())
        opt.add(p);
}

std::vector<Param *>
GruCell::params()
{
    return {&wz, &wr, &wn, &uz, &ur, &un, &bz, &br, &bn};
}

Vec
GruCell::forward(const Vec &x, const Vec &h_prev, GruCache &cache) const
{
    const std::size_t h_size = hidden_size;
    cache.x = x;
    cache.h_prev = h_prev;

    Vec az, ar, an_x, tmp;
    matVec(wz.value, x, az);
    matVec(uz.value, h_prev, tmp);
    axpy(az, tmp);
    matVec(wr.value, x, ar);
    matVec(ur.value, h_prev, tmp);
    axpy(ar, tmp);
    matVec(wn.value, x, an_x);
    matVec(un.value, h_prev, cache.un_h);

    cache.z.resize(h_size);
    cache.r.resize(h_size);
    cache.n.resize(h_size);
    Vec h(h_size);
    for (std::size_t i = 0; i < h_size; ++i) {
        cache.z[i] = sigmoidf(az[i] + bz.value(i, 0));
        cache.r[i] = sigmoidf(ar[i] + br.value(i, 0));
        const float a_n =
            an_x[i] + cache.r[i] * cache.un_h[i] + bn.value(i, 0);
        cache.n[i] = std::tanh(a_n);
        h[i] = (1.0f - cache.z[i]) * cache.n[i] + cache.z[i] * h_prev[i];
    }
    return h;
}

void
GruCell::backward(const GruCache &cache, const Vec &dh, Vec &dx, Vec &dh_prev)
{
    const std::size_t h_size = hidden_size;
    Vec da_n(h_size), da_z(h_size), da_r(h_size), dr(h_size);

    for (std::size_t i = 0; i < h_size; ++i) {
        const float dn = dh[i] * (1.0f - cache.z[i]);
        const float dz = dh[i] * (cache.h_prev[i] - cache.n[i]);
        dh_prev[i] += dh[i] * cache.z[i];
        da_n[i] = dn * (1.0f - cache.n[i] * cache.n[i]);
        da_z[i] = dz * cache.z[i] * (1.0f - cache.z[i]);
        dr[i] = da_n[i] * cache.un_h[i];
        da_r[i] = dr[i] * cache.r[i] * (1.0f - cache.r[i]);
    }

    // n-gate parameters: the hidden path is gated by r.
    Vec da_n_gated(h_size);
    for (std::size_t i = 0; i < h_size; ++i)
        da_n_gated[i] = da_n[i] * cache.r[i];

    addOuter(wn.grad, da_n, cache.x);
    addOuter(un.grad, da_n_gated, cache.h_prev);
    addOuter(wz.grad, da_z, cache.x);
    addOuter(uz.grad, da_z, cache.h_prev);
    addOuter(wr.grad, da_r, cache.x);
    addOuter(ur.grad, da_r, cache.h_prev);
    for (std::size_t i = 0; i < h_size; ++i) {
        bn.grad(i, 0) += da_n[i];
        bz.grad(i, 0) += da_z[i];
        br.grad(i, 0) += da_r[i];
    }

    matTVecAdd(wn.value, da_n, dx);
    matTVecAdd(wz.value, da_z, dx);
    matTVecAdd(wr.value, da_r, dx);
    matTVecAdd(un.value, da_n_gated, dh_prev);
    matTVecAdd(uz.value, da_z, dh_prev);
    matTVecAdd(ur.value, da_r, dh_prev);
}

} // namespace nn
} // namespace dnastore
