/**
 * @file
 * Bahdanau (additive) attention with manual backpropagation (paper
 * Section V-B, Figure 4).  For each decoder step, encoder annotations
 * are scored against the previous decoder state and a weighted average
 * is passed on as the context vector:
 *
 *   e_i   = v^T tanh(W_a s_{t-1} + U_a h_i)
 *   alpha = softmax(e)
 *   c_t   = sum_i alpha_i h_i
 */

#pragma once

#include <vector>

#include "nn/param.hh"

namespace dnastore
{
namespace nn
{

/** Per-step cache for the backward pass. */
struct AttentionCache
{
    Vec s_prev;
    Vec alpha;
    std::vector<Vec> t; //!< tanh(q + pre_i) per annotation.
};

/**
 * Additive attention layer.  Annotation projections (U_a h_i) depend
 * only on the encoder output, so they are computed once per sequence
 * via precompute() and shared by all decoder steps.
 */
class Attention
{
  public:
    /**
     * @param state_size Decoder hidden size (s_{t-1}).
     * @param ann_size   Annotation size (2H for a bi-GRU encoder).
     * @param attn_size  Scoring space dimensionality.
     */
    Attention(std::size_t state_size, std::size_t ann_size,
              std::size_t attn_size, const std::string &name);

    void init(Rng &rng, float scale);
    void registerParams(Adam &opt);
    std::vector<Param *> params();

    /** Precompute U_a h_i for every annotation of a sequence. */
    std::vector<Vec>
    precompute(const std::vector<Vec> &annotations) const;

    /**
     * One attention step: returns the context vector; fills @p cache.
     * @p pre must come from precompute() on the same annotations.
     */
    Vec forward(const Vec &s_prev, const std::vector<Vec> &annotations,
                const std::vector<Vec> &pre, AttentionCache &cache) const;

    /**
     * Backward: given dLoss/dcontext, accumulate into ds_prev and the
     * per-annotation gradients dann (both pre-sized).
     */
    void backward(const AttentionCache &cache,
                  const std::vector<Vec> &annotations, const Vec &dcontext,
                  Vec &ds_prev, std::vector<Vec> &dann);

  private:
    std::size_t attn_size;

  public:
    Param wa; //!< [A x state]
    Param ua; //!< [A x ann]
    Param va; //!< [A x 1]
};

} // namespace nn
} // namespace dnastore

