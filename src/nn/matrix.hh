/**
 * @file
 * Minimal dense linear algebra for the seq2seq channel model (paper
 * Section V-B).  Everything is float, row-major, and sized for hidden
 * dimensions in the tens-to-hundreds range; the training loops in
 * seq2seq.cc dominate runtime, so these kernels stay simple and let the
 * compiler vectorise.
 */

#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/random.hh"

namespace dnastore
{
namespace nn
{

using Vec = std::vector<float>;

/** Row-major dense matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    float &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float *rowPtr(std::size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    Vec &raw() { return data_; }
    const Vec &raw() const { return data_; }

    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    /** Uniform(-scale, scale) init. */
    void
    randomInit(Rng &rng, float scale)
    {
        for (float &v : data_)
            v = static_cast<float>(rng.uniform(-scale, scale));
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    Vec data_;
};

/** out = M * x  (out sized M.rows()). */
inline void
matVec(const Matrix &m, const Vec &x, Vec &out)
{
    assert(x.size() == m.cols());
    out.assign(m.rows(), 0.0f);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.rowPtr(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < m.cols(); ++c)
            acc += row[c] * x[c];
        out[r] = acc;
    }
}

/** out += M^T * x  (out sized M.cols()). */
inline void
matTVecAdd(const Matrix &m, const Vec &x, Vec &out)
{
    assert(x.size() == m.rows());
    assert(out.size() == m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.rowPtr(r);
        const float xv = x[r];
        if (xv == 0.0f)
            continue;
        for (std::size_t c = 0; c < m.cols(); ++c)
            out[c] += row[c] * xv;
    }
}

/** grad += a * b^T  (rank-1 accumulation). */
inline void
addOuter(Matrix &grad, const Vec &a, const Vec &b)
{
    assert(a.size() == grad.rows() && b.size() == grad.cols());
    for (std::size_t r = 0; r < grad.rows(); ++r) {
        float *row = grad.rowPtr(r);
        const float av = a[r];
        if (av == 0.0f)
            continue;
        for (std::size_t c = 0; c < grad.cols(); ++c)
            row[c] += av * b[c];
    }
}

/** out += x (element-wise). */
inline void
axpy(Vec &out, const Vec &x, float alpha = 1.0f)
{
    assert(out.size() == x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] += alpha * x[i];
}

inline float
sigmoidf(float v)
{
    return 1.0f / (1.0f + std::exp(-v));
}

/** Numerically stable in-place softmax. */
inline void
softmaxInPlace(Vec &v)
{
    float peak = v[0];
    for (float x : v)
        peak = std::max(peak, x);
    float total = 0.0f;
    for (float &x : v) {
        x = std::exp(x - peak);
        total += x;
    }
    for (float &x : v)
        x /= total;
}

} // namespace nn
} // namespace dnastore

