/**
 * @file
 * The DNA pool as a key-value store (paper Section II-F): a pair of PCR
 * primers is the key; all molecules tagged with that pair form the
 * value.  PCR amplification selects the molecules of one file for
 * sequencing, implementing random access in constant chemical time.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/primer.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{

/** A test tube of primer-tagged molecules from any number of files. */
class DnaPool
{
  public:
    /** Attach the key's primers to each payload strand and store them. */
    void store(const PrimerPair &key,
               const std::vector<Strand> &payload_strands);

    /**
     * Store molecules that already carry their primers (e.g. reloaded
     * from a pool file); @p key identifies the pair they were tagged
     * with so amplify() can select them.
     */
    void addTagged(const PrimerPair &key,
                   const std::vector<Strand> &tagged_molecules);

    /** Number of stored molecules (all files). */
    std::size_t size() const { return molecules.size(); }

    /** All molecules, tagged (for whole-pool sequencing). */
    const std::vector<Strand> &all() const { return molecules; }

    /** Forward primer of the pair each molecule was stored under. */
    const std::vector<Strand> &tags() const { return forward_tags; }

  private:
    std::vector<Strand> molecules;
    std::vector<Strand> forward_tags;
};

/** Knobs of the PCR random-access simulation. */
struct PcrConfig
{
    /**
     * Probability that a molecule of *another* file leaks into the
     * amplified product (off-target amplification / contamination).
     */
    double off_target_rate = 0.0;
};

/** Result of a PCR amplification. */
struct PcrProduct
{
    std::vector<Strand> molecules; //!< Tagged molecules, primers intact.
    std::size_t on_target = 0;
    std::size_t off_target = 0;
};

/**
 * Simulate PCR selection of a file: every molecule stored under @p key
 * is amplified; other molecules leak in at the configured off-target
 * rate.
 */
PcrProduct amplify(const DnaPool &pool, const PrimerPair &key, Rng &rng,
                   const PcrConfig &config = {});

} // namespace dnastore

