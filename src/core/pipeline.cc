#include "pipeline.hh"

#include <stdexcept>
#include <unordered_map>

#include "clustering/accuracy.hh"
#include "simulator/sequencing_run.hh"
#include "util/timer.hh"

namespace dnastore
{

Pipeline::Pipeline(PipelineModules modules, PipelineConfig config)
    : mods(modules), cfg(std::move(config)), rng(cfg.seed)
{
}

PipelineResult
Pipeline::run(const std::vector<std::uint8_t> &data)
{
    if (!mods.encoder || !mods.decoder || !mods.channel || !mods.clusterer ||
        !mods.reconstructor) {
        throw std::invalid_argument("Pipeline: missing module");
    }

    PipelineResult result;
    WallTimer timer;

    // Stage 1: encoding (+ ECC).
    timer.reset();
    const std::vector<Strand> encoded = mods.encoder->encode(data);
    result.latency.encoding = timer.seconds();
    result.encoded_strands = encoded.size();
    if (encoded.empty())
        return result;
    const std::size_t strand_length = encoded.front().size();

    // Stage 2: wetlab simulation (synthesis, storage, sequencing).
    timer.reset();
    const SequencingRun run =
        simulateSequencing(encoded, *mods.channel, cfg.coverage, rng);
    result.latency.simulation = timer.seconds();
    result.reads = run.reads.size();
    result.dropped_strands = run.dropped_strands;

    // Stage 3: clustering.
    timer.reset();
    const Clustering clustering = mods.clusterer->cluster(run.reads);
    result.latency.clustering = timer.seconds();
    result.clusters = clustering.numClusters();
    result.clustering_accuracy = clusteringAccuracy(clustering, run.origin);

    // Stage 4: trace reconstruction.
    timer.reset();
    std::vector<std::vector<Strand>> groups;
    std::vector<std::vector<std::uint32_t>> group_origins;
    groups.reserve(clustering.clusters.size());
    for (const auto &cluster : clustering.clusters) {
        if (cluster.size() < cfg.min_cluster_size)
            continue;
        std::vector<Strand> reads;
        std::vector<std::uint32_t> origins;
        reads.reserve(cluster.size());
        for (std::uint32_t idx : cluster) {
            reads.push_back(run.reads[idx]);
            origins.push_back(run.origin[idx]);
        }
        groups.push_back(std::move(reads));
        group_origins.push_back(std::move(origins));
    }
    const std::vector<Strand> reconstructed = reconstructAll(
        *mods.reconstructor, groups, strand_length, cfg.num_threads);
    result.latency.reconstruction = timer.seconds();

    // Ground-truth reconstruction quality: a cluster reconstructs
    // "perfectly" when its consensus equals the encoded strand that a
    // majority of its reads came from.
    std::size_t perfect = 0;
    for (std::size_t g = 0; g < reconstructed.size(); ++g) {
        std::unordered_map<std::uint32_t, std::size_t> votes;
        for (std::uint32_t origin : group_origins[g])
            ++votes[origin];
        std::uint32_t majority = group_origins[g].front();
        std::size_t best = 0;
        for (const auto &[origin, count] : votes) {
            if (count > best) {
                best = count;
                majority = origin;
            }
        }
        if (reconstructed[g] == encoded[majority])
            ++perfect;
    }
    result.perfect_reconstructions = encoded.empty()
        ? 0.0
        : static_cast<double>(perfect) /
            static_cast<double>(encoded.size());

    // Stage 5: decoding and error correction.
    timer.reset();
    result.report = mods.decoder->decode(
        reconstructed, mods.encoder->unitsForSize(data.size()));
    result.latency.decoding = timer.seconds();
    return result;
}

PipelineResult
Pipeline::runFromReads(const std::vector<Strand> &reads,
                       std::size_t strand_length, std::size_t expected_units)
{
    if (!mods.decoder || !mods.clusterer || !mods.reconstructor)
        throw std::invalid_argument("Pipeline: missing module");

    PipelineResult result;
    result.reads = reads.size();
    WallTimer timer;

    timer.reset();
    const Clustering clustering = mods.clusterer->cluster(reads);
    result.latency.clustering = timer.seconds();
    result.clusters = clustering.numClusters();

    timer.reset();
    std::vector<std::vector<Strand>> groups;
    groups.reserve(clustering.clusters.size());
    for (const auto &cluster : clustering.clusters) {
        if (cluster.size() < cfg.min_cluster_size)
            continue;
        std::vector<Strand> group;
        group.reserve(cluster.size());
        for (std::uint32_t idx : cluster)
            group.push_back(reads[idx]);
        groups.push_back(std::move(group));
    }
    const std::vector<Strand> reconstructed = reconstructAll(
        *mods.reconstructor, groups, strand_length, cfg.num_threads);
    result.latency.reconstruction = timer.seconds();

    timer.reset();
    result.report = mods.decoder->decode(reconstructed, expected_units);
    result.latency.decoding = timer.seconds();
    return result;
}

} // namespace dnastore
