#include "core/pipeline.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "clustering/accuracy.hh"
#include "obs/cpu_time.hh"
#include "obs/span.hh"
#include "obs/stage_tag.hh"
#include "simulator/sequencing_run.hh"
#include "util/assert.hh"
#include "util/timer.hh"

namespace dnastore
{

namespace
{

/**
 * Publish one finished run's tallies into the metrics registry so the
 * run report and any scraping harness see them under stable names
 * (scheme `module.noun_unit`, docs/OBSERVABILITY.md).
 */
void
publishRunMetrics(const PipelineResult &result)
{
    obs::MetricsRegistry &reg = obs::metrics();
    reg.counter("pipeline.runs_total").add();
    reg.counter("pipeline.encoded_strands_total")
        .add(result.encoded_strands);
    reg.counter("pipeline.reads_total").add(result.reads);
    reg.counter("pipeline.clusters_total").add(result.clusters);
    reg.counter("pipeline.dropped_strands_total")
        .add(result.dropped_strands);
    reg.counter("pipeline.dropped_clusters_total")
        .add(result.dropped_clusters);
    reg.counter("pipeline.malformed_reads_total")
        .add(result.malformed_reads);
    reg.counter("pipeline.errors_total").add(result.errors.size());
    reg.counter("pipeline.recovery_attempts_total")
        .add(result.recovery_attempts.size());
    if (result.recovered)
        reg.counter("pipeline.recovered_runs_total").add();
    if (!result.report.ok)
        reg.counter("pipeline.decode_failures_total").add();

    const FaultCounters &faults = result.faults;
    reg.counter("fault.dropped_strands_total").add(faults.dropped_strands);
    reg.counter("fault.truncated_reads_total").add(faults.truncated_reads);
    reg.counter("fault.elongated_reads_total").add(faults.elongated_reads);
    reg.counter("fault.corrupted_indices_total")
        .add(faults.corrupted_indices);
    reg.counter("fault.duplicate_conflicts_total")
        .add(faults.duplicate_conflicts);
    reg.counter("fault.garbage_reads_total").add(faults.garbage_reads);
    reg.counter("fault.emptied_clusters_total")
        .add(faults.emptied_clusters);
    reg.counter("fault.merged_clusters_total").add(faults.merged_clusters);
}

void
addError(PipelineResult &result, const char *stage, std::string message)
{
    result.errors.push_back(PipelineError{stage, std::move(message)});
}

/** Worst-of combiner: a stage already failed stays failed. */
void
degradeTo(StageStatus &status, StageStatus floor)
{
    if (static_cast<std::uint8_t>(floor) >
        static_cast<std::uint8_t>(status)) {
        status = floor;
    }
}

/**
 * Reconstruct the selected groups, salvaging what it can: a module
 * exception fails only the offending cluster, not the stage.  Returns
 * the consensus strands plus, aligned with them, the index of the
 * source group within @p groups.
 */
std::pair<std::vector<Strand>, std::vector<std::size_t>>
reconstructSalvaging(const Reconstructor &algo,
                     const std::vector<std::vector<Strand>> &groups,
                     const std::vector<std::size_t> &selection,
                     std::size_t strand_length, std::size_t num_threads,
                     PipelineResult &result)
{
    std::vector<std::vector<Strand>> selected;
    selected.reserve(selection.size());
    for (std::size_t g : selection)
        selected.push_back(groups[g]);

    if (num_threads > 1) {
        try {
            auto consensus = reconstructAll(algo, selected, strand_length,
                                            num_threads);
            return {std::move(consensus), selection};
        } catch (const std::exception &error) {
            addError(result, "reconstruction",
                     std::string("parallel reconstruction failed, retrying "
                                 "sequentially: ") +
                         error.what());
            degradeTo(result.status.reconstruction, StageStatus::Degraded);
        } catch (...) {
            addError(result, "reconstruction",
                     "parallel reconstruction failed with an unknown "
                     "exception, retrying sequentially");
            degradeTo(result.status.reconstruction, StageStatus::Degraded);
        }
    }

    std::vector<Strand> consensus;
    std::vector<std::size_t> kept;
    consensus.reserve(selected.size());
    kept.reserve(selected.size());
    std::size_t failures = 0;
    std::string first_failure;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        obs::Span cluster_span("reconstruction/cluster");
        try {
            consensus.push_back(
                algo.reconstruct(selected[i], strand_length));
            kept.push_back(selection[i]);
        } catch (const std::exception &error) {
            ++failures;
            if (first_failure.empty())
                first_failure = error.what();
        } catch (...) {
            ++failures;
            if (first_failure.empty())
                first_failure = "unknown exception";
        }
    }
    if (failures > 0) {
        addError(result, "reconstruction",
                 std::to_string(failures) + " cluster(s) failed to "
                 "reconstruct (first: " + first_failure + ")");
        degradeTo(result.status.reconstruction,
                  consensus.empty() ? StageStatus::Failed
                                    : StageStatus::Degraded);
    }
    std::uint64_t reads_seen = 0;
    for (const auto &group : selected)
        reads_seen += group.size();
    obs::metrics()
        .counter("reconstruction.clusters_total")
        .add(selected.size());
    obs::metrics().counter("reconstruction.reads_total").add(reads_seen);
    return {std::move(consensus), std::move(kept)};
}

/** Decode with the stage-boundary catch; a throw reports ok = false. */
DecodeReport
decodeGuarded(const FileDecoder &decoder, const std::vector<Strand> &strands,
              std::size_t expected_units, PipelineResult &result)
{
    try {
        return decoder.decode(strands, expected_units);
    } catch (const std::exception &error) {
        addError(result, "decoding", error.what());
    } catch (...) {
        addError(result, "decoding", "unknown exception");
    }
    degradeTo(result.status.decoding, StageStatus::Failed);
    return DecodeReport{};
}

} // namespace

const char *
stageStatusName(StageStatus status)
{
    switch (status) {
      case StageStatus::Skipped: return "skipped";
      case StageStatus::Ok: return "ok";
      case StageStatus::Degraded: return "degraded";
      case StageStatus::Failed: return "failed";
    }
    return "unknown";
}

bool
StageStatusSet::anyFailed() const
{
    return encoding == StageStatus::Failed ||
        simulation == StageStatus::Failed ||
        clustering == StageStatus::Failed ||
        reconstruction == StageStatus::Failed ||
        decoding == StageStatus::Failed;
}

bool
StageStatusSet::anyDegraded() const
{
    const auto bad = [](StageStatus s) {
        return s == StageStatus::Degraded || s == StageStatus::Failed;
    };
    return bad(encoding) || bad(simulation) || bad(clustering) ||
        bad(reconstruction) || bad(decoding);
}

Pipeline::Pipeline(PipelineModules modules, PipelineConfig config)
    : mods(modules), cfg(std::move(config)), rng(cfg.seed)
{
}

PipelineResult
Pipeline::run(const std::vector<std::uint8_t> &data)
{
    PipelineResult result;
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    const obs::locktime::ContentionSnapshot contention_before =
        obs::locktime::contentionSnapshot();
    const obs::alloc::AllocSnapshot alloc_before = obs::alloc::allocSnapshot();
    {
        obs::Span run_span("pipeline/run");
        try {
            runImpl(data, result);
        } catch (const std::exception &error) {
            addError(result, "pipeline", error.what());
        } catch (...) {
            addError(result, "pipeline", "unknown exception");
        }
    }
    if (mods.fault_injector)
        result.faults = mods.fault_injector->counters();
    publishRunMetrics(result);
    result.metrics = obs::metrics().snapshot().delta(before);
    result.contention =
        obs::locktime::contentionSnapshot().delta(contention_before);
    result.alloc = obs::alloc::allocSnapshot().delta(alloc_before);
    return result;
}

void
Pipeline::runImpl(const std::vector<std::uint8_t> &data,
                  PipelineResult &result)
{
    bool missing = false;
    for (const auto &[module, present] :
         {std::pair{"encoder", mods.encoder != nullptr},
          {"decoder", mods.decoder != nullptr},
          {"channel", mods.channel != nullptr},
          {"clusterer", mods.clusterer != nullptr},
          {"reconstructor", mods.reconstructor != nullptr}}) {
        if (!present) {
            addError(result, "pipeline",
                     std::string("missing module: ") + module);
            missing = true;
        }
    }
    if (missing) {
        result.status.encoding = StageStatus::Failed;
        return;
    }

    WallTimer timer;
    obs::ThreadCpuTimer cpu_timer;

    // Stage 1: encoding (+ ECC).
    timer.reset();
    cpu_timer.reset();
    std::vector<Strand> encoded;
    try {
        obs::Span span("pipeline/encoding");
        obs::StageTagScope tag("encoding");
        encoded = mods.encoder->encode(data);
        result.status.encoding = StageStatus::Ok;
    } catch (const std::exception &error) {
        addError(result, "encoding", error.what());
        result.status.encoding = StageStatus::Failed;
        return; // nothing was synthesised; downstream stages are moot
    } catch (...) {
        addError(result, "encoding", "unknown exception");
        result.status.encoding = StageStatus::Failed;
        return;
    }
    result.latency.encoding = timer.seconds();
    result.cpu.encoding = cpu_timer.seconds();
    result.encoded_strands = encoded.size();
    if (encoded.empty())
        return;
    const std::size_t strand_length = encoded.front().size();

    // Synthesis faults: some strands never make it into the pool.
    if (mods.fault_injector) {
        mods.fault_injector->injectStrands(encoded);
        if (mods.fault_injector->counters().dropped_strands > 0)
            degradeTo(result.status.encoding, StageStatus::Degraded);
    }

    // Stage 2: wetlab simulation (synthesis, storage, sequencing).
    timer.reset();
    cpu_timer.reset();
    SequencingRun run;
    try {
        obs::Span span("pipeline/simulation");
        obs::StageTagScope tag("simulation");
        run = simulateSequencing(encoded, *mods.channel, cfg.coverage, rng);
        result.status.simulation = StageStatus::Ok;
    } catch (const std::exception &error) {
        addError(result, "simulation", error.what());
        result.status.simulation = StageStatus::Failed;
        // Continue with zero reads: decode will fail, but gracefully.
    } catch (...) {
        addError(result, "simulation", "unknown exception");
        result.status.simulation = StageStatus::Failed;
    }
    result.latency.simulation = timer.seconds();
    result.cpu.simulation = cpu_timer.seconds();
    result.dropped_strands = run.dropped_strands;

    // Sequencing faults: truncation, elongation, corrupt indices, junk.
    if (mods.fault_injector) {
        const std::size_t before = mods.fault_injector->counters().total();
        mods.fault_injector->injectReads(run.reads, &run.origin);
        if (mods.fault_injector->counters().total() > before)
            degradeTo(result.status.simulation, StageStatus::Degraded);
    }
    result.reads = run.reads.size();

    retrieve(run.reads, &run.origin, &encoded, strand_length,
             mods.encoder->unitsForSize(data.size()), result);
}

PipelineResult
Pipeline::runFromReads(const std::vector<Strand> &reads,
                       std::size_t strand_length, std::size_t expected_units)
{
    PipelineResult result;
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    const obs::locktime::ContentionSnapshot contention_before =
        obs::locktime::contentionSnapshot();
    const obs::alloc::AllocSnapshot alloc_before = obs::alloc::allocSnapshot();
    obs::Span run_span("pipeline/run_from_reads");
    try {
        bool missing = false;
        for (const auto &[module, present] :
             {std::pair{"decoder", mods.decoder != nullptr},
              {"clusterer", mods.clusterer != nullptr},
              {"reconstructor", mods.reconstructor != nullptr}}) {
            if (!present) {
                addError(result, "pipeline",
                         std::string("missing module: ") + module);
                missing = true;
            }
        }
        if (missing) {
            result.status.clustering = StageStatus::Failed;
            return result;
        }

        if (mods.fault_injector &&
            mods.fault_injector->plan().anyReadFaults()) {
            std::vector<Strand> faulted = reads;
            mods.fault_injector->injectReads(faulted);
            result.reads = faulted.size();
            retrieve(faulted, nullptr, nullptr, strand_length,
                     expected_units, result);
        } else {
            result.reads = reads.size();
            retrieve(reads, nullptr, nullptr, strand_length, expected_units,
                     result);
        }
    } catch (const std::exception &error) {
        addError(result, "pipeline", error.what());
    } catch (...) {
        addError(result, "pipeline", "unknown exception");
    }
    if (mods.fault_injector)
        result.faults = mods.fault_injector->counters();
    publishRunMetrics(result);
    result.metrics = obs::metrics().snapshot().delta(before);
    result.contention =
        obs::locktime::contentionSnapshot().delta(contention_before);
    result.alloc = obs::alloc::allocSnapshot().delta(alloc_before);
    return result;
}

void
Pipeline::retrieve(const std::vector<Strand> &reads,
                   const std::vector<std::uint32_t> *origins,
                   const std::vector<Strand> *ground_truth,
                   std::size_t strand_length, std::size_t expected_units,
                   PipelineResult &result)
{
    WallTimer timer;
    obs::ThreadCpuTimer cpu_timer;

    // Pre-clustering sanitation: wetlab data (and the garbage-read
    // fault) contains empty or non-ACGT reads that the similarity
    // machinery downstream is not obliged to handle.  Filter them here
    // and account for every rejected read.
    const std::vector<Strand> *use_reads = &reads;
    const std::vector<std::uint32_t> *use_origins = origins;
    std::vector<Strand> clean_reads;
    std::vector<std::uint32_t> clean_origins;
    const bool any_bad =
        std::any_of(reads.begin(), reads.end(), [](const Strand &r) {
            return r.empty() || !strand::isValid(r);
        });
    if (any_bad) {
        clean_reads.reserve(reads.size());
        for (std::size_t i = 0; i < reads.size(); ++i) {
            if (reads[i].empty() || !strand::isValid(reads[i])) {
                ++result.malformed_reads;
                continue;
            }
            clean_reads.push_back(reads[i]);
            if (origins)
                clean_origins.push_back((*origins)[i]);
        }
        use_reads = &clean_reads;
        if (origins)
            use_origins = &clean_origins;
    }

    // Stage 3: clustering.
    timer.reset();
    cpu_timer.reset();
    Clustering clustering;
    try {
        obs::Span span("pipeline/clustering");
        obs::StageTagScope tag("clustering");
        clustering = mods.clusterer->cluster(*use_reads);
        result.status.clustering = StageStatus::Ok;
    } catch (const std::exception &error) {
        addError(result, "clustering", error.what());
        result.status.clustering = StageStatus::Failed;
    } catch (...) {
        addError(result, "clustering", "unknown exception");
        result.status.clustering = StageStatus::Failed;
    }
    if (result.status.clustering == StageStatus::Failed) {
        // Fallback: every read is its own cluster.  Costly downstream
        // but keeps the decode alive — duplicate indices are resolved
        // by the decoder's majority vote.
        clustering.clusters.resize(use_reads->size());
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(use_reads->size()); ++i) {
            clustering.clusters[i] = {i};
        }
    }
    result.latency.clustering = timer.seconds();
    result.cpu.clustering = cpu_timer.seconds();
    result.clusters = clustering.numClusters();
    if (result.malformed_reads > 0)
        degradeTo(result.status.clustering, StageStatus::Degraded);
    if (use_origins) {
        try {
            result.clustering_accuracy =
                clusteringAccuracy(clustering, *use_origins);
        } catch (const std::exception &error) {
            addError(result, "clustering",
                     std::string("accuracy evaluation failed: ") +
                         error.what());
        }
    }

    // Materialise every non-empty cluster; size filtering happens per
    // decode attempt so the recovery policy can relax it.
    timer.reset();
    cpu_timer.reset();
    std::vector<std::vector<Strand>> groups;
    std::vector<std::vector<std::uint32_t>> group_origins;
    groups.reserve(clustering.clusters.size());
    for (const auto &cluster : clustering.clusters) {
        if (cluster.empty())
            continue;
        std::vector<Strand> group;
        std::vector<std::uint32_t> group_origin;
        group.reserve(cluster.size());
        for (std::uint32_t idx : cluster) {
            group.push_back((*use_reads)[idx]);
            if (use_origins)
                group_origin.push_back((*use_origins)[idx]);
        }
        groups.push_back(std::move(group));
        group_origins.push_back(std::move(group_origin));
    }

    // Clustering faults: emptied and merged groups.
    if (mods.fault_injector &&
        mods.fault_injector->plan().anyClusterFaults()) {
        const std::size_t before = mods.fault_injector->counters().total();
        mods.fault_injector->injectClusters(groups, &group_origins);
        if (mods.fault_injector->counters().total() > before)
            degradeTo(result.status.clustering, StageStatus::Degraded);
    }

    const std::size_t min_size =
        std::max<std::size_t>(1, cfg.min_cluster_size);
    const auto select = [&](std::size_t min) {
        std::vector<std::size_t> selection;
        selection.reserve(groups.size());
        for (std::size_t g = 0; g < groups.size(); ++g)
            if (!groups[g].empty() && groups[g].size() >= min)
                selection.push_back(g);
        return selection;
    };
    const std::vector<std::size_t> selection = select(min_size);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (!groups[g].empty() && groups[g].size() < min_size)
            ++result.dropped_clusters;
    }
    if (result.dropped_clusters > 0)
        degradeTo(result.status.clustering, StageStatus::Degraded);

    // Stage 4: trace reconstruction (salvaging cluster failures).
    result.status.reconstruction = StageStatus::Ok;
    auto [reconstructed, kept] = [&] {
        obs::Span span("pipeline/reconstruction");
        obs::StageTagScope tag("reconstruction");
        return reconstructSalvaging(*mods.reconstructor, groups, selection,
                                    strand_length, cfg.num_threads, result);
    }();
    result.latency.reconstruction = timer.seconds();
    result.cpu.reconstruction = cpu_timer.seconds();

    // Ground-truth reconstruction quality: a cluster reconstructs
    // "perfectly" when its consensus equals the encoded strand that a
    // majority of its reads came from.
    if (ground_truth && use_origins && !ground_truth->empty()) {
        std::size_t perfect = 0;
        for (std::size_t i = 0; i < reconstructed.size(); ++i) {
            const auto &origin_list = group_origins[kept[i]];
            if (origin_list.empty())
                continue;
            std::unordered_map<std::uint32_t, std::size_t> votes;
            for (std::uint32_t origin : origin_list)
                ++votes[origin];
            std::uint32_t majority = origin_list.front();
            std::size_t best = 0;
            for (const auto &[origin, count] : votes) {
                if (count > best) {
                    best = count;
                    majority = origin;
                }
            }
            if (majority < ground_truth->size() &&
                reconstructed[i] == (*ground_truth)[majority])
                ++perfect;
        }
        result.perfect_reconstructions = result.encoded_strands == 0
            ? 0.0
            : static_cast<double>(perfect) /
                static_cast<double>(result.encoded_strands);
    }

    // Stage 5: decoding and error correction.
    timer.reset();
    cpu_timer.reset();
    result.status.decoding = StageStatus::Ok;
    {
        obs::Span span("pipeline/decoding");
        obs::StageTagScope tag("decoding");
        result.report = decodeGuarded(*mods.decoder, reconstructed,
                                      expected_units, result);
    }
    result.latency.decoding = timer.seconds();
    result.cpu.decoding = cpu_timer.seconds();

    // Recovery policy: bounded retries with degraded settings.
    std::size_t budget = cfg.max_decode_retries;
    const auto attempt = [&](const std::string &description,
                             const Reconstructor &algo, std::size_t min) {
        obs::Span span("pipeline/recovery_attempt");
        obs::StageTagScope stage_tag("recovery");
        WallTimer retry_timer;
        obs::ThreadCpuTimer retry_cpu_timer;
        auto [consensus, retry_kept] = reconstructSalvaging(
            algo, groups, select(min), strand_length, cfg.num_threads,
            result);
        (void)retry_kept;
        result.latency.reconstruction += retry_timer.seconds();
        result.cpu.reconstruction += retry_cpu_timer.seconds();
        retry_timer.reset();
        retry_cpu_timer.reset();
        DecodeReport report =
            decodeGuarded(*mods.decoder, consensus, expected_units, result);
        result.latency.decoding += retry_timer.seconds();
        result.cpu.decoding += retry_cpu_timer.seconds();
        result.recovery_attempts.push_back(RecoveryAttempt{
            description, report.ok, report.failed_rows});
        if (report.ok) {
            result.report = std::move(report);
            result.recovered = true;
        }
    };
    if (!result.report.ok && budget > 0 && min_size > 1) {
        attempt("min_cluster_size " + std::to_string(min_size) + " -> 1",
                *mods.reconstructor, 1);
        --budget;
    }
    if (!result.report.ok && budget > 0 && mods.fallback_reconstructor) {
        attempt("fallback reconstructor " +
                    mods.fallback_reconstructor->name(),
                *mods.fallback_reconstructor, min_size);
        --budget;
    }
    if (!result.report.ok && budget > 0 && mods.fallback_reconstructor &&
        min_size > 1) {
        attempt("fallback reconstructor " +
                    mods.fallback_reconstructor->name() +
                    " + min_cluster_size 1",
                *mods.fallback_reconstructor, 1);
        --budget;
    }

    if (!result.report.ok) {
        degradeTo(result.status.decoding, StageStatus::Failed);
    } else if (result.recovered || result.report.failed_rows > 0 ||
               result.report.malformed_strands > 0 ||
               result.report.conflicting_strands > 0) {
        degradeTo(result.status.decoding, StageStatus::Degraded);
    }

    // Stage-status taxonomy invariants: retrieval always runs the
    // clustering, reconstruction and decoding stages (fallbacks keep
    // them alive), recovery respects its budget and only a successful
    // retry may mark the run as recovered.
    DNASTORE_ASSERT(result.status.clustering != StageStatus::Skipped &&
                        result.status.reconstruction !=
                            StageStatus::Skipped &&
                        result.status.decoding != StageStatus::Skipped,
                    "retrieve() must assign every retrieval stage status");
    DNASTORE_ASSERT(result.recovery_attempts.size() <=
                        cfg.max_decode_retries,
                    "recovery policy exceeded its retry budget");
    DNASTORE_ASSERT(!result.recovered || result.report.ok,
                    "recovered runs must carry a successful report");
}

} // namespace dnastore
