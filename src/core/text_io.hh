/**
 * @file
 * Plain-text interchange formats used by the command-line tool so that
 * each pipeline stage can run standalone and be chained through files
 * (paper Section III: modules usable individually):
 *
 *  - strand list: one ACGT sequence per line;
 *  - cluster list: groups of sequences separated by blank lines.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dna/strand.hh"

namespace dnastore
{

/** Read one sequence per line; blank lines are skipped. */
std::vector<Strand> readStrandLines(std::istream &in);

/** Read a strand-list file; throws std::runtime_error if unreadable. */
std::vector<Strand> readStrandFile(const std::string &path);

/** Write one sequence per line. */
void writeStrandLines(std::ostream &out, const std::vector<Strand> &strands);

/** Write a strand-list file; throws std::runtime_error on failure. */
void writeStrandFile(const std::string &path,
                     const std::vector<Strand> &strands);

/** Read blank-line-separated clusters of sequences. */
std::vector<std::vector<Strand>> readClusterLines(std::istream &in);

/** Read a cluster file; throws std::runtime_error if unreadable. */
std::vector<std::vector<Strand>> readClusterFile(const std::string &path);

/** Write clusters separated by blank lines. */
void writeClusterLines(std::ostream &out,
                       const std::vector<std::vector<Strand>> &clusters);

/** Write a cluster file; throws std::runtime_error on failure. */
void writeClusterFile(const std::string &path,
                      const std::vector<std::vector<Strand>> &clusters);

/** Read a whole binary file; throws std::runtime_error if unreadable. */
std::vector<std::uint8_t> readBinaryFile(const std::string &path);

/** Write a whole binary file; throws std::runtime_error on failure. */
void writeBinaryFile(const std::string &path,
                     const std::vector<std::uint8_t> &data);

} // namespace dnastore

