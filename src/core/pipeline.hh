/**
 * @file
 * The end-to-end pipeline (paper Section III): Encoding -> Simulation
 * -> Clustering -> Trace Reconstruction -> Decoding & Error Correction.
 * Every stage is a swappable module passed in by reference; the
 * pipeline wires them together, times each stage (Table III), and can
 * evaluate intermediate quality against simulation ground truth.
 *
 * run()/runFromReads() never throw: module failures are caught at stage
 * boundaries, recorded as StageStatus/PipelineError entries, and the
 * pipeline continues with whatever data survived.  An optional
 * FaultInjector degrades the data between stages for robustness
 * testing, and an optional recovery policy retries a failed decode with
 * degraded settings (relaxed cluster filter, fallback reconstructor).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/clusterer.hh"
#include "codec/codec.hh"
#include "core/fault.hh"
#include "obs/alloc_profiler.hh"
#include "obs/lock_timing.hh"
#include "obs/metrics.hh"
#include "reconstruction/reconstructor.hh"
#include "simulator/channel.hh"
#include "simulator/coverage.hh"

namespace dnastore
{

/** Per-stage wall-clock latency (Table III rows). */
struct StageLatency
{
    double encoding = 0.0;
    double simulation = 0.0;
    double clustering = 0.0;
    double reconstruction = 0.0;
    double decoding = 0.0;

    double
    total() const
    {
        return encoding + simulation + clustering + reconstruction +
            decoding;
    }
};

/** Outcome of one pipeline stage. */
enum class StageStatus : std::uint8_t
{
    Skipped = 0,  //!< Stage did not run (e.g. simulation in runFromReads).
    Ok = 1,       //!< Ran cleanly.
    Degraded = 2, //!< Ran, but lost or repaired some data on the way.
    Failed = 3,   //!< Module failed; pipeline continued on fallbacks.
};

/** Human-readable stage status. */
const char *stageStatusName(StageStatus status);

/** Status of every stage after a run. */
struct StageStatusSet
{
    StageStatus encoding = StageStatus::Skipped;
    StageStatus simulation = StageStatus::Skipped;
    StageStatus clustering = StageStatus::Skipped;
    StageStatus reconstruction = StageStatus::Skipped;
    StageStatus decoding = StageStatus::Skipped;

    /** True when any stage failed outright. */
    bool anyFailed() const;
    /** True when any stage degraded or failed. */
    bool anyDegraded() const;
};

/** One recorded failure, attributed to the stage that raised it. */
struct PipelineError
{
    std::string stage;   //!< "encoding", "clustering", "pipeline", ...
    std::string message; //!< what() of the caught exception.
};

/** One decode attempt made by the recovery policy. */
struct RecoveryAttempt
{
    std::string description; //!< Which degraded setting was tried.
    bool ok = false;         //!< Did this attempt decode successfully?
    std::size_t failed_rows = 0; //!< RS rows still failing afterwards.
};

/** Everything a pipeline run produces. */
struct PipelineResult
{
    DecodeReport report;       //!< Final decode outcome.
    StageLatency latency;
    /**
     * Per-stage thread-CPU time (CLOCK_THREAD_CPUTIME_ID) of the thread
     * driving the stage.  cpu/wall is the stage's utilization: near 1.0
     * means compute-bound on the driving thread, near 0.0 means the
     * thread mostly waited — worker CPU shows up in the
     * `util.thread_pool.task_cpu_seconds` histogram instead.
     */
    StageLatency cpu;
    StageStatusSet status;     //!< Per-stage outcome taxonomy.
    std::vector<PipelineError> errors; //!< Caught module failures.

    std::size_t encoded_strands = 0;
    std::size_t reads = 0;
    std::size_t clusters = 0;
    std::size_t dropped_strands = 0;
    /** Clusters discarded because they were under min_cluster_size. */
    std::size_t dropped_clusters = 0;
    /** Reads rejected before clustering (empty or non-ACGT). */
    std::size_t malformed_reads = 0;

    /** What the fault injector did (all zero without an injector). */
    FaultCounters faults;
    /** Decode retries made by the recovery policy, in order. */
    std::vector<RecoveryAttempt> recovery_attempts;
    /** True when a recovery retry (not the first decode) produced report. */
    bool recovered = false;

    /** A_1 accuracy vs ground truth (simulated runs only). */
    double clustering_accuracy = 0.0;
    /** Fraction of encoded strands reconstructed exactly. */
    double perfect_reconstructions = 0.0;

    /**
     * Delta of the process-wide metrics registry across this run: every
     * counter/histogram increment the modules published while the run
     * was in flight (exact when runs do not overlap; overlapping runs
     * each see the union of concurrent increments).  Serialised into
     * the machine-readable run report (core/run_report.hh).
     */
    obs::MetricsSnapshot metrics;

    /**
     * Per-run delta of the lock-contention registry (empty unless
     * contention profiling is armed, obs/lock_timing.hh).
     */
    obs::locktime::ContentionSnapshot contention;

    /**
     * Per-run delta of the allocation-attribution table (empty unless
     * allocation profiling is armed, obs/alloc_profiler.hh).
     */
    obs::alloc::AllocSnapshot alloc;
};

/** Module wiring for one pipeline instance. */
struct PipelineModules
{
    const FileEncoder *encoder = nullptr;
    const FileDecoder *decoder = nullptr;
    const Channel *channel = nullptr;
    Clusterer *clusterer = nullptr;
    const Reconstructor *reconstructor = nullptr;

    /**
     * Optional fault injector, applied between stages.  Null (the
     * default) means production behaviour with zero overhead.
     */
    FaultInjector *fault_injector = nullptr;

    /**
     * Optional secondary reconstructor for the recovery policy: when a
     * decode fails and retries are budgeted, the pipeline re-runs
     * reconstruction with this module.
     */
    const Reconstructor *fallback_reconstructor = nullptr;
};

/** Pipeline-level knobs. */
struct PipelineConfig
{
    CoverageModel coverage{10.0};
    std::size_t num_threads = 1; //!< Reconstruction parallelism.
    std::uint64_t seed = 0x91e1157ULL; //!< Simulation RNG seed.
    /** Clusters smaller than this are discarded before reconstruction. */
    std::size_t min_cluster_size = 1;
    /**
     * Recovery budget: how many degraded decode retries to attempt when
     * the first decode fails (0 disables the recovery policy).
     */
    std::size_t max_decode_retries = 0;
};

/**
 * The end-to-end DNA storage pipeline.  Modules are borrowed, not
 * owned, and must outlive the pipeline.
 */
class Pipeline
{
  public:
    Pipeline(PipelineModules modules, PipelineConfig config);

    /**
     * Encode @p data, run it through the simulated wetlab, cluster,
     * reconstruct and decode.  Never throws: missing modules and module
     * exceptions are recorded in PipelineResult::errors and the stage
     * statuses, and the pipeline continues with whatever survived.
     */
    PipelineResult run(const std::vector<std::uint8_t> &data);

    /**
     * Variant that skips the simulation stage and consumes externally
     * produced reads (e.g. preprocessed wetlab FASTQ, Section VIII).
     * @p expected_units may be 0 (infer from indices).  Never throws
     * (same contract as run()).
     */
    PipelineResult runFromReads(const std::vector<Strand> &reads,
                                std::size_t strand_length,
                                std::size_t expected_units = 0);

  private:
    void runImpl(const std::vector<std::uint8_t> &data,
                 PipelineResult &result);

    /**
     * Shared retrieval half (clustering -> reconstruction -> decoding
     * -> recovery).  @p origins / @p ground_truth are null outside
     * simulation.
     */
    void retrieve(const std::vector<Strand> &reads,
                  const std::vector<std::uint32_t> *origins,
                  const std::vector<Strand> *ground_truth,
                  std::size_t strand_length, std::size_t expected_units,
                  PipelineResult &result);

    PipelineModules mods;
    PipelineConfig cfg;
    Rng rng;
};

} // namespace dnastore

