/**
 * @file
 * The end-to-end pipeline (paper Section III): Encoding -> Simulation
 * -> Clustering -> Trace Reconstruction -> Decoding & Error Correction.
 * Every stage is a swappable module passed in by reference; the
 * pipeline wires them together, times each stage (Table III), and can
 * evaluate intermediate quality against simulation ground truth.
 */

#ifndef DNASTORE_CORE_PIPELINE_HH
#define DNASTORE_CORE_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/clusterer.hh"
#include "codec/codec.hh"
#include "reconstruction/reconstructor.hh"
#include "simulator/channel.hh"
#include "simulator/coverage.hh"

namespace dnastore
{

/** Per-stage wall-clock latency (Table III rows). */
struct StageLatency
{
    double encoding = 0.0;
    double simulation = 0.0;
    double clustering = 0.0;
    double reconstruction = 0.0;
    double decoding = 0.0;

    double
    total() const
    {
        return encoding + simulation + clustering + reconstruction +
            decoding;
    }
};

/** Everything a pipeline run produces. */
struct PipelineResult
{
    DecodeReport report;       //!< Final decode outcome.
    StageLatency latency;

    std::size_t encoded_strands = 0;
    std::size_t reads = 0;
    std::size_t clusters = 0;
    std::size_t dropped_strands = 0;

    /** A_1 accuracy vs ground truth (simulated runs only). */
    double clustering_accuracy = 0.0;
    /** Fraction of encoded strands reconstructed exactly. */
    double perfect_reconstructions = 0.0;
};

/** Module wiring for one pipeline instance. */
struct PipelineModules
{
    const FileEncoder *encoder = nullptr;
    const FileDecoder *decoder = nullptr;
    const Channel *channel = nullptr;
    Clusterer *clusterer = nullptr;
    const Reconstructor *reconstructor = nullptr;
};

/** Pipeline-level knobs. */
struct PipelineConfig
{
    CoverageModel coverage{10.0};
    std::size_t num_threads = 1; //!< Reconstruction parallelism.
    std::uint64_t seed = 0x91e1157ULL; //!< Simulation RNG seed.
    /** Clusters smaller than this are discarded before reconstruction. */
    std::size_t min_cluster_size = 1;
};

/**
 * The end-to-end DNA storage pipeline.  Modules are borrowed, not
 * owned, and must outlive the pipeline.
 */
class Pipeline
{
  public:
    Pipeline(PipelineModules modules, PipelineConfig config);

    /**
     * Encode @p data, run it through the simulated wetlab, cluster,
     * reconstruct and decode.  Throws std::invalid_argument when a
     * required module is missing.
     */
    PipelineResult run(const std::vector<std::uint8_t> &data);

    /**
     * Variant that skips the simulation stage and consumes externally
     * produced reads (e.g. preprocessed wetlab FASTQ, Section VIII).
     * @p expected_units may be 0 (infer from indices).
     */
    PipelineResult runFromReads(const std::vector<Strand> &reads,
                                std::size_t strand_length,
                                std::size_t expected_units = 0);

  private:
    PipelineModules mods;
    PipelineConfig cfg;
    Rng rng;
};

} // namespace dnastore

#endif // DNASTORE_CORE_PIPELINE_HH
