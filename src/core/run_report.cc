#include "core/run_report.hh"

#include "obs/alloc_profiler.hh"
#include "obs/json.hh"
#include "obs/lock_timing.hh"
#include "obs/report.hh"

namespace dnastore
{

namespace
{

void
writeStage(obs::JsonWriter &json, const char *name, StageStatus status,
           double seconds, double cpu_seconds)
{
    json.key(name);
    json.beginObject();
    json.key("cpu_seconds");
    json.value(cpu_seconds);
    json.key("seconds");
    json.value(seconds);
    json.key("status");
    json.value(stageStatusName(status));
    json.key("utilization");
    // cpu/wall of the driving thread; sub-resolution stages report 0
    // rather than a division-noise ratio.
    json.value(seconds > 0.0 ? cpu_seconds / seconds : 0.0);
    json.endObject();
}

void
writeContention(obs::JsonWriter &json,
                const obs::locktime::ContentionSnapshot &contention)
{
    json.beginObject();
    json.key("enabled");
    json.value(contention.enabled);
    json.key("mutexes");
    json.beginObject();
    for (const obs::locktime::MutexWaitSnapshot &m : contention.mutexes) {
        json.key(m.name);
        json.beginObject();
        json.key("count");
        json.value(m.total_count);
        json.key("counts");
        json.beginArray();
        for (const std::uint64_t c : m.counts)
            json.value(c);
        json.endArray();
        json.key("sum_seconds");
        json.value(m.sum_seconds);
        json.key("upper_bounds");
        json.beginArray();
        for (const double bound : obs::locktime::waitBucketBoundsSeconds())
            json.value(bound);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.key("sample_every");
    json.value(std::uint64_t{contention.sample_every});
    json.endObject();
}

void
writeAlloc(obs::JsonWriter &json, const obs::alloc::AllocSnapshot &alloc)
{
    json.beginObject();
    json.key("enabled");
    json.value(alloc.enabled);
    json.key("sample_every");
    json.value(std::uint64_t{alloc.sample_every});
    json.key("stages");
    json.beginObject();
    for (const obs::alloc::StageAllocSnapshot &s : alloc.stages) {
        json.key(s.stage);
        json.beginObject();
        json.key("estimated_allocs");
        json.value(s.estimated_allocs);
        json.key("estimated_bytes");
        json.value(s.estimated_bytes);
        json.key("sampled_allocs");
        json.value(s.sampled_allocs);
        json.key("sampled_bytes");
        json.value(s.sampled_bytes);
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

} // namespace

std::string
runReportJson(const PipelineResult &result, const RunInfo &info)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.run_report");
    json.key("schema_version");
    json.value(std::int64_t{obs::kSchemaVersion});

    json.key("run");
    json.beginObject();
    for (const auto &[key, value] : info) {
        json.key(key);
        json.value(value);
    }
    json.endObject();

    json.key("stages");
    json.beginObject();
    const StageStatusSet &status = result.status;
    const StageLatency &latency = result.latency;
    const StageLatency &cpu = result.cpu;
    writeStage(json, "encoding", status.encoding, latency.encoding,
               cpu.encoding);
    writeStage(json, "simulation", status.simulation, latency.simulation,
               cpu.simulation);
    writeStage(json, "clustering", status.clustering, latency.clustering,
               cpu.clustering);
    writeStage(json, "reconstruction", status.reconstruction,
               latency.reconstruction, cpu.reconstruction);
    writeStage(json, "decoding", status.decoding, latency.decoding,
               cpu.decoding);
    json.key("total_cpu_seconds");
    json.value(cpu.total());
    json.key("total_seconds");
    json.value(latency.total());
    json.endObject();

    json.key("pipeline");
    json.beginObject();
    json.key("encoded_strands");
    json.value(std::uint64_t{result.encoded_strands});
    json.key("reads");
    json.value(std::uint64_t{result.reads});
    json.key("clusters");
    json.value(std::uint64_t{result.clusters});
    json.key("dropped_strands");
    json.value(std::uint64_t{result.dropped_strands});
    json.key("dropped_clusters");
    json.value(std::uint64_t{result.dropped_clusters});
    json.key("malformed_reads");
    json.value(std::uint64_t{result.malformed_reads});
    json.key("clustering_accuracy");
    json.value(result.clustering_accuracy);
    json.key("perfect_reconstructions");
    json.value(result.perfect_reconstructions);
    json.key("decode_ok");
    json.value(result.report.ok);
    json.key("decoded_bytes");
    json.value(std::uint64_t{result.report.data.size()});
    json.key("rs_total_rows");
    json.value(std::uint64_t{result.report.total_rows});
    json.key("rs_failed_rows");
    json.value(std::uint64_t{result.report.failed_rows});
    json.key("rs_corrected_errors");
    json.value(std::uint64_t{result.report.corrected_errors});
    json.key("rs_erased_columns");
    json.value(std::uint64_t{result.report.erased_columns});
    json.key("malformed_strands");
    json.value(std::uint64_t{result.report.malformed_strands});
    json.key("conflicting_strands");
    json.value(std::uint64_t{result.report.conflicting_strands});
    json.key("recovered");
    json.value(result.recovered);
    json.endObject();

    json.key("faults");
    json.beginObject();
    const FaultCounters &faults = result.faults;
    json.key("dropped_strands");
    json.value(std::uint64_t{faults.dropped_strands});
    json.key("truncated_reads");
    json.value(std::uint64_t{faults.truncated_reads});
    json.key("elongated_reads");
    json.value(std::uint64_t{faults.elongated_reads});
    json.key("corrupted_indices");
    json.value(std::uint64_t{faults.corrupted_indices});
    json.key("duplicate_conflicts");
    json.value(std::uint64_t{faults.duplicate_conflicts});
    json.key("garbage_reads");
    json.value(std::uint64_t{faults.garbage_reads});
    json.key("emptied_clusters");
    json.value(std::uint64_t{faults.emptied_clusters});
    json.key("merged_clusters");
    json.value(std::uint64_t{faults.merged_clusters});
    json.key("total");
    json.value(std::uint64_t{faults.total()});
    json.endObject();

    json.key("recovery_attempts");
    json.beginArray();
    for (const RecoveryAttempt &attempt : result.recovery_attempts) {
        json.beginObject();
        json.key("description");
        json.value(attempt.description);
        json.key("ok");
        json.value(attempt.ok);
        json.key("failed_rows");
        json.value(std::uint64_t{attempt.failed_rows});
        json.endObject();
    }
    json.endArray();

    json.key("errors");
    json.beginArray();
    for (const PipelineError &error : result.errors) {
        json.beginObject();
        json.key("stage");
        json.value(error.stage);
        json.key("message");
        json.value(error.message);
        json.endObject();
    }
    json.endArray();

    json.key("metrics");
    obs::writeMetricsValue(json, result.metrics);

    json.key("contention");
    writeContention(json, result.contention);

    json.key("alloc");
    writeAlloc(json, result.alloc);

    json.endObject();
    return json.text();
}

bool
writeRunReport(const std::string &path, const PipelineResult &result,
               const RunInfo &info)
{
    return obs::writeTextFile(path, runReportJson(result, info));
}

} // namespace dnastore
