/**
 * @file
 * Deterministic fault injection between pipeline stages.
 *
 * Real wetlab data is adversarial: strands vanish during synthesis,
 * reads come back truncated or elongated, index fields get corrupted,
 * junk sequences leak into the pool and clustering occasionally merges
 * or empties groups.  A FaultInjector reproduces those failure modes on
 * demand — seeded, so every fault pattern is replayable — which lets
 * tests and benchmarks prove that the pipeline degrades gracefully
 * instead of crashing.  Production pipelines simply leave the module
 * pointer null and pay nothing.
 *
 * FaultInjector covers *data* faults inside a live pipeline run.  Its
 * process-level sibling lives in obs/crashpoint.hh: named crash points
 * and IO-fault knobs (kill, short write, ENOSPC, rename failure) that
 * the chaos harness arms to kill the process mid-save and prove the
 * archive's recovery invariants hold.  Together they bound the failure
 * model: everything between a flipped base and a yanked power cord.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{

/**
 * What to break, and how often.  All rates are per-item probabilities in
 * [0, 1]; a default-constructed plan injects nothing.
 */
struct FaultPlan
{
    std::uint64_t seed = 0xfa017ULL; //!< Injection RNG seed.

    /**
     * Index field width in nucleotides; needed by the index-corruption
     * and duplicate-conflict faults (0 disables both).
     */
    std::size_t index_nt = 12;

    // --- Synthesis faults (applied to encoded strands). ---
    double strand_dropout = 0.0; //!< Whole strand never synthesised.

    // --- Sequencing faults (applied to reads). ---
    double read_truncation = 0.0;   //!< Read loses a random suffix.
    double read_elongation = 0.0;   //!< Read gains a random suffix.
    double index_corruption = 0.0;  //!< Index field rewritten randomly.
    double duplicate_conflict = 0.0; //!< Extra read: same index, junk payload.
    double garbage_read = 0.0;      //!< Read replaced by non-ACGT garbage.

    // --- Clustering faults (applied to read groups). ---
    double cluster_drop = 0.0;  //!< Cluster emptied (all reads lost).
    double cluster_merge = 0.0; //!< Cluster merged into a random other.

    /** Largest fraction of a read a truncation may remove. */
    double max_truncation = 0.5;
    /** Largest fraction of a read an elongation may append. */
    double max_elongation = 0.25;

    /** True when any strand- or read-level rate is positive. */
    bool anyReadFaults() const;
    /** True when any cluster-level rate is positive. */
    bool anyClusterFaults() const;
};

/** Per-fault-type tallies of what an injector actually did. */
struct FaultCounters
{
    std::size_t dropped_strands = 0;
    std::size_t truncated_reads = 0;
    std::size_t elongated_reads = 0;
    std::size_t corrupted_indices = 0;
    std::size_t duplicate_conflicts = 0;
    std::size_t garbage_reads = 0;
    std::size_t emptied_clusters = 0;
    std::size_t merged_clusters = 0;

    /** Total faults injected across all types. */
    std::size_t total() const;
};

/**
 * Stateful injector applied by the Pipeline at stage boundaries.  Call
 * reset() (or construct fresh) before each run for a reproducible fault
 * pattern; counters accumulate until the next reset.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** Re-seed the RNG and zero the counters. */
    void reset();

    const FaultPlan &plan() const { return plan_; }
    const FaultCounters &counters() const { return counters_; }

    /**
     * Synthesis-stage faults: removes dropped strands in place.
     * Applied between encoding and sequencing.
     */
    void injectStrands(std::vector<Strand> &strands);

    /**
     * Sequencing-stage faults: truncation, elongation, index
     * corruption, duplicate-index conflicts and garbage reads.
     * When @p origins is non-null it is kept aligned with @p reads
     * (simulation ground truth stays valid).
     */
    void injectReads(std::vector<Strand> &reads,
                     std::vector<std::uint32_t> *origins = nullptr);

    /**
     * Clustering-stage faults: empties and merges read groups in
     * place (emptied groups become zero-length, not removed).  When
     * @p origins is non-null it is kept aligned with @p groups.
     */
    void
    injectClusters(std::vector<std::vector<Strand>> &groups,
                   std::vector<std::vector<std::uint32_t>> *origins = nullptr);

  private:
    FaultPlan plan_;
    FaultCounters counters_;
    Rng rng_;
};

} // namespace dnastore

