#include "core/text_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dnastore
{

namespace
{

bool
getCleanLine(std::istream &in, std::string &line)
{
    if (!std::getline(in, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

} // namespace

std::vector<Strand>
readStrandLines(std::istream &in)
{
    std::vector<Strand> strands;
    std::string line;
    while (getCleanLine(in, line)) {
        if (!line.empty())
            strands.push_back(line);
    }
    return strands;
}

std::vector<Strand>
readStrandFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open strand file: " + path);
    return readStrandLines(in);
}

void
writeStrandLines(std::ostream &out, const std::vector<Strand> &strands)
{
    for (const Strand &s : strands)
        out << s << '\n';
}

void
writeStrandFile(const std::string &path, const std::vector<Strand> &strands)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open strand file for write: " +
                                 path);
    writeStrandLines(out, strands);
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

std::vector<std::vector<Strand>>
readClusterLines(std::istream &in)
{
    std::vector<std::vector<Strand>> clusters;
    std::vector<Strand> current;
    std::string line;
    while (getCleanLine(in, line)) {
        if (line.empty()) {
            if (!current.empty()) {
                clusters.push_back(std::move(current));
                current.clear();
            }
        } else {
            current.push_back(line);
        }
    }
    if (!current.empty())
        clusters.push_back(std::move(current));
    return clusters;
}

std::vector<std::vector<Strand>>
readClusterFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open cluster file: " + path);
    return readClusterLines(in);
}

void
writeClusterLines(std::ostream &out,
                  const std::vector<std::vector<Strand>> &clusters)
{
    bool first = true;
    for (const auto &cluster : clusters) {
        if (!first)
            out << '\n';
        first = false;
        for (const Strand &s : cluster)
            out << s << '\n';
    }
}

void
writeClusterFile(const std::string &path,
                 const std::vector<std::vector<Strand>> &clusters)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open cluster file for write: " +
                                 path);
    writeClusterLines(out, clusters);
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

std::vector<std::uint8_t>
readBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open file: " + path);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeBinaryFile(const std::string &path,
                const std::vector<std::uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open file for write: " + path);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

} // namespace dnastore
