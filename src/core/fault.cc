#include "core/fault.hh"

#include <algorithm>
#include <utility>

namespace dnastore
{

namespace
{

/**
 * Alphabet for garbage reads: valid bases mixed with the junk a real
 * FASTQ can contain (ambiguity codes, soft-masked bases, gaps).
 */
constexpr char kGarbageAlphabet[] = "ACGTNRYacgtn.-";
constexpr std::size_t kGarbageAlphabetSize = sizeof(kGarbageAlphabet) - 1;

Strand
garbageStrand(Rng &rng, std::size_t reference_length)
{
    // Anything from an empty read to twice the nominal length.
    const std::size_t length = rng.below(2 * reference_length + 1);
    Strand s(length, 'N');
    for (auto &c : s)
        c = kGarbageAlphabet[rng.below(kGarbageAlphabetSize)];
    return s;
}

} // namespace

bool
FaultPlan::anyReadFaults() const
{
    return strand_dropout > 0.0 || read_truncation > 0.0 ||
        read_elongation > 0.0 || index_corruption > 0.0 ||
        duplicate_conflict > 0.0 || garbage_read > 0.0;
}

bool
FaultPlan::anyClusterFaults() const
{
    return cluster_drop > 0.0 || cluster_merge > 0.0;
}

std::size_t
FaultCounters::total() const
{
    return dropped_strands + truncated_reads + elongated_reads +
        corrupted_indices + duplicate_conflicts + garbage_reads +
        emptied_clusters + merged_clusters;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), rng_(plan.seed)
{
}

void
FaultInjector::reset()
{
    counters_ = FaultCounters{};
    rng_ = Rng(plan_.seed);
}

void
FaultInjector::injectStrands(std::vector<Strand> &strands)
{
    if (plan_.strand_dropout <= 0.0)
        return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < strands.size(); ++i) {
        if (rng_.chance(plan_.strand_dropout)) {
            ++counters_.dropped_strands;
            continue;
        }
        if (kept != i) // avoid self-move
            strands[kept] = std::move(strands[i]);
        ++kept;
    }
    strands.resize(kept);
}

void
FaultInjector::injectReads(std::vector<Strand> &reads,
                           std::vector<std::uint32_t> *origins)
{
    // Duplicate-conflict reads are appended after the pass so the loop
    // never iterates over its own products.
    std::vector<Strand> extra_reads;
    std::vector<std::uint32_t> extra_origins;

    for (std::size_t i = 0; i < reads.size(); ++i) {
        Strand &read = reads[i];
        if (plan_.garbage_read > 0.0 && rng_.chance(plan_.garbage_read)) {
            read = garbageStrand(rng_, std::max<std::size_t>(read.size(), 1));
            ++counters_.garbage_reads;
            continue; // a garbage read needs no further mangling
        }
        if (plan_.read_truncation > 0.0 && !read.empty() &&
            rng_.chance(plan_.read_truncation)) {
            const std::size_t max_cut = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       plan_.max_truncation *
                       static_cast<double>(read.size())));
            read.resize(read.size() - 1 - rng_.below(max_cut));
            ++counters_.truncated_reads;
        }
        if (plan_.read_elongation > 0.0 && !read.empty() &&
            rng_.chance(plan_.read_elongation)) {
            const std::size_t max_add = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       plan_.max_elongation *
                       static_cast<double>(read.size())));
            read += strand::random(rng_, 1 + rng_.below(max_add));
            ++counters_.elongated_reads;
        }
        if (plan_.index_corruption > 0.0 && plan_.index_nt > 0 &&
            read.size() >= plan_.index_nt &&
            rng_.chance(plan_.index_corruption)) {
            const Strand junk = strand::random(rng_, plan_.index_nt);
            std::copy(junk.begin(), junk.end(), read.begin());
            ++counters_.corrupted_indices;
        }
        if (plan_.duplicate_conflict > 0.0 && plan_.index_nt > 0 &&
            read.size() > plan_.index_nt &&
            rng_.chance(plan_.duplicate_conflict)) {
            // Same index field, freshly random payload: two molecules now
            // claim one address with disagreeing contents.
            extra_reads.push_back(
                read.substr(0, plan_.index_nt) +
                strand::random(rng_, read.size() - plan_.index_nt));
            if (origins)
                extra_origins.push_back((*origins)[i]);
            ++counters_.duplicate_conflicts;
        }
    }

    for (auto &read : extra_reads)
        reads.push_back(std::move(read));
    if (origins)
        origins->insert(origins->end(), extra_origins.begin(),
                        extra_origins.end());
}

void
FaultInjector::injectClusters(
    std::vector<std::vector<Strand>> &groups,
    std::vector<std::vector<std::uint32_t>> *origins)
{
    for (std::size_t i = 0; i < groups.size(); ++i) {
        if (groups[i].empty())
            continue;
        if (plan_.cluster_drop > 0.0 && rng_.chance(plan_.cluster_drop)) {
            groups[i].clear();
            if (origins)
                (*origins)[i].clear();
            ++counters_.emptied_clusters;
            continue;
        }
        if (plan_.cluster_merge > 0.0 && groups.size() > 1 &&
            rng_.chance(plan_.cluster_merge)) {
            std::size_t j = rng_.below(groups.size() - 1);
            if (j >= i)
                ++j; // uniform over the other groups
            std::move(groups[i].begin(), groups[i].end(),
                      std::back_inserter(groups[j]));
            groups[i].clear();
            if (origins) {
                auto &src = (*origins)[i];
                auto &dst = (*origins)[j];
                dst.insert(dst.end(), src.begin(), src.end());
                src.clear();
            }
            ++counters_.merged_clusters;
        }
    }
}

} // namespace dnastore
