#include "core/pool.hh"

#include "obs/metrics.hh"

namespace dnastore
{

void
DnaPool::store(const PrimerPair &key,
               const std::vector<Strand> &payload_strands)
{
    molecules.reserve(molecules.size() + payload_strands.size());
    forward_tags.reserve(forward_tags.size() + payload_strands.size());
    for (const Strand &payload : payload_strands) {
        molecules.push_back(attachPrimers(key, payload));
        forward_tags.push_back(key.forward);
    }
}

void
DnaPool::addTagged(const PrimerPair &key,
                   const std::vector<Strand> &tagged_molecules)
{
    molecules.reserve(molecules.size() + tagged_molecules.size());
    forward_tags.reserve(forward_tags.size() + tagged_molecules.size());
    for (const Strand &molecule : tagged_molecules) {
        molecules.push_back(molecule);
        forward_tags.push_back(key.forward);
    }
}

PcrProduct
amplify(const DnaPool &pool, const PrimerPair &key, Rng &rng,
        const PcrConfig &config)
{
    PcrProduct product;
    const auto &molecules = pool.all();
    const auto &tags = pool.tags();
    for (std::size_t i = 0; i < molecules.size(); ++i) {
        if (tags[i] == key.forward) {
            product.molecules.push_back(molecules[i]);
            ++product.on_target;
        } else if (config.off_target_rate > 0.0 &&
                   rng.chance(config.off_target_rate)) {
            product.molecules.push_back(molecules[i]);
            ++product.off_target;
        }
    }
    obs::metrics().counter("pool.pcr_reactions_total").add(1);
    obs::metrics().counter("pool.on_target_total").add(product.on_target);
    obs::metrics().counter("pool.off_target_total").add(product.off_target);
    return product;
}

} // namespace dnastore
