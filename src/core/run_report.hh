/**
 * @file
 * Canonical machine-readable run report: everything one Pipeline run
 * produced — stage statuses and latencies, pipeline tallies, fault and
 * recovery counters, and the full metrics snapshot — as one
 * schema-versioned JSON document with stable key order (schema
 * `dnastore.run_report`, see docs/OBSERVABILITY.md).
 *
 * The CLI (`dnastore pipeline --metrics-json PATH`), the quickstart
 * example and the benches all emit this same document, so human tables
 * and scraped JSON always come from one source of truth.
 */

#pragma once

#include <map>
#include <string>

#include "core/pipeline.hh"

namespace dnastore
{

/**
 * Free-form run context recorded under the report's "run" key: tool
 * name, module names, seed, configuration knobs.  Values are emitted as
 * JSON strings in sorted key order.
 */
using RunInfo = std::map<std::string, std::string>;

/** Serialise @p result (plus @p info context) as a run report. */
[[nodiscard]] std::string
runReportJson(const PipelineResult &result, const RunInfo &info);

/**
 * Write the run report for @p result to @p path.
 * @return false when the file cannot be written.
 */
[[nodiscard]] bool
writeRunReport(const std::string &path, const PipelineResult &result,
               const RunInfo &info);

} // namespace dnastore
