/**
 * @file
 * Clustering accuracy against simulation ground truth, following the
 * A_gamma metric of Rashtchian et al.: a true cluster counts as
 * recovered when some output cluster contains at least a gamma fraction
 * of its reads and no reads from any other true cluster.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "clustering/clusterer.hh"

namespace dnastore
{

/**
 * A_gamma accuracy.
 *
 * @param clustering Output clusters (indices into the read list).
 * @param origin     Ground-truth strand id per read.
 * @param gamma      Required completeness fraction in (0, 1].
 */
double clusteringAccuracy(const Clustering &clustering,
                          const std::vector<std::uint32_t> &origin,
                          double gamma = 1.0);

} // namespace dnastore

