/**
 * @file
 * Disjoint-set forest used by the iterative merge clustering (paper
 * Section VI-A): every read starts as a singleton cluster and similar
 * clusters are merged round by round.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace dnastore
{

/** Union-find with path halving and union by size. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t count);

    /** Representative of the set containing x. */
    std::size_t find(std::size_t x);

    /** Merge the sets of a and b; returns the surviving root. */
    std::size_t merge(std::size_t a, std::size_t b);

    /** True if a and b share a set. */
    bool connected(std::size_t a, std::size_t b);

    /** Size of the set containing x. */
    std::size_t sizeOf(std::size_t x);

    /** Number of elements. */
    std::size_t count() const { return parent.size(); }

    /** Number of distinct sets. */
    std::size_t numSets() const { return sets; }

    /** Materialise the sets as index groups (roots own their group). */
    std::vector<std::vector<std::uint32_t>> groups();

  private:
    std::vector<std::uint32_t> parent;
    std::vector<std::uint32_t> size;
    std::size_t sets;
};

} // namespace dnastore

