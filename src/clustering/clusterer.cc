#include "clustering/clusterer.hh"

#include <atomic>
#include <cmath>
#include <unordered_map>

#include "clustering/union_find.hh"
#include "dna/distance.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/hot.hh"
#include "util/sync.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

namespace dnastore
{

namespace
{

/** Process-wide clustering counters, published once per cluster() call. */
struct ClusteringMetrics
{
    obs::Counter &runs = obs::metrics().counter("clustering.runs_total");
    obs::Counter &reads = obs::metrics().counter("clustering.reads_total");
    obs::Counter &clusters =
        obs::metrics().counter("clustering.clusters_total");
    obs::Counter &rounds = obs::metrics().counter("clustering.rounds_total");
    obs::Counter &signature_comparisons =
        obs::metrics().counter("clustering.signature_comparisons_total");
    obs::Counter &edit_calls =
        obs::metrics().counter("clustering.edit_distance_calls_total");
    obs::Counter &merges = obs::metrics().counter("clustering.merges_total");
    obs::Counter &filter_rejections =
        obs::metrics().counter("clustering.filter_rejections_total");
    obs::FixedHistogram &cluster_size = obs::metrics().histogram(
        "clustering.cluster_size_reads",
        {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0});
};

ClusteringMetrics &
clusteringMetrics()
{
    static ClusteringMetrics metrics;
    return metrics;
}

} // namespace

RashtchianClustererConfig
RashtchianClustererConfig::forErrorRate(double error_rate,
                                        std::size_t read_length)
{
    RashtchianClustererConfig cfg;
    const double expected_gap =
        2.0 * error_rate * static_cast<double>(read_length);
    cfg.edit_threshold = static_cast<std::size_t>(
        expected_gap + 3.0 * std::sqrt(expected_gap) + 0.5);
    if (error_rate > 0.10) {
        cfg.key_len = 4;
        cfg.rounds = 96;
    }
    return cfg;
}

RashtchianClusterer::RashtchianClusterer(RashtchianClustererConfig config)
    : cfg(config), rng(config.seed)
{
}

std::string
RashtchianClusterer::name() const
{
    return std::string("rashtchian/") + signatureKindName(cfg.signature);
}

DNASTORE_HOT Clustering
RashtchianClusterer::cluster(const std::vector<Strand> &reads)
{
    last_stats = Stats{};
    Clustering result;
    if (reads.empty())
        return result;
    if (reads.size() == 1) {
        result.clusters = {{0}};
        return result;
    }

    const SignatureScheme scheme(cfg.signature, rng, cfg.q, cfg.num_grams);

    // Signature pre-calculation (reported separately in Table II).
    WallTimer sig_timer;
    obs::Span sig_span("clustering/signature_pass");
    std::vector<Signature> signatures(reads.size());
    std::unique_ptr<ThreadPool> pool;
    if (cfg.num_threads > 1)
        pool = std::make_unique<ThreadPool>(cfg.num_threads);
    if (pool) {
        pool->parallelFor(0, reads.size(), [&](std::size_t i) {
            signatures[i] = scheme.compute(reads[i]);
        });
    } else {
        for (std::size_t i = 0; i < reads.size(); ++i)
            signatures[i] = scheme.compute(reads[i]);
    }
    sig_span.end();
    last_stats.signature_seconds = sig_timer.seconds();

    // Thresholds: user-provided or auto-configured from a sample.
    std::int64_t theta_low = cfg.theta_low;
    std::int64_t theta_high = cfg.theta_high;
    if (theta_low < 0 || theta_high < 0) {
        const Thresholds auto_thresholds =
            autoConfigureThresholds(reads, scheme, rng, cfg.auto_threshold);
        if (theta_low < 0)
            theta_low = auto_thresholds.low;
        if (theta_high < 0)
            theta_high = auto_thresholds.high;
    }
    last_stats.theta_low = theta_low;
    last_stats.theta_high = theta_high;

    WallTimer merge_timer;
    UnionFind dsu(reads.size());
    // Guards the shared UnionFind across bucket workers.  A local can
    // carry no DNASTORE_GUARDED_BY peer, so R6 allowlists this one.
    Mutex dsu_mutex{"clustering.dsu"};
    std::atomic<std::size_t> sig_comparisons{0};
    std::atomic<std::size_t> edit_calls{0};
    std::atomic<std::size_t> merges{0};
    std::atomic<std::size_t> filter_rejections{0};

    for (std::size_t round = 0; round < cfg.rounds; ++round) {
        obs::Span round_span("clustering/round");
        ++last_stats.rounds_run;

        // One random representative per current cluster.
        auto groups = dsu.groups();
        const Strand anchor = strand::random(rng, cfg.anchor_len);

        // Partition representatives by the key_len bases following the
        // anchor's first occurrence.
        std::unordered_map<std::string, std::vector<std::uint32_t>>
            partitions;
        partitions.reserve(groups.size() / 2 + 1);
        for (const auto &group : groups) {
            const std::uint32_t rep =
                group[rng.below(group.size())];
            const Strand &read = reads[rep];
            const auto pos = read.find(anchor);
            if (pos == Strand::npos)
                continue; // cluster sits this round out
            const std::size_t key_start = pos + cfg.anchor_len;
            if (key_start + cfg.key_len > read.size())
                continue;
            partitions[read.substr(key_start, cfg.key_len)].push_back(rep);
        }

        std::vector<std::vector<std::uint32_t>> buckets;
        buckets.reserve(partitions.size());
        for (auto &[key, members] : partitions) {
            if (members.size() > 1)
                buckets.push_back(std::move(members));
        }

        auto process_bucket = [&](std::size_t b) {
            const auto &members = buckets[b];
            for (std::size_t i = 0; i < members.size(); ++i) {
                for (std::size_t j = i + 1; j < members.size(); ++j) {
                    const std::uint32_t a = members[i];
                    const std::uint32_t c = members[j];
                    {
                        MutexLock lock(dsu_mutex);
                        if (dsu.connected(a, c))
                            continue;
                    }
                    sig_comparisons.fetch_add(1, std::memory_order_relaxed);
                    const std::int64_t d =
                        scheme.distance(signatures[a], signatures[c]);
                    bool do_merge = false;
                    if (d <= theta_low) {
                        do_merge = true;
                    } else if (d < theta_high) {
                        edit_calls.fetch_add(1, std::memory_order_relaxed);
                        do_merge = withinEditDistance(reads[a], reads[c],
                                                      cfg.edit_threshold);
                    } else {
                        // Signature filter rejected the pair outright.
                        filter_rejections.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (do_merge) {
                        MutexLock lock(dsu_mutex);
                        dsu.merge(a, c);
                        merges.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }
        };

        if (pool) {
            pool->parallelFor(0, buckets.size(), process_bucket);
        } else {
            for (std::size_t b = 0; b < buckets.size(); ++b)
                process_bucket(b);
        }
    }

    last_stats.clustering_seconds = merge_timer.seconds();
    // Relaxed is enough: these are monotone tallies and parallelFor has
    // already joined every worker, so the loads race with nothing.
    last_stats.signature_comparisons =
        sig_comparisons.load(std::memory_order_relaxed);
    last_stats.edit_distance_calls =
        edit_calls.load(std::memory_order_relaxed);
    last_stats.merges = merges.load(std::memory_order_relaxed);

    result.clusters = dsu.groups();

    ClusteringMetrics &metrics = clusteringMetrics();
    metrics.runs.add(1);
    metrics.reads.add(reads.size());
    metrics.clusters.add(result.clusters.size());
    metrics.rounds.add(last_stats.rounds_run);
    metrics.signature_comparisons.add(last_stats.signature_comparisons);
    metrics.edit_calls.add(last_stats.edit_distance_calls);
    metrics.merges.add(last_stats.merges);
    metrics.filter_rejections.add(
        filter_rejections.load(std::memory_order_relaxed));
    for (const auto &cluster : result.clusters)
        metrics.cluster_size.observe(static_cast<double>(cluster.size()));
    return result;
}

} // namespace dnastore
