#include "clustering/auto_threshold.hh"

#include <algorithm>
#include <stdexcept>

namespace dnastore
{

Thresholds
autoConfigureThresholds(const std::vector<Strand> &reads,
                        const SignatureScheme &scheme, Rng &rng,
                        const AutoThresholdConfig &config)
{
    if (reads.size() < 2)
        throw std::invalid_argument("autoConfigureThresholds: too few reads");

    const std::size_t small_n = std::min(config.small_sample, reads.size());
    const std::size_t large_n = std::min(config.large_sample, reads.size());

    const auto small_idx = rng.sampleIndices(reads.size(), small_n);
    const auto large_idx = rng.sampleIndices(reads.size(), large_n);

    std::vector<Signature> small_sigs(small_n), large_sigs(large_n);
    for (std::size_t i = 0; i < small_n; ++i)
        small_sigs[i] = scheme.compute(reads[small_idx[i]]);
    for (std::size_t j = 0; j < large_n; ++j)
        large_sigs[j] = scheme.compute(reads[large_idx[j]]);

    // Histogram range: q-gram distances are bounded by dimensionality;
    // w-gram distances can reach dimensions * read length.
    std::size_t bins = scheme.dimensions() + 1;
    if (scheme.kind() == SignatureKind::WGram) {
        std::size_t max_len = 0;
        for (const Strand &r : reads)
            max_len = std::max(max_len, r.size());
        bins = scheme.dimensions() * (max_len + 2) + 1;
        bins = std::min<std::size_t>(bins, 20000);
    }

    Thresholds out{0, 0, Histogram(bins), 0, 0};
    for (std::size_t i = 0; i < small_n; ++i) {
        for (std::size_t j = 0; j < large_n; ++j) {
            if (small_idx[i] == large_idx[j])
                continue;
            out.histogram.add(
                scheme.distance(small_sigs[i], large_sigs[j]));
        }
    }

    // Wide, sparse histograms (w-gram distances span thousands of bins)
    // need proportionally wider smoothing before any structure shows.
    const std::size_t radius =
        std::max(config.smoothing_radius, bins / 128);
    const auto smooth = out.histogram.smoothed(radius);

    // Main mode: global maximum of the smoothed histogram — the
    // unrelated-pair distance mode, since random read pairs almost
    // always come from different clusters.
    std::size_t main_peak = 0;
    for (std::size_t b = 1; b < smooth.size(); ++b)
        if (smooth[b] > smooth[main_peak])
            main_peak = b;
    const double peak_density = smooth.empty() ? 0.0 : smooth[main_peak];

    // Left edge of the main mode: the last bin (scanning left from the
    // peak) whose density has dropped below 5% of the peak.
    std::size_t left_edge = main_peak / 4;
    for (std::size_t b = main_peak; b-- > 0;) {
        if (smooth[b] <= 0.05 * peak_density) {
            left_edge = b;
            break;
        }
    }

    out.main_peak = static_cast<std::int64_t>(main_peak);
    out.valley = static_cast<std::int64_t>(left_edge);

    // theta_low must stay conservative: anything below it merges with
    // no edit-distance confirmation, so a false positive is permanent.
    // Same-cluster pairs are rare in a random sample, so the low mode
    // is often invisible; only trust it when it carries real density
    // and sits clearly left of the main mode's edge.
    std::size_t low_peak = 0;
    for (std::size_t b = 0; b < left_edge; ++b)
        if (smooth[b] > smooth[low_peak])
            low_peak = b;
    if (left_edge > 0 && smooth[low_peak] >= 0.02 * peak_density &&
        low_peak < left_edge / 2) {
        out.low = static_cast<std::int64_t>(
            std::min(low_peak + (left_edge - low_peak) / 2, left_edge / 2));
    } else {
        // No separated low mode visible: err small — a merge below
        // theta_low is never edit-checked, so only near-identical
        // signatures may skip the check.
        out.low = static_cast<std::int64_t>(left_edge / 4);
    }

    // theta_high is placed generously between the edge and the peak:
    // widening the gray zone only adds (exact) edit-distance checks, so
    // it costs time, never accuracy — important at high error rates,
    // where the same-cluster mode smears into the main mode's flank.
    out.high = static_cast<std::int64_t>((left_edge + main_peak) / 2);
    if (out.high <= out.low)
        out.high = out.low + 1;
    return out;
}

} // namespace dnastore
