/**
 * @file
 * Read signatures for cheap cluster comparison (paper Sections VI-A and
 * VI-C).  A q-gram signature records the presence/absence of a random
 * probe set of q-grams (compared with Hamming distance); the paper's
 * novel w-gram signature records the *first-occurrence position* of
 * each probe instead (compared with the L1 norm), which spreads
 * signatures of unrelated clusters further apart and avoids many edit
 * distance calls at the price of a costlier signature.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace dnastore
{

/** Signature flavours. */
enum class SignatureKind
{
    QGram, //!< Presence bits, Hamming distance.
    WGram, //!< First-occurrence positions, L1 distance.
};

/** Name of a signature kind. */
const char *signatureKindName(SignatureKind kind);

/** A computed signature; meaning of values depends on the scheme. */
struct Signature
{
    std::vector<std::int32_t> values;
};

/**
 * A probe set of random q-grams plus the comparison rule.  The same
 * scheme instance must be used for every signature that will be
 * compared.
 */
class SignatureScheme
{
  public:
    /**
     * @param kind       QGram or WGram.
     * @param rng        Source for the random probe set.
     * @param q          Gram length.
     * @param num_grams  Probe-set size (signature dimensionality).
     */
    SignatureScheme(SignatureKind kind, Rng &rng, std::size_t q,
                    std::size_t num_grams);

    /** Construct with an explicit probe set (for tests). */
    SignatureScheme(SignatureKind kind, std::vector<std::string> probes);

    SignatureKind kind() const { return kind_; }
    std::size_t dimensions() const { return probes.size(); }
    const std::vector<std::string> &probeSet() const { return probes; }

    /** Compute the signature of a read. */
    Signature compute(const std::string &read) const;

    /**
     * Distance between two signatures of this scheme: Hamming for
     * q-gram, L1 for w-gram.
     */
    std::int64_t distance(const Signature &a, const Signature &b) const;

  private:
    SignatureKind kind_;
    std::vector<std::string> probes;
};

} // namespace dnastore

