/**
 * @file
 * The clustering module interface and the distributed merge clusterer
 * of Rashtchian et al. (paper Section VI).  Reads begin as singleton
 * clusters; each round picks a random anchor, partitions cluster
 * representatives by the bases following the anchor, and merges
 * near-identical clusters inside each partition — using cheap signature
 * distances to avoid edit-distance comparisons wherever possible.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clustering/auto_threshold.hh"
#include "clustering/signature.hh"
#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{

/** Output of a clustering module: groups of read indices. */
struct Clustering
{
    std::vector<std::vector<std::uint32_t>> clusters;

    std::size_t numClusters() const { return clusters.size(); }
};

/** Clustering module interface (swappable in the pipeline). */
class Clusterer
{
  public:
    virtual ~Clusterer() = default;

    /** Cluster the reads (stateful: uses the module's own RNG). */
    virtual Clustering cluster(const std::vector<Strand> &reads) = 0;

    /** Human-readable module name. */
    virtual std::string name() const = 0;
};

/** Configuration of the Rashtchian-style clusterer. */
struct RashtchianClustererConfig
{
    SignatureKind signature = SignatureKind::QGram;
    std::size_t q = 4;             //!< Probe gram length.
    std::size_t num_grams = 60;    //!< Signature dimensionality.
    std::size_t anchor_len = 3;    //!< Random anchor length per round.
    std::size_t key_len = 5;       //!< Partition key bases after anchor.
    std::size_t rounds = 32;       //!< Merge rounds.
    /** Signature-distance thresholds; negative values = auto-configure
     *  (paper Section VI-B). */
    std::int64_t theta_low = -1;
    std::int64_t theta_high = -1;
    /** Edit-distance ceiling for gray-zone merges. */
    std::size_t edit_threshold = 25;
    std::size_t num_threads = 1;   //!< Worker threads (1 = sequential).
    std::uint64_t seed = 0xc105e2ULL; //!< RNG seed (anchors, sampling).
    AutoThresholdConfig auto_threshold{};

    /**
     * Defaults tuned for an expected per-nucleotide error rate and read
     * length: the gray-zone edit threshold tracks the expected distance
     * between two reads of the same strand (~2pL plus spread), and
     * high-error workloads get shorter partition keys and more rounds
     * so that clusters still meet despite corrupted anchor regions.
     */
    static RashtchianClustererConfig
    forErrorRate(double error_rate, std::size_t read_length);
};

/** Distributed iterative-merge clusterer with q-gram/w-gram signatures. */
class RashtchianClusterer : public Clusterer
{
  public:
    /** Work and timing counters for the evaluation tables. */
    struct Stats
    {
        std::size_t signature_comparisons = 0;
        std::size_t edit_distance_calls = 0;
        std::size_t merges = 0;
        std::size_t rounds_run = 0;
        double signature_seconds = 0.0;  //!< Signature pre-calculation.
        double clustering_seconds = 0.0; //!< Merge rounds.
        std::int64_t theta_low = 0;      //!< Thresholds actually used.
        std::int64_t theta_high = 0;
    };

    explicit RashtchianClusterer(RashtchianClustererConfig config);

    Clustering cluster(const std::vector<Strand> &reads) override;

    std::string name() const override;

    /** Counters from the most recent cluster() call. */
    const Stats &stats() const { return last_stats; }

    const RashtchianClustererConfig &config() const { return cfg; }

  private:
    RashtchianClustererConfig cfg;
    Rng rng;
    Stats last_stats;
};

} // namespace dnastore

