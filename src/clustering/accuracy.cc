#include "clustering/accuracy.hh"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dnastore
{

double
clusteringAccuracy(const Clustering &clustering,
                   const std::vector<std::uint32_t> &origin, double gamma)
{
    if (gamma <= 0.0 || gamma > 1.0)
        throw std::invalid_argument("clusteringAccuracy: gamma out of range");

    // True cluster sizes.
    std::unordered_map<std::uint32_t, std::size_t> true_size;
    for (std::uint32_t o : origin)
        ++true_size[o];
    if (true_size.empty())
        return 0.0;

    // A true cluster is recovered when some output cluster is pure (all
    // reads share its origin) and covers >= gamma of its reads.
    std::unordered_set<std::uint32_t> recovered;
    for (const auto &cluster : clustering.clusters) {
        if (cluster.empty())
            continue;
        const std::uint32_t first = origin.at(cluster.front());
        bool pure = true;
        for (std::uint32_t read : cluster) {
            if (origin.at(read) != first) {
                pure = false;
                break;
            }
        }
        if (!pure)
            continue;
        const double covered = static_cast<double>(cluster.size());
        const double total =
            static_cast<double>(true_size.at(first));
        if (covered + 1e-12 >= gamma * total)
            recovered.insert(first);
    }
    return static_cast<double>(recovered.size()) /
        static_cast<double>(true_size.size());
}

} // namespace dnastore
