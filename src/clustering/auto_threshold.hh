/**
 * @file
 * Automatic configuration of the clustering thresholds (paper Section
 * VI-B, Figure 5).  Signature distances between a small read sample and
 * a larger one form a bimodal histogram: a low mode of same-cluster
 * pairs and a high mode of unrelated pairs.  theta_low is placed inside
 * the low mode (merge without edit-distance check), theta_high before
 * the high mode (reject without check); only the gray zone in between
 * pays for an edit-distance comparison.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "clustering/signature.hh"
#include "dna/strand.hh"
#include "util/stats.hh"

namespace dnastore
{

/** Sampling knobs for auto-threshold estimation. */
struct AutoThresholdConfig
{
    std::size_t small_sample = 40;  //!< "Handful" of probe reads.
    std::size_t large_sample = 400; //!< Reads each probe is compared to.
    std::size_t smoothing_radius = 2;
};

/** The estimated thresholds plus the evidence behind them. */
struct Thresholds
{
    std::int64_t low = 0;   //!< <= low: merge without edit check.
    std::int64_t high = 0;  //!< >= high: reject without edit check.
    Histogram histogram{1}; //!< Distance histogram (Fig. 5 material).
    std::int64_t valley = 0;    //!< Bin separating the two modes.
    std::int64_t main_peak = 0; //!< Mode of unrelated-pair distances.
};

/**
 * Estimate thresholds by sampling signature distances between reads
 * (paper Section VI-B).  Deterministic given @p rng state.
 */
Thresholds
autoConfigureThresholds(const std::vector<Strand> &reads,
                        const SignatureScheme &scheme, Rng &rng,
                        const AutoThresholdConfig &config = {});

} // namespace dnastore

