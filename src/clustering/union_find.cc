#include "clustering/union_find.hh"

#include <numeric>
#include <stdexcept>

#include "util/assert.hh"

namespace dnastore
{

UnionFind::UnionFind(std::size_t count)
    : parent(count), size(count, 1), sets(count)
{
    if (count > UINT32_MAX)
        throw std::invalid_argument("UnionFind: too many elements");
    std::iota(parent.begin(), parent.end(), 0u);
}

std::size_t
UnionFind::find(std::size_t x)
{
    DNASTORE_DCHECK(x < parent.size(), "find() element out of range");
    while (parent[x] != x) {
        parent[x] = parent[parent[x]]; // path halving
        x = parent[x];
    }
    return x;
}

std::size_t
UnionFind::merge(std::size_t a, std::size_t b)
{
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb)
        return ra;
    if (size[ra] < size[rb])
        std::swap(ra, rb);
    parent[rb] = static_cast<std::uint32_t>(ra);
    size[ra] += size[rb];
    DNASTORE_ASSERT(sets > 0, "merge() with no sets left to merge");
    --sets;
    DNASTORE_DCHECK(size[ra] <= parent.size(),
                    "merged set larger than the universe");
    return ra;
}

bool
UnionFind::connected(std::size_t a, std::size_t b)
{
    return find(a) == find(b);
}

std::size_t
UnionFind::sizeOf(std::size_t x)
{
    return size[find(x)];
}

std::vector<std::vector<std::uint32_t>>
UnionFind::groups()
{
    std::vector<std::vector<std::uint32_t>> out;
    std::vector<std::int64_t> root_slot(parent.size(), -1);
    for (std::size_t i = 0; i < parent.size(); ++i) {
        const std::size_t root = find(i);
        if (root_slot[root] < 0) {
            root_slot[root] = static_cast<std::int64_t>(out.size());
            out.emplace_back();
        }
        out[static_cast<std::size_t>(root_slot[root])].push_back(
            static_cast<std::uint32_t>(i));
    }
    DNASTORE_ASSERT(out.size() == sets,
                    "set counter out of sync with group count");
    return out;
}

} // namespace dnastore
