#include "clustering/greedy_clusterer.hh"

#include <unordered_map>

#include "clustering/auto_threshold.hh"
#include "dna/distance.hh"
#include "util/timer.hh"

namespace dnastore
{

GreedyOnlineClusterer::GreedyOnlineClusterer(GreedyClustererConfig config)
    : cfg(config), rng(config.seed)
{
}

std::string
GreedyOnlineClusterer::name() const
{
    return std::string("greedy-online/") + signatureKindName(cfg.signature);
}

Clustering
GreedyOnlineClusterer::cluster(const std::vector<Strand> &reads)
{
    last_stats = Stats{};
    Clustering result;
    if (reads.empty())
        return result;

    WallTimer timer;
    const SignatureScheme scheme(cfg.signature, rng, cfg.q, cfg.num_grams);

    std::int64_t theta_join = cfg.theta_join;
    std::int64_t theta_check = cfg.theta_join;
    if (theta_join < 0 && reads.size() >= 2) {
        const Thresholds thresholds =
            autoConfigureThresholds(reads, scheme, rng);
        theta_join = thresholds.low;
        theta_check = thresholds.high;
    } else if (theta_join < 0) {
        theta_join = 0;
        theta_check = 1;
    } else {
        theta_check = theta_join * 2;
    }

    // One fixed anchor per hash function; a read's bucket key is the
    // key_len bases following the anchor's first occurrence.
    std::vector<Strand> anchors;
    for (std::size_t a = 0; a < cfg.num_anchors; ++a)
        anchors.push_back(strand::random(rng, cfg.anchor_len));

    struct ClusterState
    {
        std::uint32_t representative;
        Signature signature;
        std::vector<std::uint32_t> members;
    };
    std::vector<ClusterState> clusters;
    // buckets[a] maps key -> cluster ids routed there by anchor a.
    std::vector<std::unordered_map<std::string,
                                   std::vector<std::uint32_t>>>
        buckets(cfg.num_anchors);

    auto keys_of = [&](const Strand &read) {
        std::vector<std::pair<std::size_t, std::string>> keys;
        for (std::size_t a = 0; a < cfg.num_anchors; ++a) {
            const auto pos = read.find(anchors[a]);
            if (pos == Strand::npos)
                continue;
            const std::size_t start = pos + cfg.anchor_len;
            if (start + cfg.key_len > read.size())
                continue;
            keys.emplace_back(a, read.substr(start, cfg.key_len));
        }
        return keys;
    };

    for (std::uint32_t r = 0; r < reads.size(); ++r) {
        const Strand &read = reads[r];
        const Signature sig = scheme.compute(read);
        const auto keys = keys_of(read);

        // Collect candidate clusters from every bucket the read hashes
        // into and keep the best-matching representative.
        std::int64_t best_distance = 0;
        std::int64_t best_cluster = -1;
        for (const auto &[a, key] : keys) {
            const auto it = buckets[a].find(key);
            if (it == buckets[a].end())
                continue;
            for (const std::uint32_t c : it->second) {
                ++last_stats.signature_comparisons;
                const std::int64_t d =
                    scheme.distance(sig, clusters[c].signature);
                if (best_cluster < 0 || d < best_distance) {
                    best_distance = d;
                    best_cluster = c;
                }
            }
        }

        bool join = false;
        if (best_cluster >= 0) {
            if (best_distance <= theta_join) {
                join = true;
            } else if (best_distance < theta_check) {
                ++last_stats.edit_distance_calls;
                join = withinEditDistance(
                    read,
                    reads[clusters[static_cast<std::size_t>(best_cluster)]
                              .representative],
                    cfg.edit_threshold);
            }
        }

        if (join) {
            clusters[static_cast<std::size_t>(best_cluster)]
                .members.push_back(r);
            continue;
        }

        // Found a new cluster; route it into its buckets.
        const std::uint32_t id =
            static_cast<std::uint32_t>(clusters.size());
        clusters.push_back({r, sig, {r}});
        ++last_stats.clusters_created;
        for (const auto &[a, key] : keys)
            buckets[a][key].push_back(id);
    }

    result.clusters.reserve(clusters.size());
    for (auto &state : clusters)
        result.clusters.push_back(std::move(state.members));
    last_stats.seconds = timer.seconds();
    return result;
}

} // namespace dnastore
