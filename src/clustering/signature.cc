#include "clustering/signature.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "dna/qgram.hh"
#include "util/hot.hh"

namespace dnastore
{

const char *
signatureKindName(SignatureKind kind)
{
    return kind == SignatureKind::QGram ? "q-gram" : "w-gram";
}

SignatureScheme::SignatureScheme(SignatureKind kind, Rng &rng, std::size_t q,
                                 std::size_t num_grams)
    : kind_(kind), probes(randomQGramSet(rng, q, num_grams))
{
}

SignatureScheme::SignatureScheme(SignatureKind kind,
                                 std::vector<std::string> probes_in)
    : kind_(kind), probes(std::move(probes_in))
{
    if (probes.empty())
        throw std::invalid_argument("SignatureScheme: empty probe set");
}

DNASTORE_HOT Signature
SignatureScheme::compute(const std::string &read) const
{
    Signature sig;
    sig.values.resize(probes.size());
    const std::size_t q = probes.front().size();

    if (kind_ == SignatureKind::QGram) {
        // One pass over the read collecting its q-grams, then O(1)
        // membership probes: presence bits don't need positions.
        std::unordered_set<std::string_view> present;
        if (read.size() >= q)
            present.reserve(read.size() - q + 1);
        for (std::size_t i = 0; i + q <= read.size(); ++i)
            present.insert(std::string_view(read).substr(i, q));
        for (std::size_t p = 0; p < probes.size(); ++p)
            sig.values[p] = present.count(probes[p]) ? 1 : 0;
        return sig;
    }

    // w-gram: record the first occurrence position of every q-gram of
    // the read (paper Section VI-C: costlier to compute and store than
    // presence bits), then look the probes up.
    std::unordered_map<std::string_view, std::int32_t> first_pos;
    if (read.size() >= q)
        first_pos.reserve(read.size() - q + 1);
    for (std::size_t i = 0; i + q <= read.size(); ++i) {
        first_pos.emplace(std::string_view(read).substr(i, q),
                          static_cast<std::int32_t>(i));
    }
    for (std::size_t p = 0; p < probes.size(); ++p) {
        const auto it = first_pos.find(probes[p]);
        sig.values[p] = it == first_pos.end() ? -1 : it->second;
    }
    return sig;
}

DNASTORE_HOT std::int64_t
SignatureScheme::distance(const Signature &a, const Signature &b) const
{
    if (a.values.size() != b.values.size())
        throw std::invalid_argument("SignatureScheme: dimension mismatch");
    std::int64_t total = 0;
    if (kind_ == SignatureKind::QGram) {
        for (std::size_t i = 0; i < a.values.size(); ++i)
            total += a.values[i] != b.values[i];
    } else {
        for (std::size_t i = 0; i < a.values.size(); ++i)
            total += std::abs(static_cast<std::int64_t>(a.values[i]) -
                              static_cast<std::int64_t>(b.values[i]));
    }
    return total;
}

} // namespace dnastore
