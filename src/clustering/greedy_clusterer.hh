/**
 * @file
 * A single-pass, low-memory alternative clustering module, in the
 * spirit of tree-based online clusterers like Clover (paper Section X):
 * reads are processed one at a time, each read is routed to a small set
 * of candidate clusters through anchor-keyed buckets, compared against
 * cluster representatives by signature distance (with an optional
 * edit-distance confirmation), and either joins the best match or
 * founds a new cluster.
 *
 * Compared to the Rashtchian merge clusterer this trades some accuracy
 * for a single pass over the data and O(clusters) memory — a useful
 * point in the design space when billions of reads do not fit an
 * iterative all-pairs scheme.
 */

#pragma once

#include "clustering/clusterer.hh"

namespace dnastore
{

/** Configuration of the online greedy clusterer. */
struct GreedyClustererConfig
{
    SignatureKind signature = SignatureKind::QGram;
    std::size_t q = 4;           //!< Probe gram length.
    std::size_t num_grams = 60;  //!< Signature dimensionality.
    /** Independent anchor hash functions routing reads to buckets. */
    std::size_t num_anchors = 8;
    std::size_t anchor_len = 3;  //!< Anchor length.
    std::size_t key_len = 4;     //!< Bucket key bases after the anchor.
    /** Join the best candidate if the signature distance is below this;
     *  negative = auto-configure from a sample (Section VI-B). */
    std::int64_t theta_join = -1;
    /** Confirm gray-zone joins with a bounded edit-distance check. */
    std::size_t edit_threshold = 25;
    std::uint64_t seed = 0x92eedbULL; //!< RNG seed (anchors, thresholds).
};

/** Online greedy clusterer. */
class GreedyOnlineClusterer : public Clusterer
{
  public:
    struct Stats
    {
        std::size_t signature_comparisons = 0;
        std::size_t edit_distance_calls = 0;
        std::size_t clusters_created = 0;
        double seconds = 0.0;
    };

    explicit GreedyOnlineClusterer(GreedyClustererConfig config);

    Clustering cluster(const std::vector<Strand> &reads) override;

    std::string name() const override;

    const Stats &stats() const { return last_stats; }

  private:
    GreedyClustererConfig cfg;
    Rng rng;
    Stats last_stats;
};

} // namespace dnastore

