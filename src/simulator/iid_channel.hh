/**
 * @file
 * The generalized i.i.d. insertion/deletion/substitution channel of
 * Rashtchian et al. (paper Section V-A): at every index of the input
 * strand an insertion, deletion or substitution occurs independently
 * with user-specified probabilities.  This is the naive baseline
 * simulation most DNA-storage research uses, and the one the paper
 * shows to be unrealistically easy to reconstruct from.
 */

#pragma once

#include "simulator/channel.hh"

namespace dnastore
{

/** Per-index error probabilities of the i.i.d. channel. */
struct IidChannelConfig
{
    double p_insertion = 0.01;
    double p_deletion = 0.01;
    double p_substitution = 0.01;

    /** Split a total per-index error rate evenly across the 3 types. */
    [[nodiscard]] static IidChannelConfig
    fromTotalErrorRate(double total)
    {
        return {total / 3.0, total / 3.0, total / 3.0};
    }

    double total() const { return p_insertion + p_deletion + p_substitution; }
};

/** Rashtchian-style i.i.d. IDS channel. */
class IidChannel : public Channel
{
  public:
    explicit IidChannel(IidChannelConfig config = {});

    Strand transmit(const Strand &clean, Rng &rng) const override;

    std::string name() const override { return "iid-rashtchian"; }

    const IidChannelConfig &config() const { return cfg; }

  private:
    IidChannelConfig cfg;
};

} // namespace dnastore

