/**
 * @file
 * The data-driven RNN channel of paper Section V-B: a GRU+attention
 * sequence-to-sequence model trained on paired clean/noisy strands
 * (from real wetlab data, or here from the virtual wetlab), then
 * sampled auto-regressively to generate noisy reads whose error
 * structure matches the training channel.
 */

#pragma once

#include "nn/seq2seq.hh"
#include "simulator/channel.hh"

namespace dnastore
{

/** Training knobs for the seq2seq channel. */
struct Seq2SeqChannelConfig
{
    nn::Seq2SeqConfig model{};
    std::size_t epochs = 8;
    std::size_t batch_size = 8;
    double sample_temperature = 1.0;
};

/** Channel backed by a trained seq2seq model. */
class Seq2SeqChannel : public Channel
{
  public:
    explicit Seq2SeqChannel(Seq2SeqChannelConfig config = {});

    /**
     * Train the underlying model on paired data; returns the final
     * epoch's mean per-token NLL.
     */
    double train(const std::vector<nn::StrandPair> &pairs, Rng &rng);

    /** Mean NLL on held-out pairs. */
    double evaluate(const std::vector<nn::StrandPair> &pairs) const;

    Strand transmit(const Strand &clean, Rng &rng) const override;

    std::string name() const override { return "rnn-seq2seq"; }

    nn::Seq2Seq &model() { return net; }
    const nn::Seq2Seq &model() const { return net; }

    /** Adjust the sampling temperature (e.g. after calibration). */
    void
    setSampleTemperature(double temperature)
    {
        cfg.sample_temperature = temperature;
    }

  private:
    Seq2SeqChannelConfig cfg;
    nn::Seq2Seq net;
};

} // namespace dnastore

