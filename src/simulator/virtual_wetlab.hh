/**
 * @file
 * The virtual wetlab: a deliberately complex reference channel that
 * stands in for real synthesis+Nanopore sequencing data (see DESIGN.md,
 * Substitutions).  The paper evaluates simulator fidelity against a real
 * 270K-read dataset; we do not have that dataset, so this channel plays
 * the role of the physical wetlab.  It is used ONLY to generate the
 * "real" datasets that other simulators are judged against and to
 * produce training pairs for the data-driven models — the models under
 * test never see its internals.
 *
 * Error structure, chosen to mirror what wetlab studies report:
 *  - per-read quality tiers (a fraction of reads are much noisier);
 *  - error rate ramps up toward the 3' end and is slightly elevated at
 *    the very start of the strand;
 *  - substitutions are context-dependent (more likely after G/C) and
 *    transition-biased;
 *  - deletions come in bursts with geometric lengths and are more likely
 *    inside homopolymer runs;
 *  - insertions are mostly stutter (duplications of the previous base).
 */

#pragma once

#include "simulator/channel.hh"

namespace dnastore
{

/** Tunable knobs of the virtual wetlab channel. */
struct VirtualWetlabConfig
{
    /** Baseline per-position error rate of a good read (all types). */
    double base_error_rate = 0.10;
    /** Fraction of reads drawn from the noisy tier. */
    double bad_read_fraction = 0.15;
    /** Error-rate multiplier for noisy-tier reads. */
    double bad_read_multiplier = 2.2;
    /** Sigma of the per-read log-normal quality jitter. */
    double read_jitter_sigma = 0.25;
    /** Relative weights of deletion / insertion / substitution events. */
    double w_deletion = 0.45;
    double w_insertion = 0.20;
    double w_substitution = 0.35;
    /** Continuation probability of a deletion burst. */
    double burst_continuation = 0.30;
    /** Multiplier on deletion rate inside homopolymer runs (>= 3). */
    double homopolymer_factor = 2.0;
    /** Strength of the 3'-end ramp (1.0 = rate doubles by the end). */
    double end_ramp = 1.2;
    /** Elevated error multiplier over the first few bases. */
    double start_bump = 0.5;
    /** Probability an insertion duplicates the previous base. */
    double stutter_fraction = 0.7;
};

/** The hidden reference channel ("real" wetlab). */
class VirtualWetlabChannel : public Channel
{
  public:
    explicit VirtualWetlabChannel(VirtualWetlabConfig config = {});

    Strand transmit(const Strand &clean, Rng &rng) const override;

    std::string name() const override { return "virtual-wetlab"; }

    const VirtualWetlabConfig &config() const { return cfg; }

  private:
    VirtualWetlabConfig cfg;
};

} // namespace dnastore

