/**
 * @file
 * Module interface for the wetlab simulation step (paper Section V).
 * A Channel models the noise introduced by synthesis, storage and
 * sequencing: it transforms one clean encoded strand into one noisy
 * read.  Coverage (how many reads each strand receives) is modelled
 * separately by CoverageModel so channels stay composable.
 */

#pragma once

#include <string>

#include "dna/strand.hh"
#include "util/random.hh"

namespace dnastore
{

/** One synthesis+storage+sequencing noise process. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /** Produce one noisy read of a clean strand. */
    virtual Strand transmit(const Strand &clean, Rng &rng) const = 0;

    /** Human-readable module name (for reports). */
    virtual std::string name() const = 0;
};

/** A channel that introduces no errors (for module isolation tests). */
class PerfectChannel : public Channel
{
  public:
    Strand
    transmit(const Strand &clean, Rng &) const override
    {
        return clean;
    }

    std::string name() const override { return "perfect"; }
};

} // namespace dnastore

