#include "simulator/iid_channel.hh"

#include <stdexcept>

#include "dna/base.hh"

namespace dnastore
{

IidChannel::IidChannel(IidChannelConfig config) : cfg(config)
{
    if (cfg.p_insertion < 0 || cfg.p_deletion < 0 || cfg.p_substitution < 0 ||
        cfg.total() > 1.0) {
        throw std::invalid_argument("IidChannel: invalid probabilities");
    }
}

Strand
IidChannel::transmit(const Strand &clean, Rng &rng) const
{
    Strand read;
    read.reserve(clean.size() + 8);
    for (char c : clean) {
        // One trial per index: insertion places a random base before the
        // current one; deletion drops it; substitution replaces it with a
        // different base.
        if (rng.chance(cfg.p_insertion))
            read.push_back(baseToChar(static_cast<std::uint8_t>(rng.below(4))));
        if (rng.chance(cfg.p_deletion))
            continue;
        if (rng.chance(cfg.p_substitution)) {
            const std::uint8_t original = charToCode(c);
            const std::uint8_t replacement = static_cast<std::uint8_t>(
                (original + 1 + rng.below(3)) & 0x3);
            read.push_back(baseToChar(replacement));
        } else {
            read.push_back(c);
        }
    }
    return read;
}

} // namespace dnastore
