#include "simulator/iid_channel.hh"

#include <stdexcept>

#include "dna/base.hh"
#include "obs/metrics.hh"

namespace dnastore
{

namespace
{

/** Process-wide channel error totals, published once per transmit. */
struct ChannelMetrics
{
    obs::Counter &insertions =
        obs::metrics().counter("channel.insertions_total");
    obs::Counter &deletions =
        obs::metrics().counter("channel.deletions_total");
    obs::Counter &substitutions =
        obs::metrics().counter("channel.substitutions_total");
    obs::Counter &bases = obs::metrics().counter("channel.bases_total");
};

ChannelMetrics &
channelMetrics()
{
    static ChannelMetrics metrics;
    return metrics;
}

} // namespace

IidChannel::IidChannel(IidChannelConfig config) : cfg(config)
{
    if (cfg.p_insertion < 0 || cfg.p_deletion < 0 || cfg.p_substitution < 0 ||
        cfg.total() > 1.0) {
        throw std::invalid_argument("IidChannel: invalid probabilities");
    }
}

Strand
IidChannel::transmit(const Strand &clean, Rng &rng) const
{
    Strand read;
    read.reserve(clean.size() + 8);
    std::uint64_t insertions = 0;
    std::uint64_t deletions = 0;
    std::uint64_t substitutions = 0;
    for (char c : clean) {
        // One trial per index: insertion places a random base before the
        // current one; deletion drops it; substitution replaces it with a
        // different base.
        if (rng.chance(cfg.p_insertion)) {
            read.push_back(baseToChar(static_cast<std::uint8_t>(rng.below(4))));
            ++insertions;
        }
        if (rng.chance(cfg.p_deletion)) {
            ++deletions;
            continue;
        }
        if (rng.chance(cfg.p_substitution)) {
            const std::uint8_t original = charToCode(c);
            const std::uint8_t replacement = static_cast<std::uint8_t>(
                (original + 1 + rng.below(3)) & 0x3);
            read.push_back(baseToChar(replacement));
            ++substitutions;
        } else {
            read.push_back(c);
        }
    }
    ChannelMetrics &metrics = channelMetrics();
    metrics.insertions.add(insertions);
    metrics.deletions.add(deletions);
    metrics.substitutions.add(substitutions);
    metrics.bases.add(clean.size());
    return read;
}

} // namespace dnastore
