/**
 * @file
 * Error-profile measurement (paper Section V-A, metrics (i)-(iv)).
 * Profiles are computed either on raw channel output (via alignment of
 * clean/noisy pairs) or on reconstruction output (per-index mismatch
 * rate between original and reconstructed strands), which is the
 * pipeline-level fidelity metric the paper argues for.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "dna/strand.hh"

namespace dnastore
{

/** Per-index channel error rates measured from aligned read pairs. */
struct ChannelErrorProfile
{
    std::vector<double> substitution_rate; //!< Per reference index.
    std::vector<double> deletion_rate;     //!< Per reference index.
    std::vector<double> insertion_rate;    //!< Per reference gap slot.
    double mean_error_rate = 0.0;          //!< All events / all positions.
    double mean_read_length = 0.0;
};

/**
 * Align each (clean, read) pair and accumulate per-index error rates.
 * clean.size() must equal reads.size(); pairs are aligned index-wise.
 */
ChannelErrorProfile
measureChannelErrors(const std::vector<Strand> &clean,
                     const std::vector<Strand> &reads);

/**
 * Per-index reconstruction error profile (paper metric (i)): fraction
 * of strands whose reconstructed base at index i differs from the
 * original.  Reconstructed strands shorter than the original count as
 * errors at the missing indexes.
 */
struct ReconstructionProfile
{
    std::vector<double> error_rate;   //!< Per index, metric (i).
    double mean_error_rate = 0.0;     //!< Metric (ii).
    std::size_t perfect_strands = 0;  //!< Metric (iv).
    std::size_t total_strands = 0;
};

ReconstructionProfile
measureReconstruction(const std::vector<Strand> &originals,
                      const std::vector<Strand> &reconstructed);

/**
 * Metric (iii): mean absolute per-index difference between two
 * reconstruction profiles (a simulator under test vs the reference).
 * Profiles are compared index-wise up to the shorter length.
 */
double profileDeviation(const ReconstructionProfile &test,
                        const ReconstructionProfile &reference);

} // namespace dnastore

