/**
 * @file
 * SOLQC-style probabilistic channel (paper Section V-A): error
 * probabilities are conditioned on the nucleotide being processed, with
 * a per-nucleotide substitution matrix, and insertions are modelled as
 * *pre*-insertions only.  The paper notes that this asymmetry makes
 * forward reconstruction noticeably harder than reverse reconstruction,
 * which our fidelity benchmark reproduces.
 */

#pragma once

#include <array>

#include "simulator/channel.hh"

namespace dnastore
{

/** Per-nucleotide error rates of the SOLQC-style channel. */
struct SolqcChannelConfig
{
    /** Pre-insertion probability conditioned on the current base. */
    std::array<double, 4> p_pre_insertion{0.008, 0.010, 0.012, 0.009};
    /** Deletion probability conditioned on the current base. */
    std::array<double, 4> p_deletion{0.010, 0.012, 0.014, 0.011};
    /** Substitution probability conditioned on the current base. */
    std::array<double, 4> p_substitution{0.009, 0.011, 0.010, 0.012};
    /**
     * Substitution target distribution sub_matrix[from][to]; diagonal
     * entries are ignored and rows need not be normalised.
     */
    std::array<std::array<double, 4>, 4> sub_matrix{{
        {0.0, 0.2, 0.6, 0.2},   // A -> G transition favoured
        {0.2, 0.0, 0.2, 0.6},   // C -> T transition favoured
        {0.6, 0.2, 0.0, 0.2},   // G -> A transition favoured
        {0.2, 0.6, 0.2, 0.0},   // T -> C transition favoured
    }};

    /** Scale all event probabilities so the mean total matches `total`. */
    [[nodiscard]] static SolqcChannelConfig fromTotalErrorRate(double total);
};

/** Nucleotide-conditioned channel with pre-insertions only. */
class SolqcChannel : public Channel
{
  public:
    explicit SolqcChannel(SolqcChannelConfig config = {});

    Strand transmit(const Strand &clean, Rng &rng) const override;

    std::string name() const override { return "solqc"; }

    const SolqcChannelConfig &config() const { return cfg; }

  private:
    SolqcChannelConfig cfg;
};

} // namespace dnastore

