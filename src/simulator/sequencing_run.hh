/**
 * @file
 * Drives one simulated wetlab round trip: replicates every encoded
 * strand according to a coverage model, pushes each copy through a
 * Channel, and shuffles the resulting reads — exactly what a sequencer
 * hands back (paper Sections III and V).  Ground-truth origins are kept
 * alongside for evaluating clustering and reconstruction.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "simulator/channel.hh"
#include "simulator/coverage.hh"

namespace dnastore
{

/** The output of a simulated synthesis+sequencing round trip. */
struct SequencingRun
{
    /** Noisy reads, in shuffled (sequencer) order. */
    std::vector<Strand> reads;
    /**
     * Ground truth: origin[i] is the index of the encoded strand that
     * produced reads[i].  Available only in simulation; used by the
     * evaluation harness, never by the pipeline itself.
     */
    std::vector<std::uint32_t> origin;
    /** Number of strands that received zero reads (dropouts). */
    std::size_t dropped_strands = 0;
};

/**
 * Simulate sequencing of @p strands through @p channel with coverage
 * drawn from @p coverage.  Reads are shuffled unless @p shuffle is
 * false (useful for deterministic unit tests).
 */
SequencingRun
simulateSequencing(const std::vector<Strand> &strands, const Channel &channel,
                   const CoverageModel &coverage, Rng &rng,
                   bool shuffle = true);

} // namespace dnastore

