#include "simulator/seq2seq_channel.hh"

namespace dnastore
{

Seq2SeqChannel::Seq2SeqChannel(Seq2SeqChannelConfig config)
    : cfg(config), net(cfg.model)
{
}

double
Seq2SeqChannel::train(const std::vector<nn::StrandPair> &pairs, Rng &rng)
{
    return net.train(pairs, cfg.epochs, cfg.batch_size, rng);
}

double
Seq2SeqChannel::evaluate(const std::vector<nn::StrandPair> &pairs) const
{
    return net.evaluate(pairs);
}

Strand
Seq2SeqChannel::transmit(const Strand &clean, Rng &rng) const
{
    return net.sample(clean, rng, cfg.sample_temperature);
}

} // namespace dnastore
