/**
 * @file
 * Sequencing coverage models (paper Section II-E): how many noisy reads
 * each synthesized strand receives.  Real sequencing runs produce a
 * skewed distribution of reads per molecule, including complete
 * dropouts, which the decoder sees as erasures.
 */

#pragma once

#include <cstdint>
#include <string>

#include "util/random.hh"

namespace dnastore
{

/** Shape of the reads-per-strand distribution. */
enum class CoverageDistribution
{
    Fixed,         //!< Exactly mean reads for every strand.
    Poisson,       //!< Poisson(mean): the classic shotgun model.
    LogNormalSkew, //!< Log-normal with matched mean: heavy-tailed runs.
};

/** Reads-per-strand model. */
class CoverageModel
{
  public:
    /**
     * @param mean     Average reads per strand (> 0).
     * @param shape    Distribution family.
     * @param dropout  Probability a strand yields no reads at all,
     *                 applied before drawing the count.
     */
    CoverageModel(double mean,
                  CoverageDistribution shape = CoverageDistribution::Fixed,
                  double dropout = 0.0);

    /** Draw the number of reads for one strand. */
    std::uint64_t draw(Rng &rng) const;

    double mean() const { return mu; }
    double dropoutRate() const { return dropout; }
    CoverageDistribution shape() const { return dist; }
    std::string shapeName() const;

  private:
    double mu;
    CoverageDistribution dist;
    double dropout;
};

} // namespace dnastore

