/**
 * @file
 * A learned statistical channel: position- and context-dependent error
 * rates with burst deletions, fitted from paired clean/noisy strands.
 * This is the cheap data-driven alternative to the seq2seq model (an
 * ablation point in DESIGN.md): it captures the first-order structure
 * of a real channel — positional ramp, context bias, bursts, per-read
 * quality spread — without sequence-level memory.
 */

#pragma once

#include <array>
#include <vector>

#include "simulator/channel.hh"

namespace dnastore
{

/** Fitted parameters of the Markov channel. */
struct MarkovChannelModel
{
    /** Number of relative-position buckets along the strand. */
    static constexpr std::size_t kBuckets = 12;

    /** Per (bucket, base) event rates. */
    struct Cell
    {
        double p_substitution = 0.0;
        double p_deletion = 0.0;
        double p_insertion = 0.0;
    };
    std::array<std::array<Cell, 4>, kBuckets> cells{};

    /** Substitution target distribution [from][to]. */
    std::array<std::array<double, 4>, 4> sub_matrix{};

    /** Probability a deletion burst continues past each base. */
    double burst_continuation = 0.0;

    /** Probability an insertion duplicates the preceding read base. */
    double stutter_fraction = 0.5;

    /** Log-normal parameters of per-read quality (normalised mean 1). */
    double read_sigma = 0.0;

    /** Bucket of reference position i in a strand of length len. */
    static std::size_t
    bucketOf(std::size_t i, std::size_t len)
    {
        if (len == 0)
            return 0;
        const std::size_t b = i * kBuckets / len;
        return b < kBuckets ? b : kBuckets - 1;
    }
};

/**
 * Channel driven by a MarkovChannelModel.  Use fit() to learn the model
 * from paired data produced by a reference channel (or real data).
 */
class MarkovChannel : public Channel
{
  public:
    explicit MarkovChannel(MarkovChannelModel model);

    /**
     * Fit a model from paired clean/noisy strands via global alignment.
     * clean.size() must equal noisy.size().
     */
    static MarkovChannelModel fit(const std::vector<Strand> &clean,
                                  const std::vector<Strand> &noisy);

    Strand transmit(const Strand &clean, Rng &rng) const override;

    std::string name() const override { return "markov-learned"; }

    const MarkovChannelModel &model() const { return mdl; }

  private:
    MarkovChannelModel mdl;
};

} // namespace dnastore

