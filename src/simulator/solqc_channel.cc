#include "simulator/solqc_channel.hh"

#include <stdexcept>

#include "dna/base.hh"

namespace dnastore
{

SolqcChannelConfig
SolqcChannelConfig::fromTotalErrorRate(double total)
{
    SolqcChannelConfig cfg;
    double mean = 0.0;
    for (int b = 0; b < 4; ++b) {
        mean += cfg.p_pre_insertion[static_cast<std::size_t>(b)];
        mean += cfg.p_deletion[static_cast<std::size_t>(b)];
        mean += cfg.p_substitution[static_cast<std::size_t>(b)];
    }
    mean /= 4.0;
    const double scale = total / mean;
    for (int b = 0; b < 4; ++b) {
        cfg.p_pre_insertion[static_cast<std::size_t>(b)] *= scale;
        cfg.p_deletion[static_cast<std::size_t>(b)] *= scale;
        cfg.p_substitution[static_cast<std::size_t>(b)] *= scale;
    }
    return cfg;
}

SolqcChannel::SolqcChannel(SolqcChannelConfig config) : cfg(config)
{
    for (int b = 0; b < 4; ++b) {
        const auto i = static_cast<std::size_t>(b);
        if (cfg.p_pre_insertion[i] < 0 || cfg.p_deletion[i] < 0 ||
            cfg.p_substitution[i] < 0 ||
            cfg.p_pre_insertion[i] + cfg.p_deletion[i] +
                    cfg.p_substitution[i] > 1.0) {
            throw std::invalid_argument("SolqcChannel: invalid probabilities");
        }
    }
}

Strand
SolqcChannel::transmit(const Strand &clean, Rng &rng) const
{
    Strand read;
    read.reserve(clean.size() + 8);
    for (char c : clean) {
        const std::uint8_t code = charToCode(c);
        if (code == 0xff) {
            read.push_back(c);
            continue;
        }
        // Pre-insertion only: a duplicate-biased random base *before*
        // the current one.  No post-insertions, matching SOLQC's model.
        if (rng.chance(cfg.p_pre_insertion[code])) {
            const bool duplicate = rng.chance(0.5);
            const std::uint8_t inserted = duplicate
                ? code
                : static_cast<std::uint8_t>(rng.below(4));
            read.push_back(baseToChar(inserted));
        }
        if (rng.chance(cfg.p_deletion[code]))
            continue;
        if (rng.chance(cfg.p_substitution[code])) {
            std::vector<double> weights(4);
            for (int to = 0; to < 4; ++to)
                weights[static_cast<std::size_t>(to)] =
                    cfg.sub_matrix[code][static_cast<std::size_t>(to)];
            weights[code] = 0.0;
            const std::uint8_t target =
                static_cast<std::uint8_t>(rng.weightedIndex(weights));
            read.push_back(baseToChar(target));
        } else {
            read.push_back(c);
        }
    }
    return read;
}

} // namespace dnastore
