#include "simulator/coverage.hh"

#include <cmath>
#include <stdexcept>

namespace dnastore
{

CoverageModel::CoverageModel(double mean, CoverageDistribution shape,
                             double dropout_prob)
    : mu(mean), dist(shape), dropout(dropout_prob)
{
    if (mean <= 0.0)
        throw std::invalid_argument("CoverageModel: mean must be positive");
    if (dropout < 0.0 || dropout >= 1.0)
        throw std::invalid_argument("CoverageModel: dropout out of range");
}

std::uint64_t
CoverageModel::draw(Rng &rng) const
{
    if (dropout > 0.0 && rng.chance(dropout))
        return 0;
    switch (dist) {
      case CoverageDistribution::Fixed:
        return static_cast<std::uint64_t>(mu + 0.5);
      case CoverageDistribution::Poisson:
        return rng.poisson(mu);
      case CoverageDistribution::LogNormalSkew: {
        // Log-normal with sigma 0.6, mu chosen so the mean matches.
        constexpr double sigma = 0.6;
        const double mu_log = std::log(mu) - sigma * sigma / 2.0;
        return static_cast<std::uint64_t>(rng.logNormal(mu_log, sigma) + 0.5);
      }
    }
    return 0;
}

std::string
CoverageModel::shapeName() const
{
    switch (dist) {
      case CoverageDistribution::Fixed: return "fixed";
      case CoverageDistribution::Poisson: return "poisson";
      case CoverageDistribution::LogNormalSkew: return "lognormal";
    }
    return "unknown";
}

} // namespace dnastore
