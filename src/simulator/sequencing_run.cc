#include "simulator/sequencing_run.hh"

#include <numeric>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace dnastore
{

SequencingRun
simulateSequencing(const std::vector<Strand> &strands, const Channel &channel,
                   const CoverageModel &coverage, Rng &rng, bool shuffle)
{
    obs::Span span("simulation/sequencing_run");
    SequencingRun run;
    for (std::size_t s = 0; s < strands.size(); ++s) {
        const std::uint64_t copies = coverage.draw(rng);
        if (copies == 0)
            ++run.dropped_strands;
        for (std::uint64_t copy = 0; copy < copies; ++copy) {
            run.reads.push_back(channel.transmit(strands[s], rng));
            run.origin.push_back(static_cast<std::uint32_t>(s));
        }
    }
    if (shuffle) {
        std::vector<std::size_t> perm(run.reads.size());
        std::iota(perm.begin(), perm.end(), 0);
        rng.shuffle(perm);
        std::vector<Strand> reads(run.reads.size());
        std::vector<std::uint32_t> origin(run.origin.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
            reads[i] = std::move(run.reads[perm[i]]);
            origin[i] = run.origin[perm[i]];
        }
        run.reads = std::move(reads);
        run.origin = std::move(origin);
    }
    obs::metrics().counter("simulation.strands_total").add(strands.size());
    obs::metrics().counter("simulation.reads_total").add(run.reads.size());
    obs::metrics()
        .counter("simulation.dropped_strands_total")
        .add(run.dropped_strands);
    return run;
}

} // namespace dnastore
