#include "simulator/error_profile.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dna/align.hh"

namespace dnastore
{

ChannelErrorProfile
measureChannelErrors(const std::vector<Strand> &clean,
                     const std::vector<Strand> &reads)
{
    if (clean.size() != reads.size())
        throw std::invalid_argument("measureChannelErrors: size mismatch");

    std::size_t max_len = 0;
    for (const Strand &s : clean)
        max_len = std::max(max_len, s.size());

    std::vector<double> subs(max_len, 0), dels(max_len, 0),
        ins(max_len + 1, 0), visits(max_len, 0);
    double events = 0.0, positions = 0.0, read_len = 0.0;

    for (std::size_t p = 0; p < clean.size(); ++p) {
        const auto ops = classifyEdits(clean[p], reads[p]);
        for (const EditOp &op : ops) {
            switch (op.kind) {
              case EditKind::Match:
                break;
              case EditKind::Substitution:
                subs[op.ref_pos] += 1;
                events += 1;
                break;
              case EditKind::Deletion:
                dels[op.ref_pos] += 1;
                events += 1;
                break;
              case EditKind::Insertion:
                ins[op.ref_pos] += 1;
                events += 1;
                break;
            }
        }
        for (std::size_t i = 0; i < clean[p].size(); ++i)
            visits[i] += 1;
        positions += static_cast<double>(clean[p].size());
        read_len += static_cast<double>(reads[p].size());
    }

    ChannelErrorProfile profile;
    profile.substitution_rate.resize(max_len, 0.0);
    profile.deletion_rate.resize(max_len, 0.0);
    profile.insertion_rate.resize(max_len + 1, 0.0);
    for (std::size_t i = 0; i < max_len; ++i) {
        if (visits[i] > 0) {
            profile.substitution_rate[i] = subs[i] / visits[i];
            profile.deletion_rate[i] = dels[i] / visits[i];
            profile.insertion_rate[i] = ins[i] / visits[i];
        }
    }
    if (!clean.empty()) {
        profile.mean_error_rate = positions > 0 ? events / positions : 0.0;
        profile.mean_read_length =
            read_len / static_cast<double>(reads.size());
    }
    return profile;
}

ReconstructionProfile
measureReconstruction(const std::vector<Strand> &originals,
                      const std::vector<Strand> &reconstructed)
{
    if (originals.size() != reconstructed.size())
        throw std::invalid_argument("measureReconstruction: size mismatch");

    std::size_t max_len = 0;
    for (const Strand &s : originals)
        max_len = std::max(max_len, s.size());

    std::vector<double> errors(max_len, 0), visits(max_len, 0);
    ReconstructionProfile profile;
    profile.total_strands = originals.size();

    for (std::size_t p = 0; p < originals.size(); ++p) {
        const Strand &orig = originals[p];
        const Strand &rec = reconstructed[p];
        bool perfect = rec.size() == orig.size();
        for (std::size_t i = 0; i < orig.size(); ++i) {
            visits[i] += 1;
            const bool wrong = i >= rec.size() || rec[i] != orig[i];
            if (wrong) {
                errors[i] += 1;
                perfect = false;
            }
        }
        profile.perfect_strands += perfect;
    }

    profile.error_rate.resize(max_len, 0.0);
    double total_err = 0, total_visits = 0;
    for (std::size_t i = 0; i < max_len; ++i) {
        if (visits[i] > 0)
            profile.error_rate[i] = errors[i] / visits[i];
        total_err += errors[i];
        total_visits += visits[i];
    }
    profile.mean_error_rate =
        total_visits > 0 ? total_err / total_visits : 0.0;
    return profile;
}

double
profileDeviation(const ReconstructionProfile &test,
                 const ReconstructionProfile &reference)
{
    const std::size_t len =
        std::min(test.error_rate.size(), reference.error_rate.size());
    if (len == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < len; ++i)
        sum += std::abs(test.error_rate[i] - reference.error_rate[i]);
    return sum / static_cast<double>(len);
}

} // namespace dnastore
