#include "simulator/virtual_wetlab.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dna/base.hh"

namespace dnastore
{

VirtualWetlabChannel::VirtualWetlabChannel(VirtualWetlabConfig config)
    : cfg(config)
{
    if (cfg.base_error_rate < 0 || cfg.base_error_rate > 0.5)
        throw std::invalid_argument(
            "VirtualWetlabChannel: base_error_rate out of range");
    if (cfg.w_deletion < 0 || cfg.w_insertion < 0 || cfg.w_substitution < 0 ||
        cfg.w_deletion + cfg.w_insertion + cfg.w_substitution <= 0) {
        throw std::invalid_argument(
            "VirtualWetlabChannel: invalid event weights");
    }
}

Strand
VirtualWetlabChannel::transmit(const Strand &clean, Rng &rng) const
{
    // Per-read quality: tier plus log-normal jitter.
    double read_factor =
        rng.logNormal(0.0, cfg.read_jitter_sigma);
    if (rng.chance(cfg.bad_read_fraction))
        read_factor *= cfg.bad_read_multiplier;

    const double len =
        static_cast<double>(std::max<std::size_t>(clean.size(), 1));

    Strand read;
    read.reserve(clean.size() + 8);
    std::size_t i = 0;
    std::size_t run = 0; // current homopolymer run length ending at i-1
    char prev = '\0';
    while (i < clean.size()) {
        const char c = clean[i];
        run = (c == prev) ? run + 1 : 1;
        prev = c;

        // Position profile: elevated start, ramp toward the 3' end.
        const double x = static_cast<double>(i) / len;
        double position_factor = 1.0 + cfg.end_ramp * std::pow(x, 1.5);
        if (i < 4)
            position_factor += cfg.start_bump;

        double rate = cfg.base_error_rate * read_factor * position_factor;
        rate = std::min(rate, 0.75);

        if (!rng.chance(rate)) {
            read.push_back(c);
            ++i;
            continue;
        }

        // An error happens here; pick its type.
        double w_del = cfg.w_deletion;
        if (run >= 3)
            w_del *= cfg.homopolymer_factor;
        const double pick =
            rng.uniform() * (w_del + cfg.w_insertion + cfg.w_substitution);
        if (pick < w_del) {
            // Deletion burst: drop this base and, with geometric
            // continuation, the following ones.
            ++i;
            while (i < clean.size() && rng.chance(cfg.burst_continuation)) {
                prev = clean[i];
                ++i;
            }
            run = 0;
            continue;
        }
        if (pick < w_del + cfg.w_insertion) {
            // Stutter insertion (usually duplicates the previous base).
            char inserted;
            if (!read.empty() && rng.chance(cfg.stutter_fraction))
                inserted = read.back();
            else
                inserted = baseToChar(static_cast<std::uint8_t>(rng.below(4)));
            read.push_back(inserted);
            // The current base is emitted as well (pre-insertion).
            read.push_back(c);
            ++i;
            continue;
        }
        // Substitution: context-dependent, transition-biased.
        const std::uint8_t code = charToCode(c);
        std::uint8_t target;
        // Transitions (A<->G, C<->T) are 3x likelier than transversions.
        const std::uint8_t transition = static_cast<std::uint8_t>(code ^ 0x2);
        if (rng.chance(0.6)) {
            target = transition;
        } else {
            target = static_cast<std::uint8_t>((code + 1 + rng.below(3)) & 3);
        }
        // Context: after G or C, substitutions skew harder to transitions.
        if (i > 0 && (clean[i - 1] == 'G' || clean[i - 1] == 'C') &&
            rng.chance(0.3)) {
            target = transition;
        }
        if (target == code)
            target = static_cast<std::uint8_t>((code + 1) & 3);
        read.push_back(baseToChar(target));
        ++i;
    }
    return read;
}

} // namespace dnastore
