#include "simulator/markov_channel.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dna/align.hh"
#include "dna/base.hh"

namespace dnastore
{

MarkovChannel::MarkovChannel(MarkovChannelModel model) : mdl(model)
{
}

MarkovChannelModel
MarkovChannel::fit(const std::vector<Strand> &clean,
                   const std::vector<Strand> &noisy)
{
    if (clean.size() != noisy.size())
        throw std::invalid_argument("MarkovChannel::fit: size mismatch");
    if (clean.empty())
        throw std::invalid_argument("MarkovChannel::fit: no pairs");

    MarkovChannelModel model;
    using Counts = MarkovChannelModel::Cell;
    std::array<std::array<Counts, 4>, MarkovChannelModel::kBuckets> counts{};
    std::array<std::array<double, 4>, MarkovChannelModel::kBuckets>
        visits{};
    std::array<std::array<double, 4>, 4> sub_counts{};
    double del_events = 0, del_continuations = 0;
    double ins_events = 0, ins_stutters = 0;
    std::vector<double> read_rates;
    read_rates.reserve(clean.size());

    for (std::size_t p = 0; p < clean.size(); ++p) {
        const auto ops = classifyEdits(clean[p], noisy[p]);
        const std::size_t len = clean[p].size();
        double errors = 0;
        bool prev_was_deletion = false;
        char prev_read_char = '\0';
        for (const EditOp &op : ops) {
            const std::size_t bucket =
                MarkovChannelModel::bucketOf(op.ref_pos, len);
            switch (op.kind) {
              case EditKind::Match: {
                const std::uint8_t code = charToCode(op.ref_char);
                visits[bucket][code] += 1;
                prev_was_deletion = false;
                prev_read_char = op.read_char;
                break;
              }
              case EditKind::Substitution: {
                const std::uint8_t from = charToCode(op.ref_char);
                const std::uint8_t to = charToCode(op.read_char);
                visits[bucket][from] += 1;
                counts[bucket][from].p_substitution += 1;
                sub_counts[from][to] += 1;
                errors += 1;
                prev_was_deletion = false;
                prev_read_char = op.read_char;
                break;
              }
              case EditKind::Deletion: {
                const std::uint8_t code = charToCode(op.ref_char);
                visits[bucket][code] += 1;
                if (prev_was_deletion) {
                    del_continuations += 1;
                } else {
                    counts[bucket][code].p_deletion += 1;
                }
                del_events += 1;
                errors += 1;
                prev_was_deletion = true;
                break;
              }
              case EditKind::Insertion: {
                // Attribute the insertion to the base that follows it,
                // when there is one.
                const std::size_t anchor =
                    std::min(op.ref_pos, len > 0 ? len - 1 : 0);
                const std::uint8_t code =
                    len > 0 ? charToCode(clean[p][anchor]) : 0;
                counts[bucket][code].p_insertion += 1;
                ins_events += 1;
                ins_stutters += op.read_char == prev_read_char;
                errors += 1;
                prev_was_deletion = false;
                prev_read_char = op.read_char;
                break;
              }
            }
        }
        if (len > 0)
            read_rates.push_back(errors / static_cast<double>(len));
    }

    for (std::size_t b = 0; b < MarkovChannelModel::kBuckets; ++b) {
        for (int base = 0; base < 4; ++base) {
            const auto i = static_cast<std::size_t>(base);
            const double v = std::max(visits[b][i], 1.0);
            model.cells[b][i].p_substitution =
                counts[b][i].p_substitution / v;
            model.cells[b][i].p_deletion = counts[b][i].p_deletion / v;
            model.cells[b][i].p_insertion = counts[b][i].p_insertion / v;
        }
    }
    for (int from = 0; from < 4; ++from) {
        const auto f = static_cast<std::size_t>(from);
        double row = 0;
        for (int to = 0; to < 4; ++to)
            row += sub_counts[f][static_cast<std::size_t>(to)];
        for (int to = 0; to < 4; ++to) {
            const auto t = static_cast<std::size_t>(to);
            model.sub_matrix[f][t] = row > 0
                ? sub_counts[f][t] / row
                : (from == to ? 0.0 : 1.0 / 3.0);
        }
    }
    model.burst_continuation =
        del_events > 0 ? del_continuations / del_events : 0.0;
    model.stutter_fraction =
        ins_events > 0 ? ins_stutters / ins_events : 0.5;

    // Per-read quality spread: sigma of log(rate / mean_rate).
    double mean_rate = 0;
    for (double r : read_rates)
        mean_rate += r;
    mean_rate /= static_cast<double>(read_rates.size());
    if (mean_rate > 0) {
        double var = 0;
        std::size_t n = 0;
        for (double r : read_rates) {
            if (r <= 0)
                continue;
            const double l = std::log(r / mean_rate);
            var += l * l;
            ++n;
        }
        model.read_sigma = n > 1 ? std::sqrt(var / static_cast<double>(n))
                                 : 0.0;
    }
    return model;
}

Strand
MarkovChannel::transmit(const Strand &clean, Rng &rng) const
{
    // Per-read quality factor, normalised to mean 1.
    double factor = 1.0;
    if (mdl.read_sigma > 0) {
        factor = rng.logNormal(-mdl.read_sigma * mdl.read_sigma / 2.0,
                               mdl.read_sigma);
    }

    Strand read;
    read.reserve(clean.size() + 8);
    const std::size_t len = clean.size();
    std::size_t i = 0;
    while (i < len) {
        const char c = clean[i];
        const std::uint8_t code = charToCode(c);
        if (code == 0xff) {
            read.push_back(c);
            ++i;
            continue;
        }
        const auto &cell =
            mdl.cells[MarkovChannelModel::bucketOf(i, len)][code];

        if (rng.chance(std::min(1.0, cell.p_insertion * factor))) {
            char inserted;
            if (!read.empty() && rng.chance(mdl.stutter_fraction))
                inserted = read.back();
            else
                inserted = baseToChar(static_cast<std::uint8_t>(rng.below(4)));
            read.push_back(inserted);
        }
        if (rng.chance(std::min(1.0, cell.p_deletion * factor))) {
            ++i;
            while (i < len && rng.chance(mdl.burst_continuation))
                ++i;
            continue;
        }
        if (rng.chance(std::min(1.0, cell.p_substitution * factor))) {
            std::vector<double> weights(4);
            for (int to = 0; to < 4; ++to)
                weights[static_cast<std::size_t>(to)] =
                    mdl.sub_matrix[code][static_cast<std::size_t>(to)];
            weights[code] = 0.0;
            double total = 0;
            for (double w : weights)
                total += w;
            std::uint8_t target;
            if (total <= 0)
                target = static_cast<std::uint8_t>((code + 1) & 3);
            else
                target = static_cast<std::uint8_t>(rng.weightedIndex(weights));
            read.push_back(baseToChar(target));
        } else {
            read.push_back(c);
        }
        ++i;
    }
    return read;
}

} // namespace dnastore
