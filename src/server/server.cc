#include "server/server.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/json.hh"
#include "obs/report.hh"

namespace dnastore::server
{

namespace
{

/** Wakeup-pipe bytes: worker completion vs drain request. */
constexpr char kWakeCompletion = 'w';
constexpr char kWakeDrain = 'q';

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/** Encode one single-body reply frame. */
std::vector<std::uint8_t>
frameBytes(MsgType type, std::uint64_t request_id,
           std::vector<std::uint8_t> body)
{
    Frame frame;
    frame.type = static_cast<std::uint8_t>(type);
    frame.request_id = request_id;
    frame.body = std::move(body);
    std::vector<std::uint8_t> out;
    if (!encodeFrame(frame, out)) {
        out.clear();
        Frame error;
        error.type = static_cast<std::uint8_t>(MsgType::Error);
        error.request_id = request_id;
        error.body = makeErrorBody(ServerStatus::FrameTooLarge,
                                   "reply exceeds frame limit");
        (void)encodeFrame(error, out);
    }
    return out;
}

std::vector<std::uint8_t>
errorBytes(std::uint64_t request_id, ServerStatus status,
           std::string_view message)
{
    return frameBytes(MsgType::Error, request_id,
                      makeErrorBody(status, message));
}

std::vector<std::uint8_t>
textBody(std::string_view text)
{
    return {text.begin(), text.end()};
}

} // namespace

Server::Server(Backend &backend, const ServerConfig &config)
    : backend_(backend)
    , config_(config)
    , scheduler_(backend, config.scheduler)
{
}

Server::~Server()
{
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    if (wake_rd_ >= 0)
        ::close(wake_rd_);
    if (wake_wr_ >= 0)
        ::close(wake_wr_);
    // sessions_ close their own fds; scheduler_ (declared last) drains
    // first, so no worker can post a completion past this point.
}

ServerStatus
Server::start()
{
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        return ServerStatus::Internal;
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
    if (!setNonBlocking(wake_rd_) || !setNonBlocking(wake_wr_))
        return ServerStatus::Internal;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return ServerStatus::Internal;
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return ServerStatus::Internal;

    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0)
        return ServerStatus::Internal;
    port_ = ntohs(addr.sin_port);

    if (!setNonBlocking(listen_fd_) || ::listen(listen_fd_, 64) != 0)
        return ServerStatus::Internal;
    return ServerStatus::Ok;
}

void
Server::requestDrain()
{
    if (wake_wr_ < 0)
        return;
    const char byte = kWakeDrain;
    for (;;) {
        const ssize_t n = ::write(wake_wr_, &byte, 1);
        if (n == 1 || (n < 0 && errno != EINTR))
            break;
    }
}

void
Server::postCompletion(std::uint64_t session_id,
                       std::vector<std::uint8_t> bytes)
{
    {
        MutexLock lock(completions_mu_);
        completions_.push_back({session_id, std::move(bytes)});
    }
    // Poke the loop AFTER unlocking (R11: no blocking I/O under a
    // mutex).  A full pipe is fine: the loop is already due to wake.
    if (wake_wr_ >= 0) {
        const char byte = kWakeCompletion;
        for (;;) {
            const ssize_t n = ::write(wake_wr_, &byte, 1);
            if (n == 1 || (n < 0 && errno != EINTR))
                break;
        }
    }
}

void
Server::drainCompletions()
{
    std::deque<Completion> batch;
    {
        MutexLock lock(completions_mu_);
        batch.swap(completions_);
    }
    for (Completion &completion : batch) {
        auto it = sessions_.find(completion.session_id);
        if (it == sessions_.end())
            continue; // Client disconnected mid-request; drop.
        it->second->enqueue(std::move(completion.bytes));
    }
}

bool
Server::drainWakePipe()
{
    bool drain_requested = false;
    char buf[256];
    for (;;) {
        const ssize_t n = ::read(wake_rd_, buf, sizeof(buf));
        if (n <= 0)
            break;
        for (ssize_t i = 0; i < n; ++i)
            if (buf[i] == kWakeDrain)
                drain_requested = true;
    }
    return drain_requested;
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    scheduler_.beginDrain();
}

void
Server::acceptPending()
{
    while (listen_fd_ >= 0) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN or a transient accept failure.
        }
        if (sessions_.size() >= config_.max_sessions ||
            !setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
        const std::uint64_t id = next_session_id_++;
        sessions_.emplace(id, std::make_unique<Session>(fd, id));
        ++sessions_accepted_;
    }
}

void
Server::closeSession(std::uint64_t session_id)
{
    sessions_.erase(session_id);
}

void
Server::handleFrame(Session &session, Frame &frame)
{
    session.countRequest();
    const std::uint64_t rid = frame.request_id;
    const std::uint64_t sid = session.id();
    const MsgType type = static_cast<MsgType>(frame.type);
    const std::size_t chunk = config_.data_chunk;

    switch (type) {
    case MsgType::Ping: {
        session.enqueue(frameBytes(MsgType::Pong, rid,
                                   std::move(frame.body)));
        return;
    }
    case MsgType::Get: {
        if (frame.body.empty() || frame.body.size() > kMaxNameLen) {
            session.enqueue(errorBytes(rid, ServerStatus::InvalidRequest,
                                       "bad object name"));
            return;
        }
        const std::string name(frame.body.begin(), frame.body.end());
        const ServerStatus admitted = scheduler_.submitGet(
            sid, name, [this, sid, rid, chunk](const FetchResult &r) {
                std::vector<std::uint8_t> bytes;
                if (r.ok())
                    appendDataFrames(bytes, rid, r.data, chunk);
                else
                    bytes = errorBytes(rid, r.status, r.error);
                postCompletion(sid, std::move(bytes));
            });
        if (admitted != ServerStatus::Ok)
            session.enqueue(
                errorBytes(rid, admitted, serverStatusName(admitted)));
        return;
    }
    case MsgType::Put: {
        PutBody put;
        if (!tryParsePutBody(frame.body, put)) {
            session.enqueue(errorBytes(rid, ServerStatus::InvalidRequest,
                                       "malformed put body"));
            return;
        }
        const ServerStatus admitted = scheduler_.submitPut(
            sid, std::move(put.name), std::move(put.data),
            [this, sid, rid](const StoreResult &r) {
                std::vector<std::uint8_t> bytes;
                if (r.ok())
                    bytes = frameBytes(MsgType::PutOk, rid,
                                       textBody(r.receipt_json));
                else
                    bytes = errorBytes(rid, r.status, r.error);
                postCompletion(sid, std::move(bytes));
            });
        if (admitted != ServerStatus::Ok)
            session.enqueue(
                errorBytes(rid, admitted, serverStatusName(admitted)));
        return;
    }
    case MsgType::Ls: {
        const ServerStatus admitted = scheduler_.submitLs(
            sid, [this, sid, rid](const MetaResult &r) {
                std::vector<std::uint8_t> bytes;
                if (r.ok())
                    bytes = frameBytes(MsgType::LsOk, rid,
                                       textBody(r.json));
                else
                    bytes = errorBytes(rid, r.status, r.error);
                postCompletion(sid, std::move(bytes));
            });
        if (admitted != ServerStatus::Ok)
            session.enqueue(
                errorBytes(rid, admitted, serverStatusName(admitted)));
        return;
    }
    case MsgType::Stat: {
        if (frame.body.empty() || frame.body.size() > kMaxNameLen) {
            session.enqueue(errorBytes(rid, ServerStatus::InvalidRequest,
                                       "bad object name"));
            return;
        }
        std::string name(frame.body.begin(), frame.body.end());
        const ServerStatus admitted = scheduler_.submitStat(
            sid, std::move(name),
            [this, sid, rid](const MetaResult &r) {
                std::vector<std::uint8_t> bytes;
                if (r.ok())
                    bytes = frameBytes(MsgType::StatOk, rid,
                                       textBody(r.json));
                else
                    bytes = errorBytes(rid, r.status, r.error);
                postCompletion(sid, std::move(bytes));
            });
        if (admitted != ServerStatus::Ok)
            session.enqueue(
                errorBytes(rid, admitted, serverStatusName(admitted)));
        return;
    }
    default:
        session.enqueue(errorBytes(rid, ServerStatus::UnknownOp,
                                   "unknown request type"));
        return;
    }
}

void
Server::serve()
{
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_sessions; // Session id per pollfd.
    std::vector<Frame> frames;
    std::vector<std::uint64_t> closing;

    for (;;) {
        fds.clear();
        fd_sessions.clear();
        fds.push_back({wake_rd_, POLLIN, 0});
        fd_sessions.push_back(0);
        if (listen_fd_ >= 0) {
            fds.push_back({listen_fd_, POLLIN, 0});
            fd_sessions.push_back(0);
        }
        for (const auto &entry : sessions_) {
            short events = POLLIN;
            if (entry.second->wantsWrite())
                events = static_cast<short>(events | POLLOUT);
            fds.push_back({entry.second->fd(), events, 0});
            fd_sessions.push_back(entry.first);
        }

        // Bounded timeout: the pipe is the fast path, the timeout the
        // safety net (e.g. a wake byte lost to a full pipe).
        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), 250);
        if (n < 0 && errno != EINTR && errno != EAGAIN)
            break; // poll itself failed; nothing sane left to do.

        bool drain_requested = false;
        closing.clear();
        for (std::size_t i = 0; i < fds.size(); ++i) {
            const short revents = fds[i].revents;
            if (revents == 0)
                continue;
            if (fds[i].fd == wake_rd_) {
                if (drainWakePipe())
                    drain_requested = true;
                continue;
            }
            if (fds[i].fd == listen_fd_ && listen_fd_ >= 0) {
                acceptPending();
                continue;
            }
            const std::uint64_t sid = fd_sessions[i];
            auto it = sessions_.find(sid);
            if (it == sessions_.end())
                continue;
            Session &session = *it->second;
            bool close_now = false;
            if ((revents & (POLLERR | POLLNVAL)) != 0)
                close_now = true;
            if (!close_now && (revents & (POLLIN | POLLHUP)) != 0) {
                frames.clear();
                const Session::ReadOutcome outcome =
                    session.readFrames(frames);
                for (Frame &frame : frames)
                    handleFrame(session, frame);
                if (outcome == Session::ReadOutcome::Corrupt) {
                    session.enqueue(errorBytes(
                        0, ServerStatus::ProtocolError,
                        frameErrorName(session.lastError())));
                    session.closeAfterFlush();
                } else if (outcome == Session::ReadOutcome::Eof) {
                    close_now = true;
                }
            }
            if (!close_now && !session.flush())
                close_now = true;
            if (close_now)
                closing.push_back(sid);
        }
        for (const std::uint64_t sid : closing)
            closeSession(sid);

        // Apply completed replies, then give their sockets a chance to
        // flush immediately instead of waiting a poll round.
        drainCompletions();
        closing.clear();
        for (auto &entry : sessions_) {
            Session &session = *entry.second;
            if (session.wantsWrite() && !session.flush()) {
                closing.push_back(entry.first);
                continue;
            }
            if (session.closingAfterFlush() && !session.wantsWrite())
                closing.push_back(entry.first);
        }
        for (const std::uint64_t sid : closing)
            closeSession(sid);

        if (drain_requested)
            beginDrain();

        if (draining_ && scheduler_.idle()) {
            // All admitted work is done and its callbacks delivered;
            // anything still queued lives in session write buffers.
            bool pending_completions = false;
            {
                MutexLock lock(completions_mu_);
                pending_completions = !completions_.empty();
            }
            if (pending_completions)
                continue;
            bool flushing = false;
            for (const auto &entry : sessions_)
                if (entry.second->wantsWrite())
                    flushing = true;
            if (!flushing) {
                sessions_.clear();
                break;
            }
        }
    }
}

std::string
serverReportJson(const SchedulerCounters &counters,
                 const std::map<std::string, std::string> &info,
                 const obs::MetricsSnapshot &metrics_delta)
{
    obs::JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.server_report");
    json.key("schema_version");
    json.value(static_cast<std::int64_t>(obs::kSchemaVersion));
    json.key("info");
    json.beginObject();
    for (const auto &entry : info) {
        json.key(entry.first);
        json.value(entry.second);
    }
    json.endObject();
    json.key("counters");
    json.beginObject();
    json.key("batched_gets");
    json.value(counters.batched_gets);
    json.key("batches");
    json.value(counters.batches);
    json.key("coalesced_gets");
    json.value(counters.coalesced_gets);
    json.key("rejected_draining");
    json.value(counters.rejected_draining);
    json.key("rejected_overload");
    json.value(counters.rejected_overload);
    json.key("rejected_quota");
    json.value(counters.rejected_quota);
    json.key("requests");
    json.value(counters.requests);
    json.endObject();
    json.key("metrics");
    obs::writeMetricsValue(json, metrics_delta);
    json.endObject();
    return json.text();
}

} // namespace dnastore::server
