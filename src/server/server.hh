/**
 * @file
 * The dnastored server: a poll()-based event loop accepting loopback
 * TCP connections, speaking the server/protocol.hh framing, and
 * dispatching requests into the Scheduler (docs/SERVER.md).
 *
 * Threading model:
 *  - ONE loop thread (serve()) owns the listen socket, the sessions and
 *    all socket I/O.
 *  - Pool workers complete requests and post encoded reply bytes to a
 *    mutex-guarded completion queue, then poke the self-pipe; the loop
 *    thread drains the queue into per-session write buffers.
 *  - Signal handlers never touch server state: they write one 'q' byte
 *    to drainNotifyFd() (async-signal-safe), and the loop thread reads
 *    it and starts the drain.
 *
 * Drain semantics (SIGTERM): stop accepting, reject new requests with
 * ShuttingDown, let admitted work finish, flush every reply, then
 * return from serve().  No request is ever silently dropped.
 *
 * No-throw contract: serve() is a dnalint R9 root — every failure path
 * reports through ServerStatus or closes the offending session.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "server/backend.hh"
#include "server/scheduler.hh"
#include "server/session.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore::server
{

/** Server knobs (daemon flags map onto these 1:1). */
struct ServerConfig
{
    std::uint16_t port = 0; //!< TCP port; 0 picks an ephemeral one.
    SchedulerConfig scheduler;
    std::size_t data_chunk = 64 * 1024; //!< Data-frame chunk bytes.
    std::size_t max_sessions = 256;     //!< Concurrent connections.
};

/**
 * One server instance over one Backend.  start() binds, serve() runs
 * the loop until a drain completes.  Bound to 127.0.0.1 only: this is
 * a local daemon, not an internet-facing service.
 */
class Server
{
  public:
    Server(Backend &backend, const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + wakeup pipe.  Internal on any socket failure. */
    [[nodiscard]] ServerStatus start();

    /** The bound port (valid after a successful start). */
    std::uint16_t port() const { return port_; }

    /**
     * Write end of the wakeup pipe.  Writing the byte 'q' requests a
     * graceful drain; safe from a signal handler (write(2) only).
     */
    int drainNotifyFd() const { return wake_wr_; }

    /** Request a graceful drain from ordinary (non-signal) code. */
    void requestDrain();

    /**
     * Run the event loop: accept, read frames, dispatch, flush
     * replies.  Returns once a requested drain has fully completed.
     * Must be called from exactly one thread.
     */
    void serve();

    /** Scheduler totals (coalesced/batched/rejected/... counts). */
    [[nodiscard]] SchedulerCounters counters() const
    {
        return scheduler_.counters();
    }

    /** Connections accepted over the server's lifetime. */
    std::uint64_t sessionsAccepted() const { return sessions_accepted_; }

  private:
    /** One completed reply, encoded and addressed. */
    struct Completion
    {
        std::uint64_t session_id = 0;
        std::vector<std::uint8_t> bytes;
    };

    /** Pool-worker side: queue reply bytes + poke the loop. */
    void postCompletion(std::uint64_t session_id,
                        std::vector<std::uint8_t> bytes);

    /** Loop side: apply queued completions to their sessions. */
    void drainCompletions();

    /** Accept as many pending connections as the cap allows. */
    void acceptPending();

    /** Drain the wakeup pipe; true when a 'q' (drain) byte arrived. */
    [[nodiscard]] bool drainWakePipe();

    /** Enter draining: close the listen socket, stop admissions. */
    void beginDrain();

    /** Interpret one parsed frame from @p session. */
    void handleFrame(Session &session, Frame &frame);

    void closeSession(std::uint64_t session_id);

    Backend &backend_;
    const ServerConfig config_;

    int listen_fd_ = -1;
    int wake_rd_ = -1;
    int wake_wr_ = -1;
    std::uint16_t port_ = 0;
    bool draining_ = false;
    std::uint64_t next_session_id_ = 1;
    std::uint64_t sessions_accepted_ = 0;
    std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;

    Mutex completions_mu_{"server.completions"};
    std::deque<Completion> completions_
        DNASTORE_GUARDED_BY(completions_mu_);

    // Declared last: the scheduler's destructor drains outstanding
    // callbacks (which post into completions_), so it must die before
    // the completion queue and sessions do.
    Scheduler scheduler_;
};

/**
 * Canonical server run report (schema `dnastore.server_report`):
 * lifetime counters, free-form info strings (port, config, uptime) and
 * the server's metrics delta.  Validated by
 * `tools/check_obs_json.py --server`.
 */
[[nodiscard]] std::string
serverReportJson(const SchedulerCounters &counters,
                 const std::map<std::string, std::string> &info,
                 const obs::MetricsSnapshot &metrics_delta);

} // namespace dnastore::server
