/**
 * @file
 * Backend adapter over a real archive::Archive: fetchMany maps onto
 * Archive::getMany (one flattened shard batch per scheduler dispatch),
 * store onto Archive::put, and the metadata reads onto the canonical
 * lsJson/statJson emitters shared with `dnastore archive --json`.
 *
 * ArchiveStatus values translate into the wire-level ServerStatus
 * taxonomy here, so the scheduler and sessions never see archive
 * internals.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "archive/archive.hh"
#include "server/backend.hh"

namespace dnastore::server
{

/** Map an archive outcome onto the wire taxonomy. */
[[nodiscard]] ServerStatus
serverStatusFromArchive(archive::ArchiveStatus status);

/**
 * Production backend: one open archive.  Thread-safety follows
 * Archive's contract — const reads (fetchMany/list/statObject) may run
 * concurrently, storeObject() must be exclusive; the scheduler enforces the
 * exclusion, this adapter only forwards.
 */
class ArchiveBackend final : public Backend
{
  public:
    /**
     * @param archive open archive, owned by the caller, outlives this.
     * @param config retrieval knobs applied to every fetch.
     * @param put_threads shard-encode parallelism of storeObject().
     */
    ArchiveBackend(archive::Archive &archive,
                   const archive::RetrievalConfig &config,
                   std::size_t put_threads)
        : archive_(archive)
        , config_(config)
        , put_threads_(put_threads == 0 ? 1 : put_threads)
    {
    }

    [[nodiscard]] std::vector<FetchResult>
    fetchMany(const std::vector<std::string> &names) override;

    [[nodiscard]] StoreResult
    storeObject(const std::string &name,
                const std::vector<std::uint8_t> &data) override;

    [[nodiscard]] MetaResult list() override;

    [[nodiscard]] MetaResult statObject(const std::string &name) override;

  private:
    archive::Archive &archive_;
    archive::RetrievalConfig config_;
    std::size_t put_threads_;
};

} // namespace dnastore::server
