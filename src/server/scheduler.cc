#include "server/scheduler.hh"

#include <utility>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace dnastore::server
{

/** Process-global metric handles, fetched once (registration locks). */
struct SchedulerMetrics
{
    obs::Counter &requests_total;
    obs::Counter &coalesced_gets_total;
    obs::Counter &batches_total;
    obs::Counter &batched_gets_total;
    obs::Counter &rejected_overload_total;
    obs::Counter &rejected_quota_total;
    obs::Counter &rejected_draining_total;
    obs::Gauge &inflight_requests;
    obs::FixedHistogram &queue_wait_seconds;
    obs::FixedHistogram &get_seconds;
    obs::FixedHistogram &put_seconds;
    obs::FixedHistogram &meta_seconds;
};

namespace
{

SchedulerMetrics &
schedulerMetrics()
{
    static SchedulerMetrics m{
        obs::metrics().counter("server.requests_total"),
        obs::metrics().counter("server.coalesced_gets_total"),
        obs::metrics().counter("server.batches_total"),
        obs::metrics().counter("server.batched_gets_total"),
        obs::metrics().counter("server.rejected_overload_total"),
        obs::metrics().counter("server.rejected_quota_total"),
        obs::metrics().counter("server.rejected_draining_total"),
        obs::metrics().gauge("server.inflight_requests"),
        obs::metrics().histogram("server.queue_wait_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().histogram("server.get_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().histogram("server.put_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().histogram("server.meta_seconds",
                                 obs::latencyBucketsSeconds()),
    };
    return m;
}

double
secondsSince(std::uint64_t submit_us)
{
    const std::uint64_t now_us = obs::traceNowMicros();
    return now_us > submit_us
               ? static_cast<double>(now_us - submit_us) / 1e6
               : 0.0;
}

} // namespace

Scheduler::Scheduler(Backend &backend, const SchedulerConfig &config)
    : backend_(backend)
    , config_(config)
    , metrics_(schedulerMetrics())
    , pool_(config.num_threads)
{
}

Scheduler::~Scheduler()
{
    beginDrain();
    drainWait();
    // pool_ (declared last) is destroyed first, joining the workers
    // while the queues and mutex are still alive.
}

ServerStatus
Scheduler::admitLocked(std::uint64_t client_id)
{
    if (draining_) {
        ++counters_.rejected_draining;
        metrics_.rejected_draining_total.add(1);
        return ServerStatus::ShuttingDown;
    }
    if (inflight_total_ >= config_.max_inflight) {
        ++counters_.rejected_overload;
        metrics_.rejected_overload_total.add(1);
        return ServerStatus::Overloaded;
    }
    std::size_t &client_count = per_client_[client_id];
    if (client_count >= config_.per_client_inflight) {
        if (client_count == 0)
            per_client_.erase(client_id);
        ++counters_.rejected_quota;
        metrics_.rejected_quota_total.add(1);
        return ServerStatus::QuotaExceeded;
    }
    ++client_count;
    ++inflight_total_;
    ++counters_.requests;
    metrics_.requests_total.add(1);
    metrics_.inflight_requests.set(static_cast<double>(inflight_total_));
    return ServerStatus::Ok;
}

void
Scheduler::releaseLocked(std::uint64_t client_id)
{
    auto it = per_client_.find(client_id);
    if (it != per_client_.end()) {
        if (it->second > 0)
            --it->second;
        if (it->second == 0)
            per_client_.erase(it);
    }
    if (inflight_total_ > 0)
        --inflight_total_;
    metrics_.inflight_requests.set(static_cast<double>(inflight_total_));
}

ServerStatus
Scheduler::submitGet(std::uint64_t client_id, const std::string &name,
                     GetCallback done)
{
    PendingWork work;
    {
        MutexLock lock(mu_);
        const ServerStatus admit = admitLocked(client_id);
        if (admit != ServerStatus::Ok)
            return admit;
        GetGroup &group = groups_[name];
        const bool fresh = group.waiters.empty() && !group.running;
        group.waiters.push_back(
            {client_id, std::move(done), obs::traceNowMicros()});
        if (fresh) {
            get_queue_.push_back(name);
        } else {
            // Joined a queued or in-flight fetch of the same object.
            ++counters_.coalesced_gets;
            metrics_.coalesced_gets_total.add(1);
        }
        pumpLocked(work);
    }
    launch(work);
    return ServerStatus::Ok;
}

ServerStatus
Scheduler::submitPut(std::uint64_t client_id, std::string name,
                     std::vector<std::uint8_t> data, PutCallback done)
{
    PendingWork work;
    {
        MutexLock lock(mu_);
        const ServerStatus admit = admitLocked(client_id);
        if (admit != ServerStatus::Ok)
            return admit;
        auto job = std::make_shared<PutJob>();
        job->client_id = client_id;
        job->name = std::move(name);
        job->data = std::move(data);
        job->done = std::move(done);
        job->submit_us = obs::traceNowMicros();
        put_queue_.push_back(std::move(job));
        pumpLocked(work);
    }
    launch(work);
    return ServerStatus::Ok;
}

ServerStatus
Scheduler::submitLs(std::uint64_t client_id, MetaCallback done)
{
    PendingWork work;
    {
        MutexLock lock(mu_);
        const ServerStatus admit = admitLocked(client_id);
        if (admit != ServerStatus::Ok)
            return admit;
        auto job = std::make_shared<MetaJob>();
        job->client_id = client_id;
        job->is_stat = false;
        job->done = std::move(done);
        job->submit_us = obs::traceNowMicros();
        meta_queue_.push_back(std::move(job));
        pumpLocked(work);
    }
    launch(work);
    return ServerStatus::Ok;
}

ServerStatus
Scheduler::submitStat(std::uint64_t client_id, std::string name,
                      MetaCallback done)
{
    PendingWork work;
    {
        MutexLock lock(mu_);
        const ServerStatus admit = admitLocked(client_id);
        if (admit != ServerStatus::Ok)
            return admit;
        auto job = std::make_shared<MetaJob>();
        job->client_id = client_id;
        job->is_stat = true;
        job->name = std::move(name);
        job->done = std::move(done);
        job->submit_us = obs::traceNowMicros();
        meta_queue_.push_back(std::move(job));
        pumpLocked(work);
    }
    launch(work);
    return ServerStatus::Ok;
}

void
Scheduler::pumpLocked(PendingWork &work)
{
    if (put_active_)
        return;
    if (!put_queue_.empty()) {
        // Put priority: no new reads start while a put is pending, and
        // the put itself waits for active reads to drain (Archive::put
        // mutates, gets are const).
        if (active_reads_ == 0) {
            work.put = std::move(put_queue_.front());
            put_queue_.pop_front();
            put_active_ = true;
            metrics_.queue_wait_seconds.observe(
                secondsSince(work.put->submit_us));
        }
        return;
    }
    while (!meta_queue_.empty()) {
        std::shared_ptr<MetaJob> job = std::move(meta_queue_.front());
        meta_queue_.pop_front();
        ++active_reads_;
        metrics_.queue_wait_seconds.observe(secondsSince(job->submit_us));
        work.metas.push_back(std::move(job));
    }
    while (running_batches_ < config_.max_concurrent_batches &&
           !get_queue_.empty()) {
        std::vector<std::string> names;
        while (names.size() < config_.batch_max && !get_queue_.empty()) {
            std::string name = std::move(get_queue_.front());
            get_queue_.pop_front();
            auto it = groups_.find(name);
            if (it == groups_.end())
                continue; // Stale queue entry; group already served.
            it->second.running = true;
            for (const GetWaiter &waiter : it->second.waiters)
                metrics_.queue_wait_seconds.observe(
                    secondsSince(waiter.submit_us));
            names.push_back(std::move(name));
        }
        if (names.empty())
            break;
        ++running_batches_;
        ++active_reads_;
        ++counters_.batches;
        counters_.batched_gets += names.size();
        metrics_.batches_total.add(1);
        metrics_.batched_gets_total.add(names.size());
        work.batches.push_back(std::move(names));
    }
}

void
Scheduler::launch(PendingWork &work)
{
    if (work.put) {
        (void)pool_.submit([this, job = std::move(work.put)]() mutable {
            runPut(std::move(job));
        });
        work.put.reset();
    }
    for (std::shared_ptr<MetaJob> &job : work.metas)
        (void)pool_.submit([this, job = std::move(job)]() mutable {
            runMeta(std::move(job));
        });
    work.metas.clear();
    for (std::vector<std::string> &names : work.batches)
        (void)pool_.submit([this, names = std::move(names)] {
            runBatch(names);
        });
    work.batches.clear();
}

void
Scheduler::runBatch(const std::vector<std::string> &names)
{
    std::vector<FetchResult> results = backend_.fetchMany(names);
    results.resize(names.size()); // Defensive: align with names.

    // Claim every group's waiters, then deliver outside the lock.
    std::vector<std::vector<GetWaiter>> waiters(names.size());
    {
        MutexLock lock(mu_);
        for (std::size_t i = 0; i < names.size(); ++i) {
            auto it = groups_.find(names[i]);
            if (it == groups_.end())
                continue;
            waiters[i] = std::move(it->second.waiters);
            groups_.erase(it);
        }
        if (running_batches_ > 0)
            --running_batches_;
        if (active_reads_ > 0)
            --active_reads_;
    }

    for (std::size_t i = 0; i < names.size(); ++i) {
        for (GetWaiter &waiter : waiters[i]) {
            metrics_.get_seconds.observe(secondsSince(waiter.submit_us));
            if (waiter.done)
                waiter.done(results[i]);
        }
    }

    PendingWork work;
    {
        MutexLock lock(mu_);
        for (std::size_t i = 0; i < names.size(); ++i)
            for (const GetWaiter &waiter : waiters[i])
                releaseLocked(waiter.client_id);
        pumpLocked(work);
        if (idleLocked())
            idle_cv_.notifyAll();
    }
    launch(work);
}

void
Scheduler::runPut(std::shared_ptr<PutJob> job)
{
    const StoreResult result = backend_.storeObject(job->name, job->data);
    metrics_.put_seconds.observe(secondsSince(job->submit_us));
    if (job->done)
        job->done(result);

    PendingWork work;
    {
        MutexLock lock(mu_);
        put_active_ = false;
        releaseLocked(job->client_id);
        pumpLocked(work);
        if (idleLocked())
            idle_cv_.notifyAll();
    }
    launch(work);
}

void
Scheduler::runMeta(std::shared_ptr<MetaJob> job)
{
    const MetaResult result = job->is_stat
                                  ? backend_.statObject(job->name)
                                  : backend_.list();
    metrics_.meta_seconds.observe(secondsSince(job->submit_us));
    if (job->done)
        job->done(result);

    PendingWork work;
    {
        MutexLock lock(mu_);
        if (active_reads_ > 0)
            --active_reads_;
        releaseLocked(job->client_id);
        pumpLocked(work);
        if (idleLocked())
            idle_cv_.notifyAll();
    }
    launch(work);
}

bool
Scheduler::idleLocked() const
{
    return inflight_total_ == 0 && active_reads_ == 0 && !put_active_ &&
           running_batches_ == 0 && groups_.empty() &&
           get_queue_.empty() && put_queue_.empty() &&
           meta_queue_.empty();
}

void
Scheduler::beginDrain()
{
    MutexLock lock(mu_);
    draining_ = true;
    if (idleLocked())
        idle_cv_.notifyAll();
}

void
Scheduler::drainWait()
{
    MutexLock lock(mu_);
    while (!idleLocked())
        idle_cv_.wait(mu_);
}

bool
Scheduler::idle() const
{
    MutexLock lock(mu_);
    return idleLocked();
}

SchedulerCounters
Scheduler::counters() const
{
    MutexLock lock(mu_);
    return counters_;
}

} // namespace dnastore::server
