#include "server/protocol.hh"

#include "util/crc32.hh"

namespace dnastore::server
{

namespace
{

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFu));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFu));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[0]) |
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** CRC-32 over the first 20 header bytes plus the body. */
std::uint32_t
frameCrc(const std::uint8_t *header20, const std::uint8_t *body,
         std::size_t body_len)
{
    // Two-piece CRC without concatenating: crc32 of header, then chain
    // the body by re-running the polynomial over one joined buffer is
    // the textbook approach, but util/crc32 exposes only single-shot
    // hashing — so stage the 20 header bytes ahead of the body in one
    // small buffer only when the body is small, and otherwise hash the
    // header into a copy.  Frames are built in one buffer anyway, so
    // encode/decode both call this with contiguous memory.
    std::vector<std::uint8_t> joined;
    joined.reserve(20 + body_len);
    joined.insert(joined.end(), header20, header20 + 20);
    if (body_len > 0)
        joined.insert(joined.end(), body, body + body_len);
    return crc32({joined.data(), joined.size()});
}

} // namespace

const char *
serverStatusName(ServerStatus status)
{
    switch (status) {
    case ServerStatus::Ok:
        return "ok";
    case ServerStatus::InvalidRequest:
        return "invalid-request";
    case ServerStatus::UnknownOp:
        return "unknown-op";
    case ServerStatus::FrameTooLarge:
        return "frame-too-large";
    case ServerStatus::NotFound:
        return "not-found";
    case ServerStatus::AlreadyExists:
        return "already-exists";
    case ServerStatus::Overloaded:
        return "overloaded";
    case ServerStatus::QuotaExceeded:
        return "quota-exceeded";
    case ServerStatus::ShuttingDown:
        return "shutting-down";
    case ServerStatus::DecodeFailed:
        return "decode-failed";
    case ServerStatus::ArchiveError:
        return "archive-error";
    case ServerStatus::ProtocolError:
        return "protocol-error";
    case ServerStatus::Internal:
        return "internal";
    }
    return "unknown";
}

const char *
frameErrorName(FrameError error)
{
    switch (error) {
    case FrameError::None:
        return "none";
    case FrameError::BadMagic:
        return "bad-magic";
    case FrameError::BadVersion:
        return "bad-version";
    case FrameError::Oversized:
        return "oversized";
    case FrameError::BadCrc:
        return "bad-crc";
    }
    return "unknown";
}

bool
encodeFrame(const Frame &frame, std::vector<std::uint8_t> &out)
{
    if (frame.body.size() > kMaxFrameBody)
        return false;
    const std::size_t start = out.size();
    put32(out, kMagic);
    put16(out, frame.version);
    out.push_back(frame.type);
    out.push_back(frame.flags);
    put64(out, frame.request_id);
    put32(out, static_cast<std::uint32_t>(frame.body.size()));
    // CRC covers the 20 bytes just written plus the body; the body is
    // appended after the CRC field, so hash it from the frame itself.
    const std::uint32_t crc =
        frameCrc(out.data() + start, frame.body.data(), frame.body.size());
    put32(out, crc);
    out.insert(out.end(), frame.body.begin(), frame.body.end());
    return true;
}

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t size)
{
    if (error_ != FrameError::None || size == 0)
        return;
    // Reclaim the consumed prefix before growing, keeping the buffer
    // bounded by one frame plus one read's worth of bytes.
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecoder::Result
FrameDecoder::next(Frame &frame)
{
    if (error_ != FrameError::None)
        return Result::Corrupt;
    const std::size_t have = buffer_.size() - consumed_;
    if (have < kHeaderSize)
        return Result::NeedMore;
    const std::uint8_t *head = buffer_.data() + consumed_;
    if (get32(head) != kMagic) {
        error_ = FrameError::BadMagic;
        return Result::Corrupt;
    }
    const std::uint16_t version = get16(head + 4);
    if (version != kProtocolVersion) {
        error_ = FrameError::BadVersion;
        return Result::Corrupt;
    }
    const std::uint32_t body_len = get32(head + 16);
    // Length is validated before the body is ever buffered past the
    // transport read size, so a hostile 4 GiB length cannot make the
    // decoder allocate it.
    if (body_len > kMaxFrameBody) {
        error_ = FrameError::Oversized;
        return Result::Corrupt;
    }
    if (have < kHeaderSize + body_len)
        return Result::NeedMore;
    const std::uint8_t *body = head + kHeaderSize;
    const std::uint32_t stored_crc = get32(head + 20);
    if (frameCrc(head, body, body_len) != stored_crc) {
        error_ = FrameError::BadCrc;
        return Result::Corrupt;
    }
    frame.version = version;
    frame.type = head[6];
    frame.flags = head[7];
    frame.request_id = get64(head + 8);
    frame.body.assign(body, body + body_len);
    consumed_ += kHeaderSize + body_len;
    return Result::Ready;
}

std::vector<std::uint8_t>
makePutBody(std::string_view name, const std::vector<std::uint8_t> &data)
{
    std::vector<std::uint8_t> body;
    const std::size_t name_len =
        name.size() > kMaxNameLen ? kMaxNameLen : name.size();
    body.reserve(2 + name_len + data.size());
    put16(body, static_cast<std::uint16_t>(name_len));
    body.insert(body.end(), name.begin(),
                name.begin() + static_cast<std::ptrdiff_t>(name_len));
    body.insert(body.end(), data.begin(), data.end());
    return body;
}

bool
tryParsePutBody(const std::vector<std::uint8_t> &body, PutBody &out)
{
    if (body.size() < 2)
        return false;
    const std::size_t name_len = get16(body.data());
    if (name_len == 0 || name_len > kMaxNameLen ||
        body.size() < 2 + name_len)
        return false;
    out.name.assign(reinterpret_cast<const char *>(body.data()) + 2,
                    name_len);
    out.data.assign(body.begin() + static_cast<std::ptrdiff_t>(2 + name_len),
                    body.end());
    return true;
}

std::vector<std::uint8_t>
makeErrorBody(ServerStatus status, std::string_view message)
{
    std::vector<std::uint8_t> body;
    body.reserve(2 + message.size());
    put16(body, static_cast<std::uint16_t>(status));
    body.insert(body.end(), message.begin(), message.end());
    return body;
}

bool
tryParseErrorBody(const std::vector<std::uint8_t> &body, ErrorBody &out)
{
    if (body.size() < 2)
        return false;
    out.status = static_cast<ServerStatus>(get16(body.data()));
    out.message.assign(reinterpret_cast<const char *>(body.data()) + 2,
                       body.size() - 2);
    return true;
}

void
appendDataFrames(std::vector<std::uint8_t> &out, std::uint64_t request_id,
                 const std::vector<std::uint8_t> &payload, std::size_t chunk)
{
    if (chunk == 0)
        chunk = 1;
    if (chunk > kMaxFrameBody)
        chunk = kMaxFrameBody;
    std::size_t offset = 0;
    do {
        const std::size_t remaining = payload.size() - offset;
        const std::size_t take = remaining < chunk ? remaining : chunk;
        Frame frame;
        frame.type = static_cast<std::uint8_t>(MsgType::Data);
        frame.request_id = request_id;
        frame.flags = offset + take < payload.size() ? kFlagMore : 0;
        frame.body.assign(
            payload.begin() + static_cast<std::ptrdiff_t>(offset),
            payload.begin() + static_cast<std::ptrdiff_t>(offset + take));
        // Body is chunk-bounded, so encodeFrame cannot fail here.
        (void)encodeFrame(frame, out);
        offset += take;
    } while (offset < payload.size());
}

} // namespace dnastore::server
