#include "server/archive_backend.hh"

#include "obs/json.hh"
#include "obs/report.hh"

namespace dnastore::server
{

ServerStatus
serverStatusFromArchive(archive::ArchiveStatus status)
{
    switch (status) {
    case archive::ArchiveStatus::Ok:
        return ServerStatus::Ok;
    case archive::ArchiveStatus::NotFound:
        return ServerStatus::NotFound;
    case archive::ArchiveStatus::AlreadyExists:
        return ServerStatus::AlreadyExists;
    case archive::ArchiveStatus::InvalidArgument:
        return ServerStatus::InvalidRequest;
    case archive::ArchiveStatus::DecodeFailed:
        return ServerStatus::DecodeFailed;
    case archive::ArchiveStatus::IoError:
    case archive::ArchiveStatus::CorruptManifest:
    case archive::ArchiveStatus::CorruptPool:
    case archive::ArchiveStatus::EncodeFailed:
        return ServerStatus::ArchiveError;
    }
    return ServerStatus::Internal;
}

std::vector<FetchResult>
ArchiveBackend::fetchMany(const std::vector<std::string> &names)
{
    std::vector<archive::GetResult> gets =
        archive_.getMany(names, config_);
    std::vector<FetchResult> results(names.size());
    for (std::size_t i = 0; i < gets.size() && i < results.size(); ++i) {
        results[i].status = serverStatusFromArchive(gets[i].status);
        results[i].error = std::move(gets[i].error);
        results[i].data = std::move(gets[i].data);
    }
    return results;
}

StoreResult
ArchiveBackend::storeObject(const std::string &name,
                            const std::vector<std::uint8_t> &data)
{
    StoreResult result;
    archive::PutResult put = archive_.put(name, data, put_threads_);
    result.status = serverStatusFromArchive(put.status);
    result.error = std::move(put.error);
    if (result.ok()) {
        obs::JsonWriter json;
        json.beginObject();
        json.key("name");
        json.value(name);
        json.key("object_id");
        json.value(static_cast<std::uint64_t>(put.object_id));
        json.key("shards");
        json.value(static_cast<std::uint64_t>(put.shards));
        json.key("size_bytes");
        json.value(static_cast<std::uint64_t>(data.size()));
        json.key("strands");
        json.value(static_cast<std::uint64_t>(put.strands));
        json.endObject();
        result.receipt_json = json.text();
    }
    return result;
}

MetaResult
ArchiveBackend::list()
{
    MetaResult result;
    result.status = ServerStatus::Ok;
    result.json = archive::lsJson(archive_);
    return result;
}

MetaResult
ArchiveBackend::statObject(const std::string &name)
{
    MetaResult result;
    const archive::ObjectEntry *object = archive_.stat(name);
    if (object == nullptr) {
        result.status = ServerStatus::NotFound;
        result.error = "no object named '" + name + "'";
        return result;
    }
    result.status = ServerStatus::Ok;
    result.json = archive::statJson(*object);
    return result;
}

} // namespace dnastore::server
