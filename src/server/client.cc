#include "server/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dnastore::server
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connectTo(std::uint16_t port, int timeout_ms)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = "socket() failed";
        return false;
    }
    if (timeout_ms > 0) {
        timeval tv;
        tv.tv_sec = timeout_ms / 1000;
        tv.tv_usec = (timeout_ms % 1000) * 1000;
        (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    for (;;) {
        if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return true;
        if (errno == EINTR)
            continue;
        error_ = std::string("connect() failed: ") +
                 std::strerror(errno);
        close();
        return false;
    }
}

bool
Client::sendFrame(MsgType type, std::uint64_t request_id,
                  const std::vector<std::uint8_t> &body,
                  std::string &error)
{
    Frame frame;
    frame.type = static_cast<std::uint8_t>(type);
    frame.request_id = request_id;
    frame.body = body;
    std::vector<std::uint8_t> bytes;
    if (!encodeFrame(frame, bytes)) {
        error = "request body exceeds frame limit";
        return false;
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = std::string("send() failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

ClientReply
Client::readReply(std::uint64_t request_id)
{
    ClientReply reply;
    std::uint8_t chunk[16 * 1024];
    for (;;) {
        Frame frame;
        const FrameDecoder::Result parsed = decoder_.next(frame);
        if (parsed == FrameDecoder::Result::Corrupt) {
            reply.status = ServerStatus::ProtocolError;
            reply.error = std::string("reply stream corrupt: ") +
                          frameErrorName(decoder_.lastError());
            return reply;
        }
        if (parsed == FrameDecoder::Result::NeedMore) {
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n > 0) {
                decoder_.feed(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            reply.status = ServerStatus::Internal;
            reply.error = n == 0 ? "server closed the connection"
                                 : std::string("recv() failed: ") +
                                       std::strerror(errno);
            return reply;
        }
        // A frame for another request id on a synchronous connection
        // means the stream is out of step; give up rather than guess.
        if (frame.request_id != request_id) {
            reply.status = ServerStatus::ProtocolError;
            reply.error = "reply for unexpected request id";
            return reply;
        }
        switch (static_cast<MsgType>(frame.type)) {
        case MsgType::Error: {
            ErrorBody error;
            if (!tryParseErrorBody(frame.body, error)) {
                reply.status = ServerStatus::ProtocolError;
                reply.error = "malformed error frame";
                return reply;
            }
            reply.status = error.status == ServerStatus::Ok
                               ? ServerStatus::ProtocolError
                               : error.status;
            reply.error = std::move(error.message);
            return reply;
        }
        case MsgType::Data:
            reply.data.insert(reply.data.end(), frame.body.begin(),
                              frame.body.end());
            if (frame.more())
                continue; // Streamed body: more chunks follow.
            reply.status = ServerStatus::Ok;
            return reply;
        case MsgType::Pong:
            reply.data = std::move(frame.body);
            reply.status = ServerStatus::Ok;
            return reply;
        case MsgType::PutOk:
        case MsgType::LsOk:
        case MsgType::StatOk:
            reply.json.assign(frame.body.begin(), frame.body.end());
            reply.status = ServerStatus::Ok;
            return reply;
        default:
            reply.status = ServerStatus::ProtocolError;
            reply.error = "unexpected reply type";
            return reply;
        }
    }
}

ClientReply
Client::ping(const std::vector<std::uint8_t> &echo)
{
    ClientReply reply;
    const std::uint64_t rid = next_request_id_++;
    if (!sendFrame(MsgType::Ping, rid, echo, reply.error))
        return reply;
    return readReply(rid);
}

ClientReply
Client::put(const std::string &name,
            const std::vector<std::uint8_t> &data)
{
    ClientReply reply;
    if (name.empty() || name.size() > kMaxNameLen) {
        reply.status = ServerStatus::InvalidRequest;
        reply.error = "bad object name";
        return reply;
    }
    const std::uint64_t rid = next_request_id_++;
    if (!sendFrame(MsgType::Put, rid, makePutBody(name, data),
                   reply.error))
        return reply;
    return readReply(rid);
}

ClientReply
Client::get(const std::string &name)
{
    ClientReply reply;
    if (name.empty() || name.size() > kMaxNameLen) {
        reply.status = ServerStatus::InvalidRequest;
        reply.error = "bad object name";
        return reply;
    }
    const std::uint64_t rid = next_request_id_++;
    const std::vector<std::uint8_t> body(name.begin(), name.end());
    if (!sendFrame(MsgType::Get, rid, body, reply.error))
        return reply;
    return readReply(rid);
}

ClientReply
Client::ls()
{
    ClientReply reply;
    const std::uint64_t rid = next_request_id_++;
    if (!sendFrame(MsgType::Ls, rid, {}, reply.error))
        return reply;
    return readReply(rid);
}

ClientReply
Client::stat(const std::string &name)
{
    ClientReply reply;
    if (name.empty() || name.size() > kMaxNameLen) {
        reply.status = ServerStatus::InvalidRequest;
        reply.error = "bad object name";
        return reply;
    }
    const std::uint64_t rid = next_request_id_++;
    const std::vector<std::uint8_t> body(name.begin(), name.end());
    if (!sendFrame(MsgType::Stat, rid, body, reply.error))
        return reply;
    return readReply(rid);
}

} // namespace dnastore::server
