/**
 * @file
 * Wire protocol of `dnastored` (docs/SERVER.md): a length-prefixed
 * binary framing with a versioned, CRC-guarded header.  Every message —
 * request or response — is one frame:
 *
 *   offset size field
 *   0      4    magic 0x444E4153 ("DNAS", little-endian on the wire)
 *   4      2    protocol version (kProtocolVersion)
 *   6      1    message type (MsgType)
 *   7      1    flags (kFlagMore: another frame of this reply follows)
 *   8      8    request id (client-chosen, echoed verbatim in replies)
 *   16     4    body length (<= kMaxFrameBody)
 *   20     4    CRC-32 over header bytes [0, 20) plus the whole body
 *   24     ...  body
 *
 * All integers are little-endian.  Object bodies stream: a `get` reply
 * is a sequence of Data frames sharing the request id, every frame but
 * the last carrying kFlagMore, so neither side ever has to buffer more
 * than one bounded frame per message.
 *
 * FrameDecoder is the single parsing boundary for untrusted bytes
 * (fuzz/fuzz_frame.cc hammers it): it never throws, never reads past
 * the fed buffer, rejects oversized lengths before buffering a body,
 * and poisons itself on the first malformed frame — a transport error
 * means the stream can no longer be trusted, so the session closes.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnastore::server
{

/** First four bytes of every frame ("DNAS" read as a LE u32). */
inline constexpr std::uint32_t kMagic = 0x53414E44u;

/** Wire protocol version this build speaks. */
inline constexpr std::uint16_t kProtocolVersion = 1;

/** Fixed frame header size in bytes. */
inline constexpr std::size_t kHeaderSize = 24;

/** Upper bound on one frame's body; larger replies stream in chunks. */
inline constexpr std::size_t kMaxFrameBody = 8u * 1024u * 1024u;

/** Upper bound on an object name on the wire. */
inline constexpr std::size_t kMaxNameLen = 4096;

/** Frame flag: more frames of this reply follow (streaming bodies). */
inline constexpr std::uint8_t kFlagMore = 0x01;

/** Message types.  Requests are < 64, responses >= 64. */
enum class MsgType : std::uint8_t
{
    // Requests.
    Ping = 1, //!< Liveness probe; body echoed back in Pong.
    Put = 2,  //!< Store an object: u16 name length, name, payload.
    Get = 3,  //!< Retrieve an object: body is the name.
    Ls = 4,   //!< List objects: empty body.
    Stat = 5, //!< Object metadata: body is the name.

    // Responses.
    Pong = 65,   //!< Ping reply (body echoed).
    PutOk = 66,  //!< Put reply: JSON receipt (object id, shards, ...).
    Data = 67,   //!< Get reply chunk; kFlagMore on all but the last.
    LsOk = 68,   //!< Ls reply: dnastore.archive_ls JSON document.
    StatOk = 69, //!< Stat reply: dnastore.archive_stat JSON document.
    Error = 70,  //!< Typed failure: u16 ServerStatus + message text.
};

/**
 * Outcome taxonomy of server-side request handling (never thrown,
 * returned — and carried on the wire inside Error frames).  Overloaded
 * and QuotaExceeded are the admission controller shedding load instead
 * of queueing unboundedly; ShuttingDown is the graceful-drain reply.
 */
enum class ServerStatus : std::uint16_t
{
    Ok = 0,
    InvalidRequest = 1, //!< Malformed body (bad name, bad lengths).
    UnknownOp = 2,      //!< Request type this server does not speak.
    FrameTooLarge = 3,  //!< Body length beyond kMaxFrameBody.
    NotFound = 4,       //!< No such object.
    AlreadyExists = 5,  //!< Put of an existing object name.
    Overloaded = 6,     //!< Global admission limit reached; retry later.
    QuotaExceeded = 7,  //!< Per-client inflight quota reached.
    ShuttingDown = 8,   //!< Server is draining; no new work accepted.
    DecodeFailed = 9,   //!< Object retrieval failed to decode.
    ArchiveError = 10,  //!< Underlying archive operation failed.
    ProtocolError = 11, //!< Transport-level framing violation.
    Internal = 12,      //!< Unexpected server-side failure.
};

/** Human-readable status name. */
const char *serverStatusName(ServerStatus status);

/** One parsed frame (header fields + owned body bytes). */
struct Frame
{
    std::uint16_t version = kProtocolVersion;
    std::uint8_t type = 0; //!< Raw MsgType value (may be unknown).
    std::uint8_t flags = 0;
    std::uint64_t request_id = 0;
    std::vector<std::uint8_t> body;

    bool more() const { return (flags & kFlagMore) != 0; }
};

/**
 * Serialise @p frame (header, CRC and body) onto @p out.
 * @return false when the body exceeds kMaxFrameBody (nothing emitted).
 */
[[nodiscard]] bool encodeFrame(const Frame &frame,
                               std::vector<std::uint8_t> &out);

/** Why FrameDecoder rejected the stream. */
enum class FrameError : std::uint8_t
{
    None = 0,
    BadMagic,   //!< Header does not start with kMagic.
    BadVersion, //!< Protocol version this build does not speak.
    Oversized,  //!< Declared body length exceeds kMaxFrameBody.
    BadCrc,     //!< Header+body CRC mismatch (corrupt or tampered).
};

/** Human-readable decoder-error name. */
const char *frameErrorName(FrameError error);

/**
 * Incremental frame parser over an untrusted byte stream.  feed() bytes
 * as they arrive, then call next() until it stops returning Frame.
 * After the first Error result the decoder stays poisoned: the stream
 * boundary is lost, so the only safe reaction is closing the transport.
 */
class FrameDecoder
{
  public:
    enum class Result : std::uint8_t
    {
        NeedMore = 0, //!< No complete frame buffered yet.
        Ready,        //!< A frame was produced.
        Corrupt,      //!< Stream rejected; see lastError().
    };

    /** Append raw bytes from the transport. */
    void feed(const std::uint8_t *data, std::size_t size);

    /** Extract the next complete frame into @p frame. */
    [[nodiscard]] Result next(Frame &frame);

    /** The reason for the Corrupt result (None before any error). */
    FrameError lastError() const { return error_; }

    /** Bytes currently buffered (bounded by header + kMaxFrameBody). */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0; //!< Prefix of buffer_ already parsed.
    FrameError error_ = FrameError::None;
};

// --- request/response body codecs (all bounds-checked, none throw) ---

/** Build a Put request body: u16 name length, name bytes, payload. */
[[nodiscard]] std::vector<std::uint8_t>
makePutBody(std::string_view name, const std::vector<std::uint8_t> &data);

/** Parsed Put body. */
struct PutBody
{
    std::string name;
    std::vector<std::uint8_t> data;
};

/** Parse a Put body; false on malformed lengths or oversized name. */
[[nodiscard]] bool tryParsePutBody(const std::vector<std::uint8_t> &body,
                                   PutBody &out);

/** Build an Error response body: u16 status then message text. */
[[nodiscard]] std::vector<std::uint8_t>
makeErrorBody(ServerStatus status, std::string_view message);

/** Parsed Error body. */
struct ErrorBody
{
    ServerStatus status = ServerStatus::Internal;
    std::string message;
};

/** Parse an Error body; false when shorter than the status field. */
[[nodiscard]] bool tryParseErrorBody(const std::vector<std::uint8_t> &body,
                                     ErrorBody &out);

/**
 * Serialise @p payload as one or more Data frames for @p request_id,
 * chunked at @p chunk bytes (clamped to [1, kMaxFrameBody]); every
 * frame but the last carries kFlagMore.  An empty payload emits one
 * empty terminal Data frame so the receiver always sees a reply.
 */
void appendDataFrames(std::vector<std::uint8_t> &out,
                      std::uint64_t request_id,
                      const std::vector<std::uint8_t> &payload,
                      std::size_t chunk);

} // namespace dnastore::server
