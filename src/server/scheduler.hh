/**
 * @file
 * The dnastored request scheduler (docs/SERVER.md): admission control,
 * get-coalescing and pool batching over the shared ThreadPool.
 *
 * Decode is seconds-per-object (clustering + consensus dominate), so
 * the scheduler's job is to do strictly less decode work than the
 * request stream asks for:
 *
 *  - **Coalescing** — concurrent gets for the same object join one
 *    GetGroup and share a single backend fetch; the coalescing window
 *    spans from submit until the fetch completes, so a get arriving
 *    while "photo.jpg" is already decoding rides along for free.
 *  - **Batching** — up to batch_max distinct queued objects dispatch as
 *    ONE Backend::fetchMany call, which flattens every object's shards
 *    into a single parallel pass over the pool.
 *  - **Admission** — load beyond max_inflight (global) or
 *    per_client_inflight (per connection) is rejected *immediately*
 *    with a typed status (Overloaded / QuotaExceeded) instead of
 *    queueing unboundedly; after beginDrain() every new request gets
 *    ShuttingDown.
 *  - **Put exclusion** — Archive::put mutates; gets are const.  A
 *    pending put blocks new reads (no writer starvation), and starts
 *    only once active reads drain.
 *
 * Threading: submit* may be called from any thread (the event loop);
 * completion callbacks run on pool workers and must not block — the
 * server's callbacks just post to its completion queue and poke the
 * wakeup pipe.  Backend calls and callbacks always run OUTSIDE the
 * scheduler mutex (dnalint R11).  No method throws.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/backend.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"
#include "util/thread_pool.hh"

namespace dnastore::server
{

struct SchedulerMetrics; // Process-global obs handles (scheduler.cc).

/** Scheduler knobs (daemon flags map onto these 1:1). */
struct SchedulerConfig
{
    std::size_t num_threads = 0; //!< Pool workers; 0 = hardware.
    std::size_t max_inflight = 64;       //!< Global admission limit.
    std::size_t per_client_inflight = 8; //!< Per-connection quota.
    std::size_t batch_max = 4; //!< Max distinct objects per fetch batch.
    std::size_t max_concurrent_batches = 2; //!< Parallel fetch batches.
};

/** Monotonic per-scheduler totals (the obs counters, but instance-local
 *  so tests and the server report can read one server's numbers even
 *  though the metrics registry is process-global). */
struct SchedulerCounters
{
    std::uint64_t requests = 0;       //!< Admitted requests.
    std::uint64_t coalesced_gets = 0; //!< Gets that joined a live group.
    std::uint64_t batches = 0;        //!< fetchMany dispatches.
    std::uint64_t batched_gets = 0;   //!< Distinct objects across batches.
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t rejected_draining = 0;
};

/**
 * The scheduler.  One instance per server; owns the worker pool.
 * Destruction drains: outstanding work completes and callbacks fire
 * before the destructor returns.
 */
class Scheduler
{
  public:
    using GetCallback = std::function<void(const FetchResult &)>;
    using PutCallback = std::function<void(const StoreResult &)>;
    using MetaCallback = std::function<void(const MetaResult &)>;

    Scheduler(Backend &backend, const SchedulerConfig &config);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Submit a get.  Returns Ok when admitted — @p done will then be
     * invoked exactly once from a pool worker — or a typed rejection
     * (Overloaded / QuotaExceeded / ShuttingDown), in which case @p
     * done is never invoked and the caller replies inline.
     */
    [[nodiscard]] ServerStatus submitGet(std::uint64_t client_id,
                                         const std::string &name,
                                         GetCallback done);

    /** Submit a put (same admission contract as submitGet). */
    [[nodiscard]] ServerStatus submitPut(std::uint64_t client_id,
                                         std::string name,
                                         std::vector<std::uint8_t> data,
                                         PutCallback done);

    /** Submit a listing (same admission contract). */
    [[nodiscard]] ServerStatus submitLs(std::uint64_t client_id,
                                        MetaCallback done);

    /** Submit a stat (same admission contract). */
    [[nodiscard]] ServerStatus submitStat(std::uint64_t client_id,
                                          std::string name,
                                          MetaCallback done);

    /** Stop admitting: every later submit returns ShuttingDown. */
    void beginDrain();

    /** Block until no admitted request remains (callbacks delivered). */
    void drainWait();

    /** True when no admitted request is queued or running. */
    [[nodiscard]] bool idle() const;

    /** Snapshot of the instance-local totals. */
    [[nodiscard]] SchedulerCounters counters() const;

    /** Worker threads backing this scheduler. */
    std::size_t numThreads() const { return pool_.size(); }

  private:
    /** One admitted get waiting on (or riding) a fetch. */
    struct GetWaiter
    {
        std::uint64_t client_id = 0;
        GetCallback done;
        std::uint64_t submit_us = 0;
    };

    /** All waiters for one object name; running once dispatched. */
    struct GetGroup
    {
        std::vector<GetWaiter> waiters;
        bool running = false;
    };

    struct PutJob
    {
        std::uint64_t client_id = 0;
        std::string name;
        std::vector<std::uint8_t> data;
        PutCallback done;
        std::uint64_t submit_us = 0;
    };

    struct MetaJob
    {
        std::uint64_t client_id = 0;
        bool is_stat = false;
        std::string name; //!< Only for stat.
        MetaCallback done;
        std::uint64_t submit_us = 0;
    };

    /**
     * Work pumpLocked decided may run now, as plain descriptors.  The
     * caller hands them to launch() AFTER unlocking, which is where the
     * worker closures are built and submitted (dnalint R11: no
     * ThreadPool::submit — direct or transitive — under a held mutex).
     */
    struct PendingWork
    {
        std::shared_ptr<PutJob> put;
        std::vector<std::shared_ptr<MetaJob>> metas;
        std::vector<std::vector<std::string>> batches;
    };

    /** Admission check; bumps inflight counts when admitting. */
    [[nodiscard]] ServerStatus admitLocked(std::uint64_t client_id)
        DNASTORE_REQUIRES(mu_);

    /** Decide what may dispatch now; fills @p work (no side effects
     *  beyond queue/accounting updates — nothing blocking). */
    void pumpLocked(PendingWork &work) DNASTORE_REQUIRES(mu_);

    /** Submit collected work to the pool (call unlocked). */
    void launch(PendingWork &work);

    /** Release one admitted request's quota slots. */
    void releaseLocked(std::uint64_t client_id) DNASTORE_REQUIRES(mu_);

    /** Pool-worker bodies. */
    void runBatch(const std::vector<std::string> &names);
    void runPut(std::shared_ptr<PutJob> job);
    void runMeta(std::shared_ptr<MetaJob> job);

    [[nodiscard]] bool idleLocked() const DNASTORE_REQUIRES(mu_);

    Backend &backend_;
    const SchedulerConfig config_;
    // Resolved once at construction so no metrics-registry lookup (which
    // takes the registry mutex) ever happens under mu_ (dnalint R11).
    SchedulerMetrics &metrics_;

    mutable Mutex mu_{"server.scheduler"};
    CondVar idle_cv_;

    std::map<std::string, GetGroup> groups_ DNASTORE_GUARDED_BY(mu_);
    std::deque<std::string> get_queue_ DNASTORE_GUARDED_BY(mu_);
    std::deque<std::shared_ptr<PutJob>> put_queue_
        DNASTORE_GUARDED_BY(mu_);
    std::deque<std::shared_ptr<MetaJob>> meta_queue_
        DNASTORE_GUARDED_BY(mu_);

    std::size_t inflight_total_ DNASTORE_GUARDED_BY(mu_) = 0;
    std::map<std::uint64_t, std::size_t> per_client_
        DNASTORE_GUARDED_BY(mu_);
    std::size_t running_batches_ DNASTORE_GUARDED_BY(mu_) = 0;
    std::size_t active_reads_ DNASTORE_GUARDED_BY(mu_) = 0;
    bool put_active_ DNASTORE_GUARDED_BY(mu_) = false;
    bool draining_ DNASTORE_GUARDED_BY(mu_) = false;
    SchedulerCounters counters_ DNASTORE_GUARDED_BY(mu_);

    // Declared last so workers join (and all run* bodies finish) before
    // any other member dies.
    ThreadPool pool_;
};

} // namespace dnastore::server
