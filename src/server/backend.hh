/**
 * @file
 * Storage backend interface of the request scheduler.  The scheduler's
 * interesting behaviour — coalescing, batching, admission, drain — is
 * independent of what a fetch actually costs, so it talks to storage
 * through this narrow seam: production wires ArchiveBackend (a real
 * DNA archive), tests wire a blocking fake to make races and batching
 * windows deterministic.
 *
 * Contract: every method is thread-safe to the extent documented,
 * never throws, and reports failures through ServerStatus.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace dnastore::server
{

/** One object of a fetchMany batch. */
struct FetchResult
{
    ServerStatus status = ServerStatus::Internal;
    std::string error;               //!< Detail when status != Ok.
    std::vector<std::uint8_t> data;  //!< Object bytes when status == Ok.

    bool ok() const { return status == ServerStatus::Ok; }
};

/** Outcome of a store (put). */
struct StoreResult
{
    ServerStatus status = ServerStatus::Internal;
    std::string error;
    std::string receipt_json; //!< PutOk body when status == Ok.

    bool ok() const { return status == ServerStatus::Ok; }
};

/** Outcome of a metadata read (ls/stat). */
struct MetaResult
{
    ServerStatus status = ServerStatus::Internal;
    std::string error;
    std::string json; //!< Canonical document when status == Ok.

    bool ok() const { return status == ServerStatus::Ok; }
};

/**
 * The scheduler's view of storage.  fetchMany/list/statObject may run
 * concurrently with each other; store requires exclusive access (the
 * scheduler serialises puts against all other work, mirroring
 * Archive's const-vs-mutating contract).
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Fetch all @p names in one batched pass (results align by index). */
    [[nodiscard]] virtual std::vector<FetchResult>
    fetchMany(const std::vector<std::string> &names) = 0;

    /** Store one object.  Exclusive: no concurrent backend calls. */
    [[nodiscard]] virtual StoreResult
    storeObject(const std::string &name,
                const std::vector<std::uint8_t> &data) = 0;

    /** Canonical listing document (dnastore.archive_ls). */
    [[nodiscard]] virtual MetaResult list() = 0;

    /** Canonical metadata document for one object (dnastore.archive_stat). */
    [[nodiscard]] virtual MetaResult
    statObject(const std::string &name) = 0;
};

} // namespace dnastore::server
