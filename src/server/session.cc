#include "server/session.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace dnastore::server
{

Session::~Session()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Session::ReadOutcome
Session::readFrames(std::vector<Frame> &frames)
{
    std::uint8_t chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            decoder_.feed(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(chunk))
                break; // Short read: the socket is drained.
            continue;
        }
        if (n == 0)
            return ReadOutcome::Eof;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return ReadOutcome::Eof;
    }
    for (;;) {
        Frame frame;
        const FrameDecoder::Result r = decoder_.next(frame);
        if (r == FrameDecoder::Result::Ready) {
            frames.push_back(std::move(frame));
            continue;
        }
        if (r == FrameDecoder::Result::Corrupt)
            return ReadOutcome::Corrupt;
        break; // NeedMore.
    }
    return ReadOutcome::Ok;
}

void
Session::enqueue(std::vector<std::uint8_t> bytes)
{
    if (bytes.empty())
        return;
    // Compact the sent prefix before growing so the buffer tracks the
    // unflushed backlog, not the connection's lifetime traffic.
    if (write_offset_ > 0) {
        write_buf_.erase(write_buf_.begin(),
                         write_buf_.begin() +
                             static_cast<std::ptrdiff_t>(write_offset_));
        write_offset_ = 0;
    }
    if (write_buf_.empty())
        write_buf_ = std::move(bytes);
    else
        write_buf_.insert(write_buf_.end(), bytes.begin(), bytes.end());
}

bool
Session::flush()
{
    while (write_offset_ < write_buf_.size()) {
        const std::size_t remaining = write_buf_.size() - write_offset_;
        const ssize_t n = ::send(fd_, write_buf_.data() + write_offset_,
                                 remaining, MSG_NOSIGNAL);
        if (n > 0) {
            write_offset_ += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // Socket full; poll for POLLOUT.
        if (n < 0 && errno == EINTR)
            continue;
        return false; // Peer gone (EPIPE, reset, ...).
    }
    if (write_offset_ == write_buf_.size() && !write_buf_.empty()) {
        write_buf_.clear();
        write_offset_ = 0;
    }
    return true;
}

} // namespace dnastore::server
