/**
 * @file
 * Blocking client for the dnastored wire protocol: one TCP connection,
 * synchronous request/reply.  Used by `dnastore client ...`, the
 * server-load generator and the socket e2e tests.
 *
 * Error handling mirrors the server: nothing throws, every operation
 * returns a ServerStatus — server-side rejections arrive as typed
 * Error frames and are surfaced verbatim; local socket/framing
 * failures map onto Internal/ProtocolError with a message.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hh"

namespace dnastore::server
{

/** Outcome of one client call. */
struct ClientReply
{
    ServerStatus status = ServerStatus::Internal;
    std::string error;              //!< Detail when status != Ok.
    std::vector<std::uint8_t> data; //!< get: object bytes; ping: echo.
    std::string json; //!< put: receipt; ls/stat: canonical document.

    bool ok() const { return status == ServerStatus::Ok; }
};

/** One blocking connection to a dnastored instance. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to 127.0.0.1:@p port.  @p timeout_ms bounds every later
     * socket wait (0 = no timeout).  False on failure (see error()).
     */
    [[nodiscard]] bool connectTo(std::uint16_t port, int timeout_ms);

    /** Last connect error. */
    const std::string &error() const { return error_; }

    [[nodiscard]] ClientReply ping(const std::vector<std::uint8_t> &echo);
    [[nodiscard]] ClientReply put(const std::string &name,
                                  const std::vector<std::uint8_t> &data);
    [[nodiscard]] ClientReply get(const std::string &name);
    [[nodiscard]] ClientReply ls();
    [[nodiscard]] ClientReply stat(const std::string &name);

    void close();

  private:
    /** Send one request frame; false on socket failure. */
    [[nodiscard]] bool sendFrame(MsgType type, std::uint64_t request_id,
                                 const std::vector<std::uint8_t> &body,
                                 std::string &error);

    /** Read frames for @p request_id until a terminal one arrives. */
    [[nodiscard]] ClientReply readReply(std::uint64_t request_id);

    int fd_ = -1;
    std::uint64_t next_request_id_ = 1;
    FrameDecoder decoder_;
    std::string error_;
};

} // namespace dnastore::server
