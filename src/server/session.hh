/**
 * @file
 * One client connection: a nonblocking socket plus its read/write state
 * machines.  The read side feeds raw bytes through a FrameDecoder; the
 * write side drains a byte queue as POLLOUT allows.
 *
 * Sessions are single-threaded by construction — only the server's
 * event loop ever touches one.  Pool workers never see a Session;
 * they post completed reply bytes to the server's completion queue,
 * and the loop thread enqueues them here.  That confinement is what
 * keeps this class lock-free.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/protocol.hh"

namespace dnastore::server
{

/** One connected client (event-loop confined; see file comment). */
class Session
{
  public:
    /** Takes ownership of @p fd (closed on destruction). */
    Session(int fd, std::uint64_t id)
        : fd_(fd)
        , id_(id)
    {
    }
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    int fd() const { return fd_; }
    /** Session id; doubles as the scheduler's client id for quotas. */
    std::uint64_t id() const { return id_; }

    /** What readFrames observed on the socket. */
    enum class ReadOutcome : std::uint8_t
    {
        Ok = 0,  //!< Stream healthy (frames may have been appended).
        Eof,     //!< Peer closed or socket error: close the session.
        Corrupt, //!< Framing violation: reply + close (see lastError).
    };

    /**
     * Drain readable bytes and append every complete frame to
     * @p frames.  Call when poll reports POLLIN.
     */
    [[nodiscard]] ReadOutcome readFrames(std::vector<Frame> &frames);

    /** Decoder error behind a Corrupt outcome. */
    FrameError lastError() const { return decoder_.lastError(); }

    /** Queue reply bytes (already-encoded frames) for writing. */
    void enqueue(std::vector<std::uint8_t> bytes);

    /** Flush queued bytes as far as the socket allows; false = close. */
    [[nodiscard]] bool flush();

    /** True when bytes are still queued (poll for POLLOUT). */
    bool wantsWrite() const { return write_offset_ < write_buf_.size(); }

    /** Mark for closure once the write queue drains. */
    void closeAfterFlush() { close_after_flush_ = true; }
    bool closingAfterFlush() const { return close_after_flush_; }

    /** Requests this session has submitted (admitted or rejected). */
    std::uint64_t requestsSeen() const { return requests_seen_; }
    void countRequest() { ++requests_seen_; }

  private:
    int fd_;
    std::uint64_t id_;
    FrameDecoder decoder_;
    std::vector<std::uint8_t> write_buf_;
    std::size_t write_offset_ = 0; //!< Prefix of write_buf_ sent.
    bool close_after_flush_ = false;
    std::uint64_t requests_seen_ = 0;
};

} // namespace dnastore::server
