#include "obs/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dnastore::obs
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // JSON has no NaN/Inf; clamp to null-adjacent zero to keep the
    // document parseable (metrics should never produce these anyway).
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    std::string text(buf, result.ptr);
    // "1e+30" and "1" are valid JSON; ensure a stable integral form
    // keeps no trailing '.' (to_chars never emits one).
    return text;
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return;
    }
    if (!needs_comma_.empty()) {
        if (needs_comma_.back())
            out_ += ',';
        needs_comma_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    needs_comma_.push_back(false);
}

void
JsonWriter::endObject()
{
    needs_comma_.pop_back();
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    needs_comma_.push_back(false);
}

void
JsonWriter::endArray()
{
    needs_comma_.pop_back();
    out_ += ']';
}

void
JsonWriter::key(std::string_view name)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    pending_key_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
}

void
JsonWriter::value(const char *text)
{
    value(std::string_view(text));
}

void
JsonWriter::value(bool boolean)
{
    separate();
    out_ += boolean ? "true" : "false";
}

void
JsonWriter::value(double number)
{
    separate();
    out_ += jsonNumber(number);
}

void
JsonWriter::value(std::uint64_t number)
{
    separate();
    out_ += std::to_string(number);
}

void
JsonWriter::value(std::int64_t number)
{
    separate();
    out_ += std::to_string(number);
}

} // namespace dnastore::obs
