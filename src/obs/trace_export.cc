#include "obs/trace_export.hh"

#include <fstream>

#include "obs/json.hh"

namespace dnastore::obs
{

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    JsonWriter json;
    json.beginObject();
    json.key("displayTimeUnit");
    json.value("ms");
    json.key("traceEvents");
    json.beginArray();
    for (const TraceEvent &event : events) {
        json.beginObject();
        json.key("name");
        json.value(event.name);
        json.key("cat");
        json.value("dnastore");
        json.key("ph");
        json.value("X");
        json.key("ts");
        json.value(event.ts_us);
        json.key("dur");
        json.value(event.dur_us);
        json.key("pid");
        json.value(std::uint64_t{1});
        json.key("tid");
        json.value(std::uint64_t{event.tid});
        json.key("args");
        json.beginObject();
        json.key("cpu_us");
        json.value(event.cpu_us);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.text();
}

std::string
chromeTraceJson(const TraceSink &sink)
{
    return chromeTraceJson(sink.events());
}

bool
writeChromeTrace(const TraceSink &sink, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << chromeTraceJson(sink) << '\n';
    return static_cast<bool>(out);
}

} // namespace dnastore::obs
