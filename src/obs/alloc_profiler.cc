#include "obs/alloc_profiler.hh"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/stage_tag.hh"

namespace dnastore::obs::alloc
{

namespace detail
{
std::atomic<int> g_state{kUnconfigured};
} // namespace detail

namespace
{

constexpr std::size_t kMaxStages = 64;

std::atomic<std::uint32_t> g_sample_every{1};

/** One stage tag's attribution; claimed by CAS on `tag`. */
struct Slot
{
    std::atomic<const char *> tag{nullptr};
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> bytes{0};
};

Slot g_slots[kMaxStages];

/** Samples attributed to tags beyond the slot table. */
std::atomic<std::uint64_t> g_dropped{0};

Slot *
findOrClaim(const char *tag)
{
    for (Slot &slot : g_slots) {
        const char *have = slot.tag.load(std::memory_order_acquire);
        if (have == nullptr) {
            const char *expected = nullptr;
            if (slot.tag.compare_exchange_strong(
                    expected, tag, std::memory_order_acq_rel))
                return &slot;
            have = expected;
        }
        if (have == tag || std::strcmp(have, tag) == 0)
            return &slot;
    }
    return nullptr;
}

} // namespace

namespace detail
{

bool
bootstrap()
{
    // Racing first calls may both parse the env; both write the same
    // result, so the last store winning is benign.
    const char *env = std::getenv("DNASTORE_PROFILE_ALLOC");
    std::uint64_t every = 0;
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        every = std::strtoull(env, &end, 10);
        if (end == nullptr || *end != '\0')
            every = 0;
    }
    if (every == 0) {
        g_state.store(kDisabled, std::memory_order_relaxed);
        return false;
    }
    g_sample_every.store(static_cast<std::uint32_t>(
                             std::min<std::uint64_t>(every, 1u << 20)),
                         std::memory_order_relaxed);
    g_state.store(kEnabled, std::memory_order_relaxed);
    return true;
}

void
record(std::size_t bytes)
{
    const std::uint32_t every =
        g_sample_every.load(std::memory_order_relaxed);
    if (every > 1) {
        thread_local std::uint32_t tick = 0;
        if (++tick % every != 0)
            return;
    }
    const char *tag = currentStageTag();
    if (*tag == '\0')
        tag = "untagged";
    Slot *slot = findOrClaim(tag);
    if (slot == nullptr) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot->allocs.fetch_add(1, std::memory_order_relaxed);
    slot->bytes.fetch_add(static_cast<std::uint64_t>(bytes),
                          std::memory_order_relaxed);
}

} // namespace detail

void
enable(std::uint32_t sample_every)
{
    g_sample_every.store(sample_every == 0 ? 1 : sample_every,
                         std::memory_order_relaxed);
    detail::g_state.store(detail::kEnabled, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_state.store(detail::kDisabled, std::memory_order_relaxed);
}

std::uint32_t
sampleEvery()
{
    return g_sample_every.load(std::memory_order_relaxed);
}

void
reset()
{
    detail::g_state.store(detail::kDisabled, std::memory_order_relaxed);
    g_sample_every.store(1, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
    for (Slot &slot : g_slots) {
        slot.tag.store(nullptr, std::memory_order_release);
        slot.allocs.store(0, std::memory_order_relaxed);
        slot.bytes.store(0, std::memory_order_relaxed);
    }
}

AllocSnapshot
allocSnapshot()
{
    AllocSnapshot snapshot;
    snapshot.enabled = enabled();
    snapshot.sample_every = sampleEvery();
    const std::uint64_t scale = snapshot.sample_every;
    for (const Slot &slot : g_slots) {
        const char *tag = slot.tag.load(std::memory_order_acquire);
        if (tag == nullptr)
            continue;
        StageAllocSnapshot s;
        s.stage = tag;
        s.sampled_allocs = slot.allocs.load(std::memory_order_relaxed);
        s.sampled_bytes = slot.bytes.load(std::memory_order_relaxed);
        s.estimated_allocs = s.sampled_allocs * scale;
        s.estimated_bytes = s.sampled_bytes * scale;
        snapshot.stages.push_back(std::move(s));
    }
    std::sort(snapshot.stages.begin(), snapshot.stages.end(),
              [](const StageAllocSnapshot &a, const StageAllocSnapshot &b) {
                  return a.stage < b.stage;
              });
    return snapshot;
}

AllocSnapshot
AllocSnapshot::delta(const AllocSnapshot &before) const
{
    AllocSnapshot out;
    out.enabled = enabled;
    out.sample_every = sample_every;
    for (const StageAllocSnapshot &after : stages) {
        const auto it = std::find_if(
            before.stages.begin(), before.stages.end(),
            [&after](const StageAllocSnapshot &s) {
                return s.stage == after.stage;
            });
        StageAllocSnapshot d = after;
        if (it != before.stages.end()) {
            d.sampled_allocs = d.sampled_allocs > it->sampled_allocs
                ? d.sampled_allocs - it->sampled_allocs
                : 0;
            d.sampled_bytes = d.sampled_bytes > it->sampled_bytes
                ? d.sampled_bytes - it->sampled_bytes
                : 0;
            d.estimated_allocs = d.sampled_allocs * sample_every;
            d.estimated_bytes = d.sampled_bytes * sample_every;
        }
        if (d.sampled_allocs > 0 || d.sampled_bytes > 0)
            out.stages.push_back(std::move(d));
    }
    return out;
}

} // namespace dnastore::obs::alloc

// ---------------------------------------------------------------------
// Replacement global allocation functions.  The full matched set is
// provided so profiled and unprofiled paths can never pair a custom
// new with a default delete.  Frees are deliberately not tracked: a
// free cannot be attributed to a size or stage without a per-block
// header, and the profiler's question is "who allocates", not "who
// leaks" (sanitizers own that).
// ---------------------------------------------------------------------

namespace
{

void *
profiledAlloc(std::size_t size)
{
    // malloc(0) may return nullptr legally; operator new must not.
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p != nullptr)
        dnastore::obs::alloc::noteAllocation(size);
    return p;
}

void *
profiledAlignedAlloc(std::size_t size, std::size_t align)
{
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *) : align,
                       size == 0 ? 1 : size) != 0)
        return nullptr;
    dnastore::obs::alloc::noteAllocation(size);
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    void *p = profiledAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = profiledAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return profiledAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return profiledAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = profiledAlignedAlloc(size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = profiledAlignedAlloc(size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return profiledAlignedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return profiledAlignedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(p);
}
