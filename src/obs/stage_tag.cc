#include "obs/stage_tag.hh"

namespace dnastore::obs
{

namespace
{

// A plain pointer, not an atomic: only the owning thread reads or
// writes its own slot.  Trivially destructible, so reading it stays
// safe during thread teardown (the alloc profiler may run that late).
thread_local const char *g_stage_tag = nullptr;

} // namespace

const char *
currentStageTag()
{
    const char *tag = g_stage_tag;
    return tag != nullptr ? tag : "";
}

const char *
exchangeStageTag(const char *tag)
{
    const char *prev = g_stage_tag;
    g_stage_tag = tag;
    return prev;
}

} // namespace dnastore::obs
