/**
 * @file
 * Chrome trace_event exporter: serialises a TraceSink's spans into the
 * JSON Array/Object format understood by chrome://tracing and Perfetto
 * (https://ui.perfetto.dev).  Every span becomes one complete ("ph":
 * "X") event; the viewers reconstruct nesting from timestamp/duration
 * containment per thread.
 */

#pragma once

#include <string>
#include <vector>

#include "obs/span.hh"

namespace dnastore::obs
{

/** Serialise @p events as a Chrome trace JSON document. */
[[nodiscard]] std::string
chromeTraceJson(const std::vector<TraceEvent> &events);

/** Serialise everything @p sink collected. */
[[nodiscard]] std::string chromeTraceJson(const TraceSink &sink);

/**
 * Write @p sink's events to @p path as Chrome trace JSON.
 * @return false (with a logged error) when the file cannot be written.
 */
[[nodiscard]] bool
writeChromeTrace(const TraceSink &sink, const std::string &path);

} // namespace dnastore::obs
