/**
 * @file
 * Minimal streaming JSON writer for the observability exporters.
 * Emits canonical output: no whitespace dependence on locale, doubles
 * via shortest-round-trip std::to_chars, object keys in whatever order
 * the caller emits them (callers use sorted std::map iteration, so the
 * documents are byte-stable across runs and platforms).
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dnastore::obs
{

/**
 * Streaming JSON writer with explicit begin/end calls.  The writer
 * inserts commas automatically; the caller is responsible for matching
 * begin/end pairs and for emitting key() before every value inside an
 * object.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key (must be inside an object). */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text);
    void value(bool boolean);
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);

    /** The document built so far. */
    const std::string &text() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** true = a value was already emitted at this nesting level. */
    std::vector<bool> needs_comma_;
    bool pending_key_ = false;
};

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(std::string_view text);

/** Shortest-round-trip decimal form of a double (to_chars). */
std::string jsonNumber(double v);

} // namespace dnastore::obs
