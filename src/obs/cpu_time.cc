#include "obs/cpu_time.hh"

#include <ctime>

namespace dnastore::obs
{

std::uint64_t
threadCpuNanos()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
        static_cast<std::uint64_t>(ts.tv_nsec);
#else
    return 0;
#endif
}

bool
threadCpuClockAvailable()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    return clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0;
#else
    return false;
#endif
}

} // namespace dnastore::obs
