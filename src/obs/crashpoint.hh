/**
 * @file
 * Named, seeded crash points and IO-fault knobs for robustness testing.
 *
 * A crash point is a named place in the code (e.g. the instant between
 * the pool rename and the manifest rename in Archive::save) where a
 * test or the chaos harness can schedule process death or a simulated
 * IO failure.  Production binaries pay a single relaxed atomic load per
 * point when nothing is armed — the same no-sink pattern the span
 * tracer uses — so the points can stay compiled in everywhere.
 *
 * Activation:
 *   - programmatic: crash::configure("archive.save.between=kill@2");
 *   - environment:  DNASTORE_CRASHPOINTS="seed=7;obs.write.body=short@p0.5"
 *     parsed once via crash::configureFromEnv() (called lazily by the
 *     first armed check after configure has never run).
 *
 * Spec grammar (semicolon-separated clauses):
 *   seed=<u64>            RNG seed for probability triggers
 *   <point>=<action>      fire on every hit
 *   <point>=<action>@<N>  fire on the Nth hit of that point (1-based)
 *   <point>=<action>@p<X> fire with probability X per hit (seeded)
 * Actions: kill (die at the point, simulating SIGKILL mid-operation),
 * short (die after writing a prefix — writeTextFile only), werror
 * (simulated failed write, e.g. ENOSPC: the caller sees a clean
 * failure), renameerror (simulated failed rename).
 *
 * Death is std::_Exit(kCrashExitCode): no atexit handlers, no stack
 * unwinding, no flushes — as close to a kill -9 as a library can get
 * while still letting a harness distinguish "scheduled crash fired"
 * (exit code) from a real SIGKILL or a genuine bug.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dnastore::obs::crash
{

/** What an armed crash point does when its trigger fires. */
enum class Action : std::uint8_t
{
    None = 0,    //!< Point disarmed (or trigger did not fire).
    Kill,        //!< Die on the spot (std::_Exit(kCrashExitCode)).
    ShortWrite,  //!< Write a prefix, then die (writeTextFile only).
    WriteError,  //!< Simulated failed write; caller takes its error path.
    RenameError, //!< Simulated failed rename; caller takes its error path.
};

/** Exit code of a scheduled crash, distinguishable from real crashes. */
inline constexpr int kCrashExitCode = 86;

/** Human-readable action name ("kill", "short", ...). */
const char *actionName(Action action);

namespace detail
{
/** Tri-state gate: bootstrap pending / configured-disarmed / armed. */
inline constexpr int kUnconfigured = 0;
inline constexpr int kDisarmed = 1;
inline constexpr int kArmed = 2;
extern std::atomic<int> g_state;

/** Slow path of hit(): env bootstrap + per-point trigger evaluation. */
Action evaluate(std::string_view point);
} // namespace detail

/**
 * Check the named crash point.  Disarmed cost: exactly one relaxed
 * atomic load (after a one-time env bootstrap on the very first call
 * process-wide).  Returns the action the caller must apply; Kill is
 * already fatal inside this call, so callers only ever observe the
 * IO-fault actions.
 */
inline Action
hit(std::string_view point)
{
    if (detail::g_state.load(std::memory_order_relaxed) ==
        detail::kDisarmed)
        return Action::None;
    return detail::evaluate(point);
}

/** Die exactly as a fired Kill trigger does (never returns). */
[[noreturn]] void die();

/**
 * Arm crash points from a spec string (see file header for grammar).
 * Replaces any previous configuration; an empty spec disarms all
 * points.  Returns false and fills @p error on a malformed spec
 * (configuration is left disarmed in that case).
 */
bool configure(const std::string &spec, std::string *error = nullptr);

/**
 * Arm from the DNASTORE_CRASHPOINTS environment variable (unset or
 * empty disarms).  Returns false when the variable is set but
 * malformed.
 */
bool configureFromEnv();

/** Disarm every point and forget all hit counts (tests). */
void reset();

/** Times the named point has been hit since the last configure/reset. */
std::uint64_t hitCount(std::string_view point);

} // namespace dnastore::obs::crash
