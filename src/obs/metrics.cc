#include "obs/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace dnastore::obs
{

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      bins_(bounds_.size() + 1)
{
    if (bounds_.empty() ||
        !std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) !=
            bounds_.end()) {
        throw std::invalid_argument(
            "FixedHistogram: bucket bounds must be non-empty and "
            "strictly increasing");
    }
}

void
FixedHistogram::observe(double v)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    bins_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double seen = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(seen, seen + v,
                                       std::memory_order_relaxed)) {
    }
}

double
FixedHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

void
FixedHistogram::reset()
{
    for (auto &bin : bins_)
        bin.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &before) const
{
    MetricsSnapshot out;
    for (const auto &[name, value] : counters) {
        const auto it = before.counters.find(name);
        const std::uint64_t prior =
            it == before.counters.end() ? 0 : it->second;
        out.counters[name] = value >= prior ? value - prior : 0;
    }
    out.gauges = gauges;
    for (const auto &[name, hist] : histograms) {
        HistogramSnapshot d = hist;
        const auto it = before.histograms.find(name);
        if (it != before.histograms.end() &&
            it->second.counts.size() == d.counts.size()) {
            for (std::size_t i = 0; i < d.counts.size(); ++i) {
                const std::uint64_t prior = it->second.counts[i];
                d.counts[i] = d.counts[i] >= prior ? d.counts[i] - prior : 0;
            }
            d.total_count = d.total_count >= it->second.total_count
                ? d.total_count - it->second.total_count
                : 0;
            d.sum -= it->second.sum;
        }
        out.histograms[name] = std::move(d);
    }
    return out;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    auto &slot = counters_[std::string(name)];
    slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    auto &slot = gauges_[std::string(name)];
    slot = std::make_unique<Gauge>();
    return *slot;
}

FixedHistogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> upper_bounds)
{
    MutexLock lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return *it->second;
    auto &slot = histograms_[std::string(name)];
    slot = std::make_unique<FixedHistogram>(std::move(upper_bounds));
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    MetricsSnapshot out;
    for (const auto &[name, counter] : counters_)
        out.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        out.gauges[name] = GaugeSnapshot{gauge->value(), gauge->max()};
    for (const auto &[name, hist] : histograms_) {
        HistogramSnapshot h;
        h.upper_bounds = hist->upperBounds();
        h.counts.reserve(hist->numBuckets());
        for (std::size_t i = 0; i < hist->numBuckets(); ++i)
            h.counts.push_back(hist->bucketCount(i));
        h.total_count = hist->totalCount();
        h.sum = hist->sum();
        out.histograms[name] = std::move(h);
    }
    return out;
}

void
MetricsRegistry::resetAll()
{
    MutexLock lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, hist] : histograms_)
        hist->reset();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

double
histogramQuantile(const HistogramSnapshot &histogram, double q)
{
    if (histogram.total_count == 0 || histogram.counts.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target =
        q * static_cast<double>(histogram.total_count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
        cumulative += histogram.counts[i];
        if (static_cast<double>(cumulative) >= target) {
            // The overflow bucket has no bound; report the last finite
            // one as a floor.
            return i < histogram.upper_bounds.size()
                ? histogram.upper_bounds[i]
                : (histogram.upper_bounds.empty()
                       ? 0.0
                       : histogram.upper_bounds.back());
        }
    }
    return histogram.upper_bounds.empty() ? 0.0
                                          : histogram.upper_bounds.back();
}

std::vector<double>
latencyBucketsSeconds()
{
    return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0};
}

std::vector<double>
percentBuckets()
{
    return {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
}

} // namespace dnastore::obs
