/**
 * @file
 * Thread CPU clock: nanoseconds of CPU actually consumed by the calling
 * thread (CLOCK_THREAD_CPUTIME_ID), as opposed to wall time elapsed.
 *
 * Comparing the two is the cheapest possible utilization probe: a stage
 * whose cpu/wall ratio is near 1.0 is compute-bound on its own thread; a
 * ratio near 0.0 means the thread mostly waited (lock, condvar, IO, or
 * work delegated to pool workers — whose CPU shows up in the
 * `util.thread_pool.task_cpu_seconds` histogram instead).
 *
 * On platforms without a per-thread CPU clock threadCpuNanos() returns
 * 0, so derived ratios degrade to 0 rather than lying.
 */

#pragma once

#include <cstdint>

namespace dnastore::obs
{

/** CPU time consumed by the calling thread, in nanoseconds (0 when the
 *  platform has no per-thread CPU clock). */
std::uint64_t threadCpuNanos();

/** True when threadCpuNanos() is backed by a real clock. */
bool threadCpuClockAvailable();

/**
 * Paired wall/CPU stage timer: reset() marks a start point, seconds()
 * reads elapsed thread-CPU seconds since it.  Mirrors util's WallTimer
 * shape so pipeline stages can run both side by side.
 */
class ThreadCpuTimer
{
  public:
    ThreadCpuTimer() { reset(); }

    void reset() { start_ns_ = threadCpuNanos(); }

    /** Thread-CPU seconds since the last reset(). */
    double
    seconds() const
    {
        const std::uint64_t now = threadCpuNanos();
        return now > start_ns_
            ? static_cast<double>(now - start_ns_) * 1e-9
            : 0.0;
    }

  private:
    std::uint64_t start_ns_ = 0;
};

} // namespace dnastore::obs
