#include "obs/crashpoint.hh"

#include <charconv>
#include <cstdlib>
#include <map>

#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore::obs::crash
{

namespace
{

/** How a point decides whether this hit fires. */
enum class Trigger : std::uint8_t
{
    Every,      //!< Fire on every hit.
    NthHit,     //!< Fire on exactly the nth hit (1-based).
    Probability //!< Fire with probability prob per hit (seeded).
};

struct PointState
{
    Action action = Action::None;
    Trigger trigger = Trigger::Every;
    std::uint64_t nth = 0;      //!< NthHit threshold.
    double prob = 0.0;          //!< Probability per hit.
    std::uint64_t rng_state = 0; //!< Per-point probability stream.
    std::uint64_t hits = 0;     //!< Hits observed since configure.
};

Mutex g_mutex{"obs.crashpoint"};
std::map<std::string, PointState, std::less<>> g_points
    DNASTORE_GUARDED_BY(g_mutex);
std::uint64_t g_seed DNASTORE_GUARDED_BY(g_mutex) = 0xc4a5ULL;

/** SplitMix64 step (local: the obs layer sits below util/random). */
std::uint64_t
mixNext(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** FNV-1a, to give every point its own probability stream. */
std::uint64_t
hashName(std::string_view name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

bool
parseU64(std::string_view text, std::uint64_t &out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !text.empty();
}

bool
parseDouble(std::string_view text, double &out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !text.empty();
}

bool
parseAction(std::string_view name, Action &out)
{
    if (name == "kill")
        out = Action::Kill;
    else if (name == "short")
        out = Action::ShortWrite;
    else if (name == "werror")
        out = Action::WriteError;
    else if (name == "renameerror")
        out = Action::RenameError;
    else
        return false;
    return true;
}

/**
 * Parse one "point=action[@trigger]" or "seed=N" clause into @p points.
 * Returns false and fills @p error on malformed input.
 */
bool
parseClause(std::string_view clause,
            std::map<std::string, PointState, std::less<>> &points,
            std::uint64_t &seed, std::string *error)
{
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
        if (error != nullptr)
            *error = "crashpoint clause without '=': " + std::string(clause);
        return false;
    }
    const std::string_view key = trim(clause.substr(0, eq));
    const std::string_view value = trim(clause.substr(eq + 1));
    if (key == "seed") {
        if (!parseU64(value, seed)) {
            if (error != nullptr)
                *error = "bad crashpoint seed: " + std::string(value);
            return false;
        }
        return true;
    }
    if (key.empty()) {
        if (error != nullptr)
            *error = "crashpoint clause with empty point name";
        return false;
    }

    PointState state;
    std::string_view action_text = value;
    const std::size_t at = value.find('@');
    if (at != std::string_view::npos) {
        action_text = trim(value.substr(0, at));
        const std::string_view trig = trim(value.substr(at + 1));
        if (!trig.empty() && trig.front() == 'p') {
            state.trigger = Trigger::Probability;
            if (!parseDouble(trig.substr(1), state.prob) ||
                state.prob < 0.0 || state.prob > 1.0) {
                if (error != nullptr)
                    *error = "bad crashpoint probability: " +
                             std::string(trig);
                return false;
            }
        } else {
            state.trigger = Trigger::NthHit;
            if (!parseU64(trig, state.nth) || state.nth == 0) {
                if (error != nullptr)
                    *error = "bad crashpoint hit index (want >= 1): " +
                             std::string(trig);
                return false;
            }
        }
    }
    if (!parseAction(action_text, state.action)) {
        if (error != nullptr)
            *error = "unknown crashpoint action: " +
                     std::string(action_text) +
                     " (want kill|short|werror|renameerror)";
        return false;
    }
    points.insert_or_assign(std::string(key), state);
    return true;
}

/** Parse a full spec; empty spec yields an empty (disarmed) point set. */
bool
parseSpec(const std::string &spec,
          std::map<std::string, PointState, std::less<>> &points,
          std::uint64_t &seed, std::string *error)
{
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string_view clause =
            trim(std::string_view(spec).substr(begin, end - begin));
        if (!clause.empty() &&
            !parseClause(clause, points, seed, error))
            return false;
        begin = end + 1;
    }
    return true;
}

/** Install @p points; callers hold g_mutex. */
void
installLocked(std::map<std::string, PointState, std::less<>> &&points,
              std::uint64_t seed) DNASTORE_REQUIRES(g_mutex)
{
    g_seed = seed;
    g_points = std::move(points);
    for (auto &[name, state] : g_points)
        state.rng_state = seed ^ hashName(name);
    detail::g_state.store(g_points.empty() ? detail::kDisarmed
                                           : detail::kArmed,
                          std::memory_order_release);
}

/** One-time env bootstrap; callers hold g_mutex. */
void
bootstrapFromEnvLocked() DNASTORE_REQUIRES(g_mutex)
{
    std::map<std::string, PointState, std::less<>> points;
    std::uint64_t seed = g_seed;
    const char *env = std::getenv("DNASTORE_CRASHPOINTS");
    if (env != nullptr) {
        std::string error;
        if (!parseSpec(env, points, seed, &error))
            points.clear(); // Malformed env disarms; configureFromEnv
                            // reports the error to callers who ask.
    }
    installLocked(std::move(points), seed);
}

} // namespace

namespace detail
{

std::atomic<int> g_state{kUnconfigured};

Action
evaluate(std::string_view point)
{
    MutexLock lock(g_mutex);
    if (g_state.load(std::memory_order_relaxed) == kUnconfigured)
        bootstrapFromEnvLocked();
    if (g_state.load(std::memory_order_relaxed) != kArmed)
        return Action::None;
    const auto it = g_points.find(point);
    if (it == g_points.end())
        return Action::None;
    PointState &state = it->second;
    state.hits += 1;
    bool fire = false;
    switch (state.trigger) {
    case Trigger::Every:
        fire = true;
        break;
    case Trigger::NthHit:
        fire = state.hits == state.nth;
        break;
    case Trigger::Probability: {
        const std::uint64_t z = mixNext(state.rng_state);
        const double roll =
            static_cast<double>(z >> 11) *
            (1.0 / 9007199254740992.0); // 2^-53
        fire = roll < state.prob;
        break;
    }
    }
    if (!fire)
        return Action::None;
    if (state.action == Action::Kill)
        die();
    return state.action;
}

} // namespace detail

const char *
actionName(Action action)
{
    switch (action) {
    case Action::None:
        return "none";
    case Action::Kill:
        return "kill";
    case Action::ShortWrite:
        return "short";
    case Action::WriteError:
        return "werror";
    case Action::RenameError:
        return "renameerror";
    }
    return "unknown";
}

void
die()
{
    std::_Exit(kCrashExitCode);
}

bool
configure(const std::string &spec, std::string *error)
{
    std::map<std::string, PointState, std::less<>> points;
    MutexLock lock(g_mutex);
    std::uint64_t seed = g_seed;
    if (!parseSpec(spec, points, seed, error)) {
        installLocked({}, seed);
        return false;
    }
    installLocked(std::move(points), seed);
    return true;
}

bool
configureFromEnv()
{
    const char *env = std::getenv("DNASTORE_CRASHPOINTS");
    std::map<std::string, PointState, std::less<>> points;
    MutexLock lock(g_mutex);
    std::uint64_t seed = g_seed;
    if (env != nullptr && env[0] != '\0' &&
        !parseSpec(env, points, seed, nullptr)) {
        installLocked({}, seed);
        return false;
    }
    installLocked(std::move(points), seed);
    return true;
}

void
reset()
{
    MutexLock lock(g_mutex);
    installLocked({}, 0xc4a5ULL);
}

std::uint64_t
hitCount(std::string_view point)
{
    MutexLock lock(g_mutex);
    const auto it = g_points.find(point);
    return it == g_points.end() ? 0 : it->second.hits;
}

} // namespace dnastore::obs::crash
