/**
 * @file
 * Low-overhead span tracing.  A Span is an RAII scope marker: it
 * records a monotonic start timestamp on construction and appends a
 * completed trace event on destruction.  Spans nest naturally with
 * call scope (e.g. `pipeline/run` > `pipeline/decoding` >
 * `decoding/unit` > `decoding/rs_row`) and may be opened from any
 * thread, including thread-pool workers.
 *
 * Cost model: with no sink installed a Span is one relaxed atomic load
 * and a branch — no clock read, no allocation, no lock.  With a sink
 * installed, events are buffered in a per-thread vector and flushed
 * into the sink (one mutex acquisition) only when the outermost span on
 * that thread closes, so the hot path never takes a lock.
 *
 * Each event also records the thread-CPU time consumed inside the span
 * (obs/cpu_time.hh): comparing cpu_us to dur_us tells a waiting span
 * from a computing one straight from the trace.
 *
 * Span names must be string literals (or otherwise outlive the sink):
 * events store the pointer, not a copy.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore::obs
{

/** One completed span, in Chrome trace_event terms a "ph":"X" event. */
struct TraceEvent
{
    const char *name = "";    //!< Span name, e.g. "clustering/round".
    std::uint64_t ts_us = 0;  //!< Start, microseconds since trace epoch.
    std::uint64_t dur_us = 0; //!< Duration in microseconds.
    std::uint64_t cpu_us = 0; //!< Thread-CPU microseconds inside the span.
    std::uint32_t tid = 0;    //!< Small per-thread id (first-use order).
};

/**
 * Collects completed trace events from every thread.  Install with
 * installTraceSink(); the sink must outlive every span opened while it
 * is installed (in practice: install, run, uninstall, export).
 */
class TraceSink
{
  public:
    /** Append a batch of events (called by Span on outer-span close). */
    void append(const std::vector<TraceEvent> &events);

    /** Copy out all events collected so far, sorted by start time. */
    [[nodiscard]] std::vector<TraceEvent> events() const;

    /** Number of events collected so far. */
    std::size_t size() const;

  private:
    mutable Mutex mutex_{"obs.trace_sink"};
    std::vector<TraceEvent> events_ DNASTORE_GUARDED_BY(mutex_);
};

/**
 * Install @p sink as the process-wide trace sink (nullptr uninstalls).
 * Spans opened after the call record into it; do not destroy a sink
 * while spans that saw it are still open on any thread.
 */
void installTraceSink(TraceSink *sink);

/** Currently installed sink, or nullptr. */
TraceSink *traceSink();

/**
 * RAII scope span.  Inactive (and free) when no sink is installed at
 * construction; otherwise measures wall time between construction and
 * destruction on a monotonic clock.
 */
class Span
{
  public:
    /** @param name string literal naming the span ("module/what"). */
    explicit Span(const char *name);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span();

    /**
     * Close the span now instead of at scope exit (for regions that do
     * not map onto a brace scope).  Idempotent.
     */
    void end();

    /** True when a sink was installed at construction. */
    bool active() const { return sink_ != nullptr; }

  private:
    TraceSink *sink_;
    const char *name_;
    std::uint64_t start_us_ = 0;
    std::uint64_t start_cpu_ns_ = 0;
};

/** Microseconds since the process trace epoch (monotonic). */
std::uint64_t traceNowMicros();

} // namespace dnastore::obs
