/**
 * @file
 * Sampling allocation profiler: attributes heap allocations (count and
 * bytes) to the active thread-local stage tag (obs/stage_tag.hh), so a
 * run report can say "reconstruction allocated 400 MB in 2M calls"
 * before the arena work attacks it.
 *
 * The hook lives in the replacement global operator new (defined in
 * alloc_profiler.cc); when profiling is disabled — the default — each
 * allocation pays one relaxed atomic load, the crashpoint-style
 * tri-state gate shared with obs/lock_timing.hh.  Enable with the
 * DNASTORE_PROFILE_ALLOC environment variable (unset/0 = off, 1 =
 * record every allocation, N = record every Nth per thread, scaling
 * totals back up at snapshot time) or programmatically with enable().
 *
 * Recording is allocation free and lock free (fixed slot table, CAS
 * claimed by tag pointer), so it is safe inside operator new itself.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore::obs::alloc
{

namespace detail
{
/** Tri-state gate: bootstrap pending / disabled / enabled. */
inline constexpr int kUnconfigured = 0;
inline constexpr int kDisabled = 1;
inline constexpr int kEnabled = 2;
extern std::atomic<int> g_state;

/** One-time env bootstrap; returns the resulting enabled state. */
bool bootstrap();

/** Sample + attribute one allocation (enabled path only). */
void record(std::size_t bytes);
} // namespace detail

/**
 * True when allocation profiling is armed.  Disabled cost: one relaxed
 * atomic load (after the one-time env bootstrap on the first call).
 */
inline bool
enabled()
{
    const int state = detail::g_state.load(std::memory_order_relaxed);
    if (state == detail::kDisabled)
        return false;
    if (state == detail::kEnabled)
        return true;
    return detail::bootstrap();
}

/**
 * The operator-new hook.  Inlined so the disabled path is branch +
 * relaxed load with no function call.
 */
inline void
noteAllocation(std::size_t bytes)
{
    if (enabled())
        detail::record(bytes);
}

/** Arm profiling, recording every @p sample_every-th allocation per
 *  thread (1 = every allocation; 0 is treated as 1). */
void enable(std::uint32_t sample_every = 1);

/** Disarm profiling (recorded attribution is kept). */
void disable();

/** Current per-thread sampling interval. */
std::uint32_t sampleEvery();

/** Disarm and zero all recorded attribution (tests and benchmarks). */
void reset();

/** Attribution for one stage tag ("untagged" collects unscoped work). */
struct StageAllocSnapshot
{
    std::string stage;
    std::uint64_t sampled_allocs = 0;
    std::uint64_t sampled_bytes = 0;
    std::uint64_t estimated_allocs = 0; //!< sampled * sample_every.
    std::uint64_t estimated_bytes = 0;  //!< sampled * sample_every.
};

/** Point-in-time copy of the whole allocation-attribution table. */
struct AllocSnapshot
{
    bool enabled = false;
    std::uint32_t sample_every = 1;
    std::vector<StageAllocSnapshot> stages; //!< Sorted by stage.

    /**
     * Per-run delta: sampled and estimated totals become (this -
     * before), clamped at zero; stages whose delta is all-zero are
     * dropped.
     */
    [[nodiscard]] AllocSnapshot delta(const AllocSnapshot &before) const;
};

/** Copy the current attribution table (sorted by stage tag). */
[[nodiscard]] AllocSnapshot allocSnapshot();

} // namespace dnastore::obs::alloc
