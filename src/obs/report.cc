#include "obs/report.hh"

#include <fstream>

namespace dnastore::obs
{

void
writeMetricsValue(JsonWriter &json, const MetricsSnapshot &snapshot)
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : snapshot.counters) {
        json.key(name);
        json.value(value);
    }
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[name, gauge] : snapshot.gauges) {
        json.key(name);
        json.beginObject();
        json.key("value");
        json.value(gauge.value);
        json.key("max");
        json.value(gauge.max);
        json.endObject();
    }
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &[name, hist] : snapshot.histograms) {
        json.key(name);
        json.beginObject();
        json.key("upper_bounds");
        json.beginArray();
        for (const double bound : hist.upper_bounds)
            json.value(bound);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (const std::uint64_t count : hist.counts)
            json.value(count);
        json.endArray();
        json.key("count");
        json.value(hist.total_count);
        json.key("sum");
        json.value(hist.sum);
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

std::string
metricsJson(const MetricsSnapshot &snapshot)
{
    JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.metrics");
    json.key("schema_version");
    json.value(std::int64_t{kSchemaVersion});
    json.key("metrics");
    writeMetricsValue(json, snapshot);
    json.endObject();
    return json.text();
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text << '\n';
    return static_cast<bool>(out);
}

} // namespace dnastore::obs
