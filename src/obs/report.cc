#include "obs/report.hh"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

#include "obs/crashpoint.hh"

namespace dnastore::obs
{

void
writeMetricsValue(JsonWriter &json, const MetricsSnapshot &snapshot)
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : snapshot.counters) {
        json.key(name);
        json.value(value);
    }
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[name, gauge] : snapshot.gauges) {
        json.key(name);
        json.beginObject();
        json.key("value");
        json.value(gauge.value);
        json.key("max");
        json.value(gauge.max);
        json.endObject();
    }
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &[name, hist] : snapshot.histograms) {
        json.key(name);
        json.beginObject();
        json.key("upper_bounds");
        json.beginArray();
        for (const double bound : hist.upper_bounds)
            json.value(bound);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (const std::uint64_t count : hist.counts)
            json.value(count);
        json.endArray();
        json.key("count");
        json.value(hist.total_count);
        json.key("sum");
        json.value(hist.sum);
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

std::string
metricsJson(const MetricsSnapshot &snapshot)
{
    JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("dnastore.metrics");
    json.key("schema_version");
    json.value(std::int64_t{kSchemaVersion});
    json.key("metrics");
    writeMetricsValue(json, snapshot);
    json.endObject();
    return json.text();
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    // Write-to-temp + rename so readers never observe a half-written
    // document: rename within one directory is atomic on POSIX, and a
    // failed write leaves any previous file at @p path untouched.  The
    // staging name is unique per writer (pid + process-wide counter):
    // concurrent writers to one target each stage privately and the
    // last rename wins whole, instead of interleaving inside a shared
    // temp file.  Every failure path removes its staging file; only a
    // crash mid-write can orphan one, and `archive fsck` sweeps those.
    if (crash::hit("obs.write.open") == crash::Action::WriteError)
        return false;
    static std::atomic<std::uint64_t> stage_counter{0};
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(
            stage_counter.fetch_add(1, std::memory_order_relaxed));
    const auto discardStaging = [&tmp_path]() {
        std::error_code cleanup;
        std::filesystem::remove(tmp_path, cleanup);
    };
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            // The open itself can create the file before failing (e.g.
            // a permission flip between create and write on some
            // filesystems) — remove whatever it left behind.
            discardStaging();
            return false;
        }
        const crash::Action body = crash::hit("obs.write.body");
        if (body == crash::Action::ShortWrite) {
            // Die mid-write: a truncated staging file stays behind,
            // exactly what a power cut during the write leaves.
            out << text.substr(0, text.size() / 2);
            out.flush();
            crash::die();
        }
        if (body == crash::Action::WriteError) {
            // Simulated ENOSPC: the write fails, the caller sees a
            // clean failure and no staging file survives.
            out.close();
            discardStaging();
            return false;
        }
        out << text << '\n';
        out.flush();
        if (!out) {
            out.close();
            discardStaging();
            return false;
        }
    }
    const crash::Action at_rename = crash::hit("obs.write.rename");
    if (at_rename == crash::Action::RenameError) {
        discardStaging();
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec) {
        discardStaging();
        return false;
    }
    return true;
}

} // namespace dnastore::obs
