/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket histograms
 * that every pipeline module publishes into (observability layer, see
 * docs/OBSERVABILITY.md).
 *
 * Handles returned by MetricsRegistry::counter()/gauge()/histogram()
 * are stable for the registry's lifetime, and every update is one
 * relaxed atomic operation — safe to call from thread-pool workers
 * without extra locking.  Registration (the name lookup) takes a mutex,
 * so hot paths fetch a handle once and update it many times, or
 * accumulate locally and publish totals at stage end.
 *
 * Metric names follow `module.noun_unit` (e.g.
 * `decoding.rs_symbols_corrected_total`); see docs/OBSERVABILITY.md for
 * the naming scheme.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/hot.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore::obs
{

/** Monotonic counter (relaxed atomic increments). */
class Counter
{
  public:
    /** Add @p n to the counter.  Called from clusterer/decoder inner
     *  loops, so the R10 ratchet pins it at zero allocations. */
    DNASTORE_HOT void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the counter (tests and benchmarks only). */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written value plus a running maximum (e.g. queue depth). */
class Gauge
{
  public:
    /** Record @p v as the current value, tracking the maximum seen. */
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
        double seen = max_.load(std::memory_order_relaxed);
        while (v > seen &&
               !max_.compare_exchange_weak(seen, v,
                                           std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    double max() const { return max_.load(std::memory_order_relaxed); }

    /** Reset both current and maximum (tests and benchmarks only). */
    void
    reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
        max_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Histogram over fixed, caller-supplied bucket upper bounds.  A value v
 * lands in the first bucket whose bound satisfies v <= bound; values
 * above the last bound land in the implicit overflow bucket, so there
 * are bounds.size() + 1 buckets in total.  observe() is lock-free.
 */
class FixedHistogram
{
  public:
    /** @param upper_bounds non-empty, strictly increasing upper bounds. */
    explicit FixedHistogram(std::vector<double> upper_bounds);

    /** Count one observation. */
    void observe(double v);

    const std::vector<double> &upperBounds() const { return bounds_; }
    /** Buckets including the overflow bucket (bounds + 1 entries). */
    std::size_t numBuckets() const { return bins_.size(); }
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return bins_[i].load(std::memory_order_relaxed);
    }
    std::uint64_t
    totalCount() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    /** Sum of all observed values. */
    double sum() const;

    /** Zero all buckets (tests and benchmarks only). */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> bins_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::vector<double> upper_bounds; //!< counts.size() == bounds + 1.
    std::vector<std::uint64_t> counts;
    std::uint64_t total_count = 0;
    double sum = 0.0;
};

/** Point-in-time copy of one gauge (value + running max). */
struct GaugeSnapshot
{
    double value = 0.0;
    double max = 0.0;
};

/**
 * Point-in-time copy of a whole registry.  Keys are metric names;
 * std::map keeps emission order deterministic (sorted), which the JSON
 * report layer relies on.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeSnapshot> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /**
     * Per-run delta: counters and histogram buckets become (this -
     * before), clamped at zero; gauges are kept as-is (a gauge is a
     * level, not a total).  Metrics absent from @p before pass through
     * unchanged.
     */
    [[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot &before) const;

    /** True when no metric is present at all. */
    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
};

/**
 * Thread-safe registry of named metrics.  getOrCreate calls
 * (counter()/gauge()/histogram()) lock a mutex; returned references are
 * stable until the registry dies.
 */
class MetricsRegistry
{
  public:
    /** Find or create the named counter. */
    Counter &counter(std::string_view name);

    /** Find or create the named gauge. */
    Gauge &gauge(std::string_view name);

    /**
     * Find or create the named histogram.  @p upper_bounds is used only
     * on first creation; later calls return the existing histogram
     * regardless of the bounds passed.
     */
    FixedHistogram &histogram(std::string_view name,
                              std::vector<double> upper_bounds);

    /** Copy every metric into a snapshot (sorted by name). */
    [[nodiscard]] MetricsSnapshot snapshot() const;

    /** Zero every registered metric (tests and benchmarks only). */
    void resetAll();

  private:
    mutable Mutex mutex_{"obs.metrics_registry"};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
        DNASTORE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
        DNASTORE_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<FixedHistogram>, std::less<>>
        histograms_ DNASTORE_GUARDED_BY(mutex_);
};

/**
 * The process-wide registry every built-in module publishes into.
 * Always exists; snapshotting around a region of interest and taking
 * delta() isolates one run's metrics from the process totals.
 */
MetricsRegistry &metrics();

/**
 * Approximate q-quantile (q in [0, 1]) of a histogram snapshot: the
 * upper bound of the first bucket whose cumulative count reaches
 * q * total.  Returns 0 for an empty histogram; observations in the
 * overflow bucket report the last finite bound (a floor, not a lie —
 * callers print it as ">= bound").
 */
[[nodiscard]] double histogramQuantile(const HistogramSnapshot &histogram,
                                       double q);

/** Convenient bucket ladder for latencies in seconds (1us .. 30s). */
std::vector<double> latencyBucketsSeconds();

/** Convenient bucket ladder for percentages (0..100 in steps of 10). */
std::vector<double> percentBuckets();

} // namespace dnastore::obs
