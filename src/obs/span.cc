#include "obs/span.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/cpu_time.hh"

namespace dnastore::obs
{

namespace
{

std::atomic<TraceSink *> installed_sink{nullptr};

/** Per-thread span state: pending events + open-span depth. */
struct ThreadTraceState
{
    std::vector<TraceEvent> buffer;
    std::uint32_t depth = 0;
    std::uint32_t tid = 0;
};

std::uint32_t
nextThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

ThreadTraceState &
threadState()
{
    thread_local ThreadTraceState state{{}, 0, nextThreadId()};
    return state;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

std::uint64_t
traceNowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
TraceSink::append(const std::vector<TraceEvent> &events)
{
    MutexLock lock(mutex_);
    events_.insert(events_.end(), events.begin(), events.end());
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::vector<TraceEvent> out;
    {
        MutexLock lock(mutex_);
        out = events_;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.ts_us != b.ts_us)
                             return a.ts_us < b.ts_us;
                         // Parents start no later and end no earlier
                         // than their children: longer first on ties.
                         return a.dur_us > b.dur_us;
                     });
    return out;
}

std::size_t
TraceSink::size() const
{
    MutexLock lock(mutex_);
    return events_.size();
}

void
installTraceSink(TraceSink *sink)
{
    installed_sink.store(sink, std::memory_order_release);
}

TraceSink *
traceSink()
{
    return installed_sink.load(std::memory_order_acquire);
}

Span::Span(const char *name)
    : sink_(installed_sink.load(std::memory_order_acquire)), name_(name)
{
    if (!sink_)
        return;
    ++threadState().depth;
    start_us_ = traceNowMicros();
    start_cpu_ns_ = threadCpuNanos();
}

Span::~Span()
{
    end();
}

void
Span::end()
{
    if (!sink_)
        return;
    TraceSink *sink = sink_;
    sink_ = nullptr; // idempotence: a second end() is a no-op
    const std::uint64_t end_us = traceNowMicros();
    const std::uint64_t end_cpu_ns = threadCpuNanos();
    const std::uint64_t cpu_us = end_cpu_ns > start_cpu_ns_
        ? (end_cpu_ns - start_cpu_ns_) / 1000
        : 0;
    ThreadTraceState &state = threadState();
    state.buffer.push_back(TraceEvent{
        name_, start_us_, end_us - start_us_, cpu_us, state.tid});
    // Flush only when the outermost span on this thread closes, so
    // nested spans never contend on the sink mutex.
    if (--state.depth == 0) {
        sink->append(state.buffer);
        state.buffer.clear();
    }
}

} // namespace dnastore::obs
