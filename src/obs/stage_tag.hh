/**
 * @file
 * Thread-local stage tags: a zero-allocation label naming the pipeline
 * or archive stage the current thread is working for.  The sampling
 * allocation profiler (obs/alloc_profiler.hh) attributes bytes and
 * allocation counts to the active tag, and ThreadPool propagates the
 * submitter's tag into its workers so shard decodes stay attributed to
 * the stage that scheduled them.
 *
 * Tags must be string literals (or otherwise immortal): the thread
 * local stores the pointer, never a copy, so reading it is safe from
 * any context — including inside operator new.
 */

#pragma once

namespace dnastore::obs
{

/** Tag of the stage the calling thread is in ("" when untagged). */
const char *currentStageTag();

/**
 * Set the calling thread's tag directly, returning the previous tag.
 * Prefer StageTagScope; this exists for thread-pool workers that
 * adopt a submitter's tag across a task boundary.  @p tag may be
 * nullptr to untag.
 */
const char *exchangeStageTag(const char *tag);

/** RAII tag scope: sets the tag, restores the previous one on exit. */
class StageTagScope
{
  public:
    /** @param tag string literal, e.g. "pipeline.clustering". */
    explicit StageTagScope(const char *tag)
        : prev_(exchangeStageTag(tag))
    {
    }

    StageTagScope(const StageTagScope &) = delete;
    StageTagScope &operator=(const StageTagScope &) = delete;

    ~StageTagScope() { exchangeStageTag(prev_); }

  private:
    const char *prev_;
};

} // namespace dnastore::obs
