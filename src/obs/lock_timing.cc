#include "obs/lock_timing.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace dnastore::obs::locktime
{

namespace detail
{
std::atomic<int> g_state{kUnconfigured};
} // namespace detail

namespace
{

// Wait-time ladder in nanoseconds: 1us .. 1s, then overflow.
constexpr std::array<std::uint64_t, 7> kBoundsNs = {
    1000ull,       10000ull,      100000ull,    1000000ull,
    10000000ull,   100000000ull,  1000000000ull,
};
constexpr std::size_t kNumBuckets = kBoundsNs.size() + 1;
constexpr std::size_t kMaxMutexes = 32;

std::atomic<std::uint32_t> g_sample_every{1};

/** One named mutex's wait histogram; claimed by CAS on `name`. */
struct Slot
{
    std::atomic<const char *> name{nullptr};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> bins{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
};

Slot g_slots[kMaxMutexes];

/** Waits on mutexes beyond the slot table (never silently lost). */
std::atomic<std::uint64_t> g_dropped{0};

Slot *
findOrClaim(const char *name)
{
    for (Slot &slot : g_slots) {
        const char *have = slot.name.load(std::memory_order_acquire);
        if (have == nullptr) {
            const char *expected = nullptr;
            if (slot.name.compare_exchange_strong(
                    expected, name, std::memory_order_acq_rel))
                return &slot;
            have = expected;
        }
        if (have == name || std::strcmp(have, name) == 0)
            return &slot;
    }
    return nullptr;
}

} // namespace

namespace detail
{

bool
bootstrap()
{
    // Racing first calls may both parse the env; both write the same
    // result, so the CAS-free store is benign.
    const char *env = std::getenv("DNASTORE_PROFILE_LOCKS");
    std::uint64_t every = 0;
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        every = std::strtoull(env, &end, 10);
        if (end == nullptr || *end != '\0')
            every = 0;
    }
    if (every == 0) {
        g_state.store(kDisabled, std::memory_order_relaxed);
        return false;
    }
    g_sample_every.store(static_cast<std::uint32_t>(
                             std::min<std::uint64_t>(every, 1u << 20)),
                         std::memory_order_relaxed);
    g_state.store(kEnabled, std::memory_order_relaxed);
    return true;
}

} // namespace detail

void
enable(std::uint32_t sample_every)
{
    g_sample_every.store(sample_every == 0 ? 1 : sample_every,
                         std::memory_order_relaxed);
    detail::g_state.store(detail::kEnabled, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_state.store(detail::kDisabled, std::memory_order_relaxed);
}

std::uint32_t
sampleEvery()
{
    return g_sample_every.load(std::memory_order_relaxed);
}

void
reset()
{
    detail::g_state.store(detail::kDisabled, std::memory_order_relaxed);
    g_sample_every.store(1, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
    for (Slot &slot : g_slots) {
        slot.name.store(nullptr, std::memory_order_release);
        for (auto &bin : slot.bins)
            bin.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum_ns.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
recordWait(const char *name, std::uint64_t wait_ns)
{
    const std::uint32_t every =
        g_sample_every.load(std::memory_order_relaxed);
    if (every > 1) {
        thread_local std::uint32_t tick = 0;
        if (++tick % every != 0)
            return;
    }
    if (name == nullptr || *name == '\0')
        name = "unnamed";
    Slot *slot = findOrClaim(name);
    if (slot == nullptr) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::size_t bucket = 0;
    while (bucket < kBoundsNs.size() && wait_ns > kBoundsNs[bucket])
        ++bucket;
    slot->bins[bucket].fetch_add(1, std::memory_order_relaxed);
    slot->count.fetch_add(1, std::memory_order_relaxed);
    slot->sum_ns.fetch_add(wait_ns, std::memory_order_relaxed);
}

std::vector<double>
waitBucketBoundsSeconds()
{
    std::vector<double> bounds;
    bounds.reserve(kBoundsNs.size());
    for (const std::uint64_t ns : kBoundsNs)
        bounds.push_back(static_cast<double>(ns) * 1e-9);
    return bounds;
}

ContentionSnapshot
contentionSnapshot()
{
    ContentionSnapshot snapshot;
    snapshot.enabled = enabled();
    snapshot.sample_every = sampleEvery();
    for (const Slot &slot : g_slots) {
        const char *name = slot.name.load(std::memory_order_acquire);
        if (name == nullptr)
            continue;
        MutexWaitSnapshot m;
        m.name = name;
        m.counts.reserve(kNumBuckets);
        for (const auto &bin : slot.bins)
            m.counts.push_back(bin.load(std::memory_order_relaxed));
        m.total_count = slot.count.load(std::memory_order_relaxed);
        m.sum_seconds =
            static_cast<double>(
                slot.sum_ns.load(std::memory_order_relaxed)) *
            1e-9;
        snapshot.mutexes.push_back(std::move(m));
    }
    std::sort(snapshot.mutexes.begin(), snapshot.mutexes.end(),
              [](const MutexWaitSnapshot &a, const MutexWaitSnapshot &b) {
                  return a.name < b.name;
              });
    return snapshot;
}

ContentionSnapshot
ContentionSnapshot::delta(const ContentionSnapshot &before) const
{
    ContentionSnapshot out;
    out.enabled = enabled;
    out.sample_every = sample_every;
    for (const MutexWaitSnapshot &after : mutexes) {
        const auto it = std::find_if(
            before.mutexes.begin(), before.mutexes.end(),
            [&after](const MutexWaitSnapshot &m) {
                return m.name == after.name;
            });
        MutexWaitSnapshot d = after;
        if (it != before.mutexes.end()) {
            for (std::size_t i = 0;
                 i < d.counts.size() && i < it->counts.size(); ++i) {
                d.counts[i] = d.counts[i] > it->counts[i]
                    ? d.counts[i] - it->counts[i]
                    : 0;
            }
            d.total_count = d.total_count > it->total_count
                ? d.total_count - it->total_count
                : 0;
            d.sum_seconds = d.sum_seconds > it->sum_seconds
                ? d.sum_seconds - it->sum_seconds
                : 0.0;
        }
        if (d.total_count > 0)
            out.mutexes.push_back(std::move(d));
    }
    return out;
}

} // namespace dnastore::obs::locktime
