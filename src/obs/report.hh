/**
 * @file
 * Machine-readable metrics serialisation.  A MetricsSnapshot becomes a
 * canonical JSON value with stable (sorted) key order:
 *
 *   {"counters": {"name": 123, ...},
 *    "gauges":   {"name": {"value": v, "max": m}, ...},
 *    "histograms": {"name": {"upper_bounds": [...], "counts": [...],
 *                            "count": N, "sum": S}, ...}}
 *
 * The full run-report document (schema `dnastore.run_report`, see
 * docs/OBSERVABILITY.md) is assembled by core/run_report, which embeds
 * this value under its "metrics" key; benches embed it per row.
 */

#pragma once

#include <string>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace dnastore::obs
{

/**
 * Current version of every JSON *report* document this layer emits
 * (run reports, metrics documents, fsck reports, bench documents).
 *
 * Version history:
 *   1 — PR-4 shape: stages carry {status, seconds}; metrics value.
 *   2 — performance attribution: stages gain cpu_seconds/utilization,
 *       run reports gain "contention" and "alloc" sections, the thread
 *       pool publishes queue-wait/busy/idle/utilization metrics.
 *
 * Consumers (tools/check_obs_json.py, `dnastore report diff`) accept
 * both versions; on-disk archive manifests version independently
 * (archive::kManifestSchemaVersion) so bumping this never invalidates
 * stored archives.
 */
inline constexpr int kSchemaVersion = 2;

/** Emit @p snapshot as a JSON value into @p json. */
void writeMetricsValue(JsonWriter &json, const MetricsSnapshot &snapshot);

/** @p snapshot as a standalone JSON document (for tests and tools). */
[[nodiscard]] std::string metricsJson(const MetricsSnapshot &snapshot);

/**
 * Write @p text to @p path (binary, trailing newline) atomically:
 * staged under a unique "<path>.tmp.<pid>.<counter>" name, then
 * renamed over the target.  Every failure path removes the staging
 * file; a process killed mid-write orphans it (swept by `archive
 * fsck`).  Honors the obs.write.{open,body,rename} crash points
 * (obs/crashpoint.hh).
 * @return false when the file cannot be written.
 */
[[nodiscard]] bool
writeTextFile(const std::string &path, const std::string &text);

} // namespace dnastore::obs
