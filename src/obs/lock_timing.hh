/**
 * @file
 * Sampled lock-contention timing for the annotated Mutex (util/sync.hh).
 *
 * When profiling is enabled, Mutex::lock() tries an uncontended
 * try_lock first; only the contended path reads the clock, blocks, and
 * records the wait here, keyed by the mutex's name.  When disabled the
 * whole feature costs one relaxed atomic load per lock() — the same
 * crashpoint-style tri-state gate as obs/crashpoint.hh, bootstrapped
 * once from DNASTORE_PROFILE_LOCKS (unset/0 = off, 1 = every contended
 * wait, N = every Nth per thread).
 *
 * The registry is a fixed, lock-free slot table rather than the metrics
 * registry on purpose: MetricsRegistry registration takes a Mutex, so
 * recording a wait through it could re-enter lock() on the very mutex
 * being timed.  Here every record is a name-pointer CAS claim plus
 * relaxed adds — safe from any locking context.
 *
 * Mutex names must be string literals (slots store the pointer).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore::obs::locktime
{

namespace detail
{
/** Tri-state gate: bootstrap pending / disabled / enabled. */
inline constexpr int kUnconfigured = 0;
inline constexpr int kDisabled = 1;
inline constexpr int kEnabled = 2;
extern std::atomic<int> g_state;

/** One-time env bootstrap; returns the resulting enabled state. */
bool bootstrap();
} // namespace detail

/**
 * True when contention timing is armed.  Disabled cost: one relaxed
 * atomic load (after the one-time env bootstrap on the first call).
 */
inline bool
enabled()
{
    const int state = detail::g_state.load(std::memory_order_relaxed);
    if (state == detail::kDisabled)
        return false;
    if (state == detail::kEnabled)
        return true;
    return detail::bootstrap();
}

/** Arm contention timing, recording every @p sample_every-th contended
 *  wait per thread (1 = every wait; 0 is treated as 1). */
void enable(std::uint32_t sample_every = 1);

/** Disarm contention timing (recorded histograms are kept). */
void disable();

/** Current per-thread sampling interval (1 when recording every wait). */
std::uint32_t sampleEvery();

/** Disarm and zero every recorded histogram (tests and benchmarks). */
void reset();

/** Monotonic nanoseconds for timing a contended wait. */
std::uint64_t monotonicNanos();

/**
 * Record a contended wait of @p wait_ns on the mutex named @p name
 * (string literal).  Applies the sampling interval internally; lock
 * free and allocation free.  Called by Mutex::lock() only on the
 * contended path.
 */
void recordWait(const char *name, std::uint64_t wait_ns);

/** Wait-time bucket upper bounds (seconds) shared by every mutex. */
std::vector<double> waitBucketBoundsSeconds();

/** Point-in-time copy of one named mutex's wait histogram. */
struct MutexWaitSnapshot
{
    std::string name;
    std::vector<std::uint64_t> counts; //!< bounds + 1 (overflow last).
    std::uint64_t total_count = 0;     //!< Sampled contended waits.
    double sum_seconds = 0.0;          //!< Sum of sampled wait times.
};

/** Point-in-time copy of the whole contention registry. */
struct ContentionSnapshot
{
    bool enabled = false;
    std::uint32_t sample_every = 1;
    std::vector<MutexWaitSnapshot> mutexes; //!< Sorted by name.

    /**
     * Per-run delta: counts and sums become (this - before), clamped
     * at zero; mutexes absent from @p before pass through unchanged,
     * and mutexes whose delta is all-zero are dropped.
     */
    [[nodiscard]] ContentionSnapshot
    delta(const ContentionSnapshot &before) const;
};

/** Copy every recorded histogram (sorted by mutex name). */
[[nodiscard]] ContentionSnapshot contentionSnapshot();

} // namespace dnastore::obs::locktime
