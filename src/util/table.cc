#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace dnastore
{

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::text() const
{
    std::vector<std::size_t> widths(head.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    std::ostringstream os;
    auto emit = [&os, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };
    if (!head.empty()) {
        emit(head);
        std::size_t line = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            line += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(line, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

std::string
Table::csv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    auto emit = [&os, &quote](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << quote(cells[i]);
        }
        os << '\n';
    };
    if (!head.empty())
        emit(head);
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << csv();
    return static_cast<bool>(out);
}

} // namespace dnastore
