/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used to verify end-to-end integrity of
 * decoded files.
 */

#ifndef DNASTORE_UTIL_CRC32_HH
#define DNASTORE_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dnastore
{

/** CRC-32 of a byte buffer (reflected, init/final 0xFFFFFFFF). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** CRC-32 of a byte vector. */
std::uint32_t crc32(const std::vector<std::uint8_t> &data);

} // namespace dnastore

#endif // DNASTORE_UTIL_CRC32_HH
