/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used to verify end-to-end integrity of
 * decoded files.
 */

#pragma once

#include <cstdint>
#include <span>

namespace dnastore
{

/** CRC-32 of a byte buffer (reflected, init/final 0xFFFFFFFF). */
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

} // namespace dnastore

