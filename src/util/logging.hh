/**
 * @file
 * Minimal leveled logging.  Defaults to Info; benches lower it to Warn to
 * keep table output clean.  The DNASTORE_LOG environment variable
 * (debug|info|warn|error|off) overrides the initial threshold, and
 * lines are written atomically so concurrent pipeline runs never
 * interleave partial messages.
 */

#pragma once

#include <sstream>
#include <string>

namespace dnastore
{

/** Log severity, ordered. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a message at the given level (thread-safe line output). */
void logMessage(LogLevel level, const std::string &message);

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

template <typename... Args>
void
logDebug(Args &&...args)
{
    if (logLevel() <= LogLevel::Debug)
        logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logInfo(Args &&...args)
{
    if (logLevel() <= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    if (logLevel() <= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logError(Args &&...args)
{
    if (logLevel() <= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

} // namespace dnastore

