/**
 * @file
 * Aligned-text and CSV table rendering for the benchmark harness, so that
 * each bench binary can print rows in the same layout the paper's tables
 * use.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace dnastore
{

/**
 * Collects rows of string cells and renders them either as an aligned
 * monospace table or as CSV.
 */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Format a double with fixed precision. */
    static std::string fmt(double value, int precision = 4);

    /** Format any integer type. */
    template <typename T>
        requires std::is_integral_v<T>
    static std::string
    fmt(T value)
    {
        return std::to_string(value);
    }

    /** Render as aligned text with a separator under the header. */
    std::string text() const;

    /** Render as CSV. */
    std::string csv() const;

    /** Write CSV to a file; returns false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace dnastore

