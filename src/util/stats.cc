#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dnastore
{

void
RunningStats::add(double x)
{
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void
Histogram::add(std::int64_t value)
{
    if (bins.empty())
        return;
    std::int64_t idx = value;
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<std::int64_t>(bins.size()))
        idx = static_cast<std::int64_t>(bins.size()) - 1;
    ++bins[static_cast<std::size_t>(idx)];
    ++total;
}

std::vector<double>
Histogram::smoothed(std::size_t radius) const
{
    std::vector<double> out(bins.size(), 0.0);
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const std::size_t lo = i >= radius ? i - radius : 0;
        const std::size_t hi = std::min(bins.size() - 1, i + radius);
        double sum = 0.0;
        for (std::size_t j = lo; j <= hi; ++j)
            sum += static_cast<double>(bins[j]);
        out[i] = sum / static_cast<double>(hi - lo + 1);
    }
    return out;
}

std::string
Histogram::render(std::size_t max_width, bool skip_empty_tail) const
{
    std::uint64_t peak = 0;
    std::size_t last = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        peak = std::max(peak, bins[i]);
        if (bins[i] > 0)
            last = i;
    }
    const std::size_t end = skip_empty_tail ? last + 1 : bins.size();

    std::ostringstream os;
    for (std::size_t i = 0; i < end; ++i) {
        const std::size_t width = peak == 0
            ? 0
            : static_cast<std::size_t>(
                  static_cast<double>(bins[i]) / static_cast<double>(peak) *
                  static_cast<double>(max_width));
        os << (i < 10 ? "  " : i < 100 ? " " : "") << i << " |";
        for (std::size_t w = 0; w < width; ++w)
            os << '#';
        os << ' ' << bins[i] << '\n';
    }
    return os.str();
}

} // namespace dnastore
