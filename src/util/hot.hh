/**
 * @file
 * DNASTORE_HOT: the hot-path marker for dnalint's R10 allocation
 * ratchet (tools/dnalint/callgraph.hh).
 *
 * Marking a function definition DNASTORE_HOT does two things:
 *
 *  - dnalint counts the function's transitive allocation sites (`new`,
 *    unreserved push_back, std::string temporaries, std::function) and
 *    pins the count in tools/dnalint_alloc_ratchet.txt — CI fails if it
 *    ever increases, so per-read heap churn can only ratchet down
 *    toward the arena/SIMD decode goal (ROADMAP.md);
 *  - the compiler is told the function is hot (GCC/Clang
 *    __attribute__((hot))), biasing block placement and inlining.
 *
 * Like src/util/thread_annotations.hh and src/util/sync.hh, this is a
 * layer-free vocabulary header: any module may include it without
 * creating an R8 layering edge.
 *
 * Usage (definition site, before the return type):
 *
 *   DNASTORE_HOT std::string
 *   Reconstructor::reconstruct(const Cluster &cluster) { ... }
 */

#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define DNASTORE_HOT __attribute__((hot))
#else
#define DNASTORE_HOT
#endif
