/**
 * @file
 * Deterministic pseudo-random number generation for the toolkit.
 *
 * All stochastic components of the pipeline (channel simulators, clustering
 * anchors, coverage draws, ...) draw from Rng so that every experiment is
 * reproducible from a single 64-bit seed.  The generator is xoshiro256**,
 * seeded through SplitMix64; both are implemented here rather than relying
 * on std:: distributions so that results are identical across standard
 * library implementations.
 */

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace dnastore
{

/**
 * SplitMix64 generator, used to expand a single seed into a full
 * xoshiro256** state.  Also usable standalone for cheap hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Satisfies UniformRandomBitGenerator so it can also be plugged into
 * std:: algorithms (e.g. std::shuffle).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64 bits. */
    result_type operator()() { return next(); }

    /** Next raw 64 bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (Lemire). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Geometric number of failures before first success; p in (0,1]. */
    std::uint64_t geometric(double p);

    /** Poisson draw (Knuth's method; intended for small lambda). */
    std::uint64_t poisson(double lambda);

    /** Standard normal draw (Box-Muller, cached second value). */
    double normal();

    /** Normal draw with mean/stddev. */
    double normal(double mean, double stddev);

    /** Log-normal draw parameterised by the underlying normal. */
    double logNormal(double mu, double sigma);

    /**
     * Sample an index according to non-negative weights.
     * Weights need not be normalised; total must be positive.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n), in random order. */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Derive an independent child generator (for per-thread streams). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> s;
    bool hasCachedNormal = false;
    double cachedNormal = 0.0;
};

/**
 * Seeded Zipfian index sampler over [0, n): item k is drawn with
 * probability proportional to 1 / (k+1)^s.  Precomputes the CDF once
 * and samples by binary search, so draws are O(log n) and the
 * popularity skew is exactly reproducible from the seed — the shape of
 * real object-store traffic the server-load generator and the
 * coalescing tests rely on (a few hot objects, a long cold tail).
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of items (>= 1; 0 is clamped to 1).
     * @param skew Zipf exponent s (>= 0; 0 degenerates to uniform).
     * @param seed RNG seed for the draw stream.
     */
    ZipfSampler(std::size_t n, double skew, std::uint64_t seed);

    /** Draw one index in [0, n). */
    std::size_t next();

    /** Probability mass of item @p k (diagnostics/tests). */
    double probability(std::size_t k) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_; //!< Inclusive cumulative masses, last = 1.
    Rng rng_;
};

} // namespace dnastore

