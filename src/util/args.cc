#include "util/args.hh"

#include <stdexcept>

namespace dnastore
{

ArgParser::ArgParser(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            options[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options[arg] = argv[++i];
        } else {
            options[arg] = "true";
        }
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return options.count(name) > 0;
}

std::string
ArgParser::get(const std::string &name, const std::string &fallback) const
{
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = options.find(name);
    if (it == options.end())
        return fallback;
    try {
        return std::stoll(it->second);
    } catch (const std::exception &) {
        throw std::invalid_argument("--" + name + " expects an integer, got '"
                                    + it->second + "'");
    }
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    const auto it = options.find(name);
    if (it == options.end())
        return fallback;
    try {
        return std::stod(it->second);
    } catch (const std::exception &) {
        throw std::invalid_argument("--" + name + " expects a number, got '"
                                    + it->second + "'");
    }
}

bool
ArgParser::getBool(const std::string &name, bool fallback) const
{
    const auto it = options.find(name);
    if (it == options.end())
        return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace dnastore
