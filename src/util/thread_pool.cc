#include "util/thread_pool.hh"

#include <algorithm>
#include <exception>

#include "obs/cpu_time.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/assert.hh"

namespace dnastore
{

namespace
{

std::string
summarise(const std::vector<std::string> &messages, std::size_t total)
{
    std::string text = std::to_string(messages.size()) + " of " +
        std::to_string(total) + " parallel chunks failed:";
    for (const auto &message : messages)
        text += " [" + message + "]";
    return text;
}

/** Registry handles fetched once; workers then only touch atomics. */
struct PoolMetrics
{
    obs::Counter &tasks_total;
    obs::Gauge &queue_depth;
    obs::FixedHistogram &task_seconds;
    obs::FixedHistogram &queue_wait_seconds;
    obs::FixedHistogram &task_cpu_seconds;
    obs::Counter &busy_micros_total;
    obs::Counter &idle_micros_total;
    obs::Gauge &utilization;
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics handles{
        obs::metrics().counter("util.thread_pool.tasks_total"),
        obs::metrics().gauge("util.thread_pool.queue_depth"),
        obs::metrics().histogram("util.thread_pool.task_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().histogram("util.thread_pool.queue_wait_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().histogram("util.thread_pool.task_cpu_seconds",
                                 obs::latencyBucketsSeconds()),
        obs::metrics().counter("util.thread_pool.busy_micros_total"),
        obs::metrics().counter("util.thread_pool.idle_micros_total"),
        obs::metrics().gauge("util.thread_pool.utilization"),
    };
    return handles;
}

} // namespace

ParallelError::ParallelError(std::vector<std::string> messages,
                             std::size_t total_chunks)
    : std::runtime_error(summarise(messages, total_chunks)),
      messages_(std::move(messages)),
      total_chunks_(total_chunks)
{
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex);
        stopping = true;
    }
    available.notifyAll();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    PoolMetrics &pm = poolMetrics();
    for (;;) {
        PendingTask task;
        const std::uint64_t idle_begin_us = obs::traceNowMicros();
        {
            // Manual predicate loop (not the lambda-predicate overload)
            // so the thread-safety analysis sees the guarded reads of
            // `stopping` and `tasks` happen with `mutex` held.
            MutexLock lock(mutex);
            while (!stopping && tasks.empty())
                available.wait(mutex);
            if (tasks.empty())
                return; // stopping and drained; shutdown wait uncounted
            task = std::move(tasks.front());
            tasks.pop();
            pm.queue_depth.set(static_cast<double>(tasks.size()));
        }
        const std::uint64_t begin_us = obs::traceNowMicros();
        // Idle = waiting for work; queue wait = the task waiting for a
        // worker.  Both end at the same dequeue instant.
        pm.idle_micros_total.add(begin_us - idle_begin_us);
        pm.queue_wait_seconds.observe(
            begin_us > task.enqueue_us
                ? static_cast<double>(begin_us - task.enqueue_us) * 1e-6
                : 0.0);
        pm.tasks_total.add();
        const std::uint64_t cpu_begin_ns = obs::threadCpuNanos();
        {
            // Adopt the submitter's stage tag so allocation attribution
            // follows the work onto the worker thread.
            obs::StageTagScope tag(task.stage_tag);
            task.fn();
        }
        const std::uint64_t cpu_end_ns = obs::threadCpuNanos();
        const std::uint64_t end_us = obs::traceNowMicros();
        pm.busy_micros_total.add(end_us - begin_us);
        pm.task_seconds.observe(
            static_cast<double>(end_us - begin_us) * 1e-6);
        pm.task_cpu_seconds.observe(
            cpu_end_ns > cpu_begin_ns
                ? static_cast<double>(cpu_end_ns - cpu_begin_ns) * 1e-9
                : 0.0);
        const double busy =
            static_cast<double>(pm.busy_micros_total.value());
        const double idle =
            static_cast<double>(pm.idle_micros_total.value());
        pm.utilization.set(busy + idle > 0.0 ? busy / (busy + idle)
                                             : 0.0);
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    parallelChunks(begin, end,
                   [&fn](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i)
                           fn(i);
                   });
}

void
ThreadPool::parallelChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (begin >= end)
        return;
    const std::size_t total = end - begin;
    // Over-decompose a little so uneven work balances out.
    const std::size_t chunks = std::min(total, size() * 4);
    const std::size_t chunk_size = (total + chunks - 1) / chunks;

    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t lo = begin; lo < end; lo += chunk_size) {
        const std::size_t hi = std::min(end, lo + chunk_size);
        futures.push_back(submit([lo, hi, &fn] { fn(lo, hi); }));
    }
    DNASTORE_ASSERT(futures.size() <= chunks,
                    "chunk decomposition must not exceed its plan");

    // Drain every future so no worker exception vanishes.  A single
    // failure rethrows its original exception (type preserved); multiple
    // failures are aggregated into one ParallelError.
    std::exception_ptr first;
    std::vector<std::string> messages;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (const std::exception &error) {
            if (!first)
                first = std::current_exception();
            messages.emplace_back(error.what());
        } catch (...) {
            if (!first)
                first = std::current_exception();
            messages.emplace_back("unknown exception");
        }
    }
    if (messages.size() == 1)
        std::rethrow_exception(first);
    if (!messages.empty())
        throw ParallelError(std::move(messages), futures.size());
}

} // namespace dnastore
