#include "thread_pool.hh"

#include <algorithm>

namespace dnastore
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock, [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn)
{
    parallelChunks(begin, end,
                   [&fn](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i)
                           fn(i);
                   });
}

void
ThreadPool::parallelChunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (begin >= end)
        return;
    const std::size_t total = end - begin;
    // Over-decompose a little so uneven work balances out.
    const std::size_t chunks = std::min(total, size() * 4);
    const std::size_t chunk_size = (total + chunks - 1) / chunks;

    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t lo = begin; lo < end; lo += chunk_size) {
        const std::size_t hi = std::min(end, lo + chunk_size);
        futures.push_back(submit([lo, hi, &fn] { fn(lo, hi); }));
    }
    // get() rethrows the first failure after all chunks complete.
    for (auto &future : futures)
        future.get();
}

} // namespace dnastore
