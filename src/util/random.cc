#include "util/random.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dnastore
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t
Rng::poisson(double lambda)
{
    assert(lambda >= 0.0);
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth: multiply uniforms until below e^-lambda.
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double prod = uniform();
        while (prod > limit) {
            ++k;
            prod *= uniform();
        }
        return k;
    }
    // Normal approximation for large lambda, adequate for coverage draws.
    double draw = normal(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        throw std::invalid_argument("weightedIndex: total weight is zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    assert(k <= n);
    // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
    // sampling sizes used in this toolkit.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + below(n - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

ZipfSampler::ZipfSampler(std::size_t n, double skew, std::uint64_t seed)
    : rng_(seed)
{
    if (n == 0)
        n = 1;
    if (skew < 0.0)
        skew = 0.0;
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
        cdf_[k] = total;
    }
    for (double &c : cdf_)
        c /= total;
    cdf_.back() = 1.0; // Guard against accumulated rounding.
}

std::size_t
ZipfSampler::next()
{
    const double u = rng_.uniform();
    // First index whose cumulative mass exceeds u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] > u)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

double
ZipfSampler::probability(std::size_t k) const
{
    if (k >= cdf_.size())
        return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

} // namespace dnastore
