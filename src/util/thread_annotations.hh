/**
 * @file
 * Clang Thread Safety Analysis capability macros (dnalint R6).
 *
 * Wrappers over the `capability`/`guarded_by`/`acquire_capability`
 * attribute family so every lock relationship in the codebase is
 * machine-checked at compile time on Clang (-Wthread-safety, promoted
 * to error under DNASTORE_STRICT) and compiles away to nothing on
 * every other compiler.
 *
 * Usage pattern (see src/util/sync.hh for the annotated mutex types):
 *
 *   Mutex mutex_;
 *   std::vector<int> items_ DNASTORE_GUARDED_BY(mutex_);
 *
 *   void drain() { MutexLock lock(mutex_); items_.clear(); }
 *
 * This header is deliberately dependency-free (macros only): together
 * with util/sync.hh it forms the concurrency vocabulary that every
 * layer, including the bottom obs library, may include — dnalint R8
 * exempts exactly these two headers from the module layering DAG.
 */

#pragma once

#if defined(__clang__) && !defined(SWIG) && defined(__has_attribute)
#if __has_attribute(capability)
#define DNASTORE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(DNASTORE_THREAD_ANNOTATION)
#define DNASTORE_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define DNASTORE_CAPABILITY(x) DNASTORE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction (std::lock_guard shape). */
#define DNASTORE_SCOPED_CAPABILITY                                           \
    DNASTORE_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define DNASTORE_GUARDED_BY(x) DNASTORE_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define DNASTORE_PT_GUARDED_BY(x)                                            \
    DNASTORE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capability held (and does not release it). */
#define DNASTORE_REQUIRES(...)                                               \
    DNASTORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function requires the capability held shared (readers). */
#define DNASTORE_REQUIRES_SHARED(...)                                        \
    DNASTORE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability (must not already hold it). */
#define DNASTORE_ACQUIRE(...)                                                \
    DNASTORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define DNASTORE_RELEASE(...)                                                \
    DNASTORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function tries to acquire; first arg is the success return value. */
#define DNASTORE_TRY_ACQUIRE(...)                                            \
    DNASTORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Capability must NOT be held when calling (deadlock prevention). */
#define DNASTORE_EXCLUDES(...)                                               \
    DNASTORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares lock acquisition order between two capabilities. */
#define DNASTORE_ACQUIRED_BEFORE(...)                                        \
    DNASTORE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DNASTORE_ACQUIRED_AFTER(...)                                         \
    DNASTORE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the capability. */
#define DNASTORE_RETURN_CAPABILITY(x)                                        \
    DNASTORE_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opt a function out of the analysis.  Reserve for publication-safe
 * lock-free reads the analysis cannot model; every use must carry a
 * comment stating the happens-before argument that replaces the lock.
 */
#define DNASTORE_NO_THREAD_SAFETY_ANALYSIS                                   \
    DNASTORE_THREAD_ANNOTATION(no_thread_safety_analysis)
