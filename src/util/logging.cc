#include "util/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "util/sync.hh"

namespace dnastore
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO ";
      case LogLevel::Warn: return "WARN ";
      case LogLevel::Error: return "ERROR";
      default: return "?????";
    }
}

/**
 * Initial threshold: the DNASTORE_LOG environment variable when set to
 * a known level name (debug/info/warn/error/off, case-sensitive),
 * otherwise Info.  Evaluated once at process start so the override
 * applies before any module logs.
 */
LogLevel
initialLevel()
{
    const char *env = std::getenv("DNASTORE_LOG");
    if (env == nullptr)
        return LogLevel::Info;
    const std::string name(env);
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "off")
        return LogLevel::Off;
    return LogLevel::Info;
}

std::atomic<LogLevel> global_level{initialLevel()};
/** Serialises line emission into std::cerr.  The guarded resource is
 *  the external stream, not a data member, so R6 carries an allowlist
 *  entry instead of a DNASTORE_GUARDED_BY peer. */
Mutex output_mutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    // Compose the full line first and emit it as one insertion under
    // the mutex: concurrent pipeline runs then cannot interleave
    // partial lines even when the stream is shared with other writers.
    std::string line;
    line.reserve(message.size() + 10);
    line += '[';
    line += levelName(level);
    line += "] ";
    line += message;
    line += '\n';
    MutexLock lock(output_mutex);
    std::cerr << line;
    std::cerr.flush();
}

} // namespace dnastore
