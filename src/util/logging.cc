#include "util/logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dnastore
{

namespace
{

std::atomic<LogLevel> global_level{LogLevel::Info};
std::mutex output_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO ";
      case LogLevel::Warn: return "WARN ";
      case LogLevel::Error: return "ERROR";
      default: return "?????";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &message)
{
    std::lock_guard<std::mutex> lock(output_mutex);
    std::cerr << "[" << levelName(level) << "] " << message << '\n';
}

} // namespace dnastore
