#include "util/crc32.hh"

#include <array>

namespace dnastore
{

namespace
{

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    static const auto table = makeTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const std::uint8_t byte : data)
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace dnastore
