/**
 * @file
 * Tiny command-line argument parser used by the example programs and
 * bench binaries ("--key=value" and "--flag" forms).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dnastore
{

/**
 * Parses argv into named options plus positional arguments.
 *
 * Accepted forms: "--key=value", "--key value", and bare "--flag"
 * (treated as "--flag=true").  Anything not starting with "--" is
 * positional.
 */
class ArgParser
{
  public:
    ArgParser(int argc, const char *const *argv);

    /** True if --name was supplied at all. */
    bool has(const std::string &name) const;

    /** String option with a default. */
    std::string
    get(const std::string &name, const std::string &fallback = "") const;

    /** Integer option with a default; throws on malformed input. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Floating-point option with a default; throws on malformed input. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean flag: present without value, "true"/"1" => true. */
    bool getBool(const std::string &name, bool fallback = false) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const { return positionals; }

  private:
    std::map<std::string, std::string> options;
    std::vector<std::string> positionals;
};

} // namespace dnastore

