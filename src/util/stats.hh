/**
 * @file
 * Streaming statistics and histograms used throughout the evaluation
 * harness (error-rate profiles, signature distance distributions, ...).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore
{

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations. */
    std::size_t count() const { return n; }

    /** Mean of observations (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/** Percentile of a (copied and sorted) sample; p in [0, 100]. */
double percentile(std::vector<double> values, double p);

/**
 * Fixed-width integer histogram over [0, num_bins).  Out-of-range values
 * are clamped into the edge bins.  Used for the signature-distance plot
 * that drives automatic clustering threshold selection (paper Fig. 5).
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t num_bins) : bins(num_bins, 0) {}

    /** Count one value (clamped into range). */
    void add(std::int64_t value);

    std::size_t numBins() const { return bins.size(); }
    std::uint64_t bin(std::size_t i) const { return bins.at(i); }
    std::uint64_t totalCount() const { return total; }

    /** Counts smoothed with a centred moving average of given radius. */
    std::vector<double> smoothed(std::size_t radius) const;

    /** Render a terminal bar chart, one row per bin. */
    std::string
    render(std::size_t max_width = 60, bool skip_empty_tail = true) const;

  private:
    std::vector<std::uint64_t> bins;
    std::uint64_t total = 0;
};

} // namespace dnastore

