/**
 * @file
 * A small fixed-size thread pool used by the clustering and reconstruction
 * modules.  Tasks are arbitrary callables; parallelFor provides chunked
 * data-parallel loops with exception propagation.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.hh"
#include "obs/stage_tag.hh"
#include "util/assert.hh"
#include "util/sync.hh"
#include "util/thread_annotations.hh"

namespace dnastore
{

/**
 * Thrown by parallelFor/parallelChunks when more than one chunk fails:
 * every worker exception is collected so no failure vanishes silently.
 * (A single failing chunk rethrows its original exception unchanged.)
 */
class ParallelError : public std::runtime_error
{
  public:
    /**
     * @param messages what() of every failed chunk, in chunk order.
     * @param total_chunks number of chunks the loop was split into.
     */
    ParallelError(std::vector<std::string> messages,
                  std::size_t total_chunks);

    /** One entry per failed chunk. */
    const std::vector<std::string> &messages() const { return messages_; }
    /** Number of chunks the loop ran. */
    std::size_t totalChunks() const { return total_chunks_; }

  private:
    std::vector<std::string> messages_;
    std::size_t total_chunks_;
};

/**
 * Fixed-size worker pool.  Construction spawns the workers; destruction
 * drains outstanding tasks and joins them.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 means hardware_concurrency()
     *                    (at least 1).
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of worker threads. */
    std::size_t size() const { return workers.size(); }

    /**
     * Enqueue a callable; returns a future for its result.  Submitting
     * while the pool is shutting down is a programmer error (the task
     * could never run): it trips DNASTORE_ASSERT in dev builds and
     * throws in builds with invariant checks compiled out.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        {
            MutexLock lock(mutex);
            DNASTORE_ASSERT(!stopping,
                            "submit on a stopping ThreadPool: the task "
                            "would never run");
            if (stopping)
                throw std::runtime_error(
                    "submit on a stopping ThreadPool");
            tasks.emplace(PendingTask{[task] { (*task)(); },
                                      obs::traceNowMicros(),
                                      obs::currentStageTag()});
        }
        available.notifyOne();
        return future;
    }

    /**
     * Run fn(i) for every i in [begin, end), distributing contiguous chunks
     * over the pool.  Blocks until all iterations finish.  If exactly one
     * chunk throws, that exception is rethrown unchanged; if several
     * throw, a ParallelError aggregating every failure is thrown instead.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(chunk_begin, chunk_end) over contiguous ranges covering
     * [begin, end).  Useful when per-chunk setup matters (e.g. a
     * per-thread Rng stream).
     */
    void parallelChunks(
        std::size_t begin, std::size_t end,
        const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    /**
     * A queued task plus the attribution the worker needs: when it was
     * enqueued (for the queue-wait histogram) and the submitter's stage
     * tag (so pool work stays attributed to the scheduling stage).
     */
    struct PendingTask
    {
        std::function<void()> fn;
        std::uint64_t enqueue_us = 0;
        const char *stage_tag = nullptr;
    };

    void workerLoop();

    std::vector<std::thread> workers;
    Mutex mutex{"util.thread_pool"};
    std::queue<PendingTask> tasks DNASTORE_GUARDED_BY(mutex);
    CondVar available;
    bool stopping DNASTORE_GUARDED_BY(mutex) = false;
};

} // namespace dnastore

