/**
 * @file
 * Wall-clock timing helpers used by the pipeline latency benchmarks.
 */

#pragma once

#include <chrono>
#include <cstdint>

namespace dnastore
{

/** Simple wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

    /** Seconds elapsed since construction/reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** Milliseconds elapsed since construction/reset. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/**
 * Accumulates elapsed time across multiple start/stop intervals,
 * e.g. to attribute time to a pipeline stage entered repeatedly.
 */
class StageTimer
{
  public:
    /** Begin an interval. */
    void begin() { interval.reset(); }

    /** End the current interval, adding it to the accumulated total. */
    void end() { total += interval.seconds(); }

    /** Accumulated seconds over all closed intervals. */
    double seconds() const { return total; }

    /** Drop all accumulated time. */
    void reset() { total = 0.0; }

  private:
    WallTimer interval;
    double total = 0.0;
};

} // namespace dnastore

