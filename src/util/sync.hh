/**
 * @file
 * Annotated synchronisation primitives for Clang Thread Safety Analysis.
 *
 * libstdc++'s std::mutex carries no capability attributes, so
 * -Wthread-safety cannot see std::lock_guard acquisitions at all.  These
 * thin wrappers make every lock operation visible to the analysis:
 *
 *   Mutex      — std::mutex as a DNASTORE_CAPABILITY
 *   MutexLock  — std::lock_guard as a DNASTORE_SCOPED_CAPABILITY
 *
 * A Mutex may carry a name (string literal): when lock-contention
 * profiling is armed (obs/lock_timing.hh), contended acquisitions are
 * timed and recorded per name.  The profiling check costs one relaxed
 * atomic load when disarmed, and the whole contended path lives inline
 * in this header — the one place dnalint R6 sanctions raw lock calls.
 *   CondVar    — std::condition_variable_any over Mutex; wait(m) is
 *                annotated DNASTORE_REQUIRES(m), so the canonical
 *                pattern stays analysable:
 *
 *                    MutexLock lock(mutex_);
 *                    while (!ready_)       // guarded read: lock held
 *                        cond_.wait(mutex_);
 *
 * Zero-cost: all annotation macros expand to nothing outside Clang, and
 * the wrappers add no state beyond the wrapped std primitive.
 *
 * This header (with util/thread_annotations.hh) is the one sanctioned
 * home of a bare std::mutex member — dnalint R6 flags bare mutex
 * members everywhere else under src/, and R8 exempts both headers from
 * the module layering DAG so even the bottom obs layer can use them.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/lock_timing.hh"
#include "util/thread_annotations.hh"

namespace dnastore
{

/** std::mutex, visible to the thread-safety analysis as a capability. */
class DNASTORE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    /** @param name string literal keying this mutex's wait histogram. */
    explicit Mutex(const char *name)
        : name_(name)
    {
    }
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() DNASTORE_ACQUIRE()
    {
        if (!obs::locktime::enabled()) {
            raw_.lock();
            return;
        }
        // Profiled path: an uncontended acquisition stays clock-free;
        // only a failed try_lock reads the clock and blocks.
        if (raw_.try_lock())
            return;
        const std::uint64_t begin_ns = obs::locktime::monotonicNanos();
        raw_.lock();
        obs::locktime::recordWait(
            name_, obs::locktime::monotonicNanos() - begin_ns);
    }
    void unlock() DNASTORE_RELEASE() { raw_.unlock(); }
    [[nodiscard]] bool
    tryLock() DNASTORE_TRY_ACQUIRE(true)
    {
        return raw_.try_lock();
    }

    /** The contention-histogram name this mutex records under. */
    const char *name() const { return name_; }

  private:
    std::mutex raw_;
    const char *name_ = "unnamed";
};

/** RAII scope lock over Mutex (std::lock_guard shape, annotated). */
class DNASTORE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) DNASTORE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() DNASTORE_RELEASE() { mutex_.unlock(); }

  private:
    Mutex &mutex_;
};

/**
 * Condition variable over Mutex.  wait() requires the mutex held and
 * returns with it held again (it is released only inside the wait), so
 * the analysis treats the capability as continuously held across the
 * call — exactly the guarantee the caller's predicate loop relies on.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified; @p mutex must be held by the caller. */
    void
    wait(Mutex &mutex) DNASTORE_REQUIRES(mutex)
    {
        cv_.wait(mutex);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace dnastore
