/**
 * @file
 * Invariant-checking macros for internal consistency assertions.
 *
 * DNASTORE_ASSERT(cond, msg)  — cheap invariant, checked whenever the
 *                               DNASTORE_DCHECKS build option is on.
 * DNASTORE_DCHECK(cond, msg)  — same gate; use for checks on hot paths
 *                               so intent is visible at the call site.
 *
 * Both are enabled in Debug and the default RelWithDebInfo dev build and
 * compiled out entirely in Release/MinSizeRel (see DNASTORE_DCHECKS in the
 * top-level CMakeLists.txt).  On failure they print the failing condition,
 * message and source location to stderr and abort, which sanitizer and
 * fuzzing builds turn into an actionable report.
 *
 * Unlike exceptions these are for programmer errors (broken internal
 * invariants), never for untrusted input: parsers and decoders must keep
 * returning std::optional / StageStatus for malformed data.
 */

#pragma once

#include <cstdio>
#include <cstdlib>

namespace dnastore::detail
{

[[noreturn]] inline void
assertFail(const char *cond, const char *msg, const char *file, int line)
{
    std::fprintf(stderr, "%s:%d: DNASTORE_ASSERT(%s) failed: %s\n", file,
                 line, cond, msg);
    std::fflush(stderr);
    std::abort();
}

} // namespace dnastore::detail

#if defined(DNASTORE_ENABLE_DCHECKS)

#define DNASTORE_ASSERT(cond, msg)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::dnastore::detail::assertFail(#cond, (msg), __FILE__,           \
                                           __LINE__);                        \
        }                                                                    \
    } while (false)

#else

#define DNASTORE_ASSERT(cond, msg)                                           \
    do {                                                                     \
    } while (false)

#endif

#define DNASTORE_DCHECK(cond, msg) DNASTORE_ASSERT(cond, msg)

