/**
 * @file
 * The DNA alphabet {A, C, G, T}: conversions between characters and 2-bit
 * codes, complements, and validity checks.  Unconstrained coding maps two
 * payload bits per nucleotide (paper Section II-D), so the 2-bit code is
 * the fundamental unit the codecs work in.
 */

#pragma once

#include <cstdint>

namespace dnastore
{

/** Number of distinct nucleotides. */
inline constexpr int kNumBases = 4;

/** 2-bit nucleotide code: A=0, C=1, G=2, T=3. */
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

/** Character for a 2-bit code (code masked to two bits). */
constexpr char
baseToChar(std::uint8_t code)
{
    constexpr char table[4] = {'A', 'C', 'G', 'T'};
    return table[code & 0x3];
}

/** Character for a Base. */
constexpr char
baseToChar(Base b)
{
    return baseToChar(static_cast<std::uint8_t>(b));
}

/** True if c is one of A/C/G/T (upper case). */
constexpr bool
isBaseChar(char c)
{
    return c == 'A' || c == 'C' || c == 'G' || c == 'T';
}

/**
 * 2-bit code for a nucleotide character; accepts lower case.
 * Returns 0xff for non-ACGT characters.
 */
constexpr std::uint8_t
charToCode(char c)
{
    switch (c) {
      case 'A': case 'a': return 0;
      case 'C': case 'c': return 1;
      case 'G': case 'g': return 2;
      case 'T': case 't': return 3;
      default: return 0xff;
    }
}

/** Watson-Crick complement of a nucleotide character (A<->T, C<->G). */
constexpr char
complementChar(char c)
{
    switch (c) {
      case 'A': return 'T';
      case 'T': return 'A';
      case 'C': return 'G';
      case 'G': return 'C';
      case 'a': return 't';
      case 't': return 'a';
      case 'c': return 'g';
      case 'g': return 'c';
      default: return c;
    }
}

} // namespace dnastore

