#include "dna/strand.hh"

#include <algorithm>
#include <stdexcept>

#include "dna/base.hh"

namespace dnastore
{
namespace strand
{

bool
isValid(const Strand &s)
{
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return isBaseChar(c); });
}

Strand
random(Rng &rng, std::size_t length)
{
    Strand s(length, 'A');
    for (auto &c : s)
        c = baseToChar(static_cast<std::uint8_t>(rng.below(4)));
    return s;
}

double
gcContent(const Strand &s)
{
    if (s.empty())
        return 0.0;
    const auto gc = std::count_if(s.begin(), s.end(), [](char c) {
        return c == 'G' || c == 'C' || c == 'g' || c == 'c';
    });
    return static_cast<double>(gc) / static_cast<double>(s.size());
}

std::size_t
maxHomopolymerRun(const Strand &s)
{
    std::size_t best = 0;
    std::size_t run = 0;
    char prev = '\0';
    for (char c : s) {
        run = (c == prev) ? run + 1 : 1;
        prev = c;
        best = std::max(best, run);
    }
    return best;
}

Strand
reverseComplement(const Strand &s)
{
    Strand out(s.size(), 'A');
    for (std::size_t i = 0; i < s.size(); ++i)
        out[i] = complementChar(s[s.size() - 1 - i]);
    return out;
}

Strand
fromBytes(const std::vector<std::uint8_t> &bytes)
{
    Strand s;
    s.reserve(bytes.size() * 4);
    for (std::uint8_t byte : bytes) {
        s.push_back(baseToChar(static_cast<std::uint8_t>(byte >> 6)));
        s.push_back(baseToChar(static_cast<std::uint8_t>(byte >> 4)));
        s.push_back(baseToChar(static_cast<std::uint8_t>(byte >> 2)));
        s.push_back(baseToChar(byte));
    }
    return s;
}

std::vector<std::uint8_t>
toBytes(const Strand &s)
{
    if (s.size() % 4 != 0)
        throw std::invalid_argument("toBytes: length not a multiple of 4");
    auto bytes = tryToBytes(s);
    if (!bytes)
        throw std::invalid_argument("toBytes: non-ACGT character");
    return std::move(*bytes);
}

std::optional<std::vector<std::uint8_t>>
tryToBytes(const Strand &s)
{
    if (s.size() % 4 != 0)
        return std::nullopt;
    std::vector<std::uint8_t> bytes;
    bytes.reserve(s.size() / 4);
    for (std::size_t i = 0; i < s.size(); i += 4) {
        std::uint8_t byte = 0;
        for (std::size_t j = 0; j < 4; ++j) {
            const std::uint8_t code = charToCode(s[i + j]);
            if (code == 0xff)
                return std::nullopt;
            byte = static_cast<std::uint8_t>((byte << 2) | code);
        }
        bytes.push_back(byte);
    }
    return bytes;
}

Strand
encodeNumber(std::uint64_t value, std::size_t num_bases)
{
    if (num_bases < 32 && (value >> (2 * num_bases)) != 0)
        throw std::invalid_argument("encodeNumber: value does not fit");
    Strand s(num_bases, 'A');
    for (std::size_t i = 0; i < num_bases; ++i) {
        const std::size_t shift = 2 * (num_bases - 1 - i);
        const auto code = static_cast<std::uint8_t>(
            shift < 64 ? (value >> shift) & 0x3 : 0);
        s[i] = baseToChar(code);
    }
    return s;
}

std::uint64_t
decodeNumber(const Strand &s)
{
    const auto value = tryDecodeNumber(s);
    if (!value)
        throw std::invalid_argument(
            "decodeNumber: non-ACGT character or overflow-length field");
    return *value;
}

std::optional<std::uint64_t>
tryDecodeNumber(const Strand &s)
{
    // More than 32 bases cannot round-trip through a 64-bit value; treat
    // an overflow-length field as malformed rather than silently
    // truncating the high bits.
    if (s.size() > 32)
        return std::nullopt;
    std::uint64_t value = 0;
    for (char c : s) {
        const std::uint8_t code = charToCode(c);
        if (code == 0xff)
            return std::nullopt;
        value = (value << 2) | code;
    }
    return value;
}

std::vector<std::size_t>
mismatchPositions(const Strand &a, const Strand &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("mismatchPositions: length mismatch");
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            out.push_back(i);
    return out;
}

} // namespace strand
} // namespace dnastore
