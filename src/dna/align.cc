#include "dna/align.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "dna/base.hh"

namespace dnastore
{

PairwiseAlignment
globalAlign(const std::string &a, const std::string &b,
            const AlignScores &scores)
{
    const std::size_t n = a.size(), m = b.size();
    // dp[i][j]: best score aligning a[0..i) with b[0..j).
    std::vector<int> dp((n + 1) * (m + 1));
    std::vector<std::uint8_t> trace((n + 1) * (m + 1));
    auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };
    enum : std::uint8_t { FromDiag = 0, FromUp = 1, FromLeft = 2 };

    dp[at(0, 0)] = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        dp[at(i, 0)] = static_cast<int>(i) * scores.gap;
        trace[at(i, 0)] = FromUp;
    }
    for (std::size_t j = 1; j <= m; ++j) {
        dp[at(0, j)] = static_cast<int>(j) * scores.gap;
        trace[at(0, j)] = FromLeft;
    }
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const int diag = dp[at(i - 1, j - 1)] +
                (a[i - 1] == b[j - 1] ? scores.match : scores.mismatch);
            const int up = dp[at(i - 1, j)] + scores.gap;
            const int left = dp[at(i, j - 1)] + scores.gap;
            int best = diag;
            std::uint8_t dir = FromDiag;
            if (up > best) {
                best = up;
                dir = FromUp;
            }
            if (left > best) {
                best = left;
                dir = FromLeft;
            }
            dp[at(i, j)] = best;
            trace[at(i, j)] = dir;
        }
    }

    PairwiseAlignment out;
    out.score = dp[at(n, m)];
    std::size_t i = n, j = m;
    std::string ra, rb;
    while (i > 0 || j > 0) {
        const std::uint8_t dir = trace[at(i, j)];
        if (i > 0 && j > 0 && dir == FromDiag) {
            ra.push_back(a[--i]);
            rb.push_back(b[--j]);
        } else if (i > 0 && (dir == FromUp || j == 0)) {
            ra.push_back(a[--i]);
            rb.push_back('-');
        } else {
            ra.push_back('-');
            rb.push_back(b[--j]);
        }
    }
    std::reverse(ra.begin(), ra.end());
    std::reverse(rb.begin(), rb.end());
    out.aligned_a = std::move(ra);
    out.aligned_b = std::move(rb);
    return out;
}

std::vector<EditOp>
classifyEdits(const std::string &reference, const std::string &read,
              const AlignScores &scores)
{
    const PairwiseAlignment aln = globalAlign(reference, read, scores);
    std::vector<EditOp> ops;
    ops.reserve(aln.aligned_a.size());
    std::size_t ref_pos = 0;
    for (std::size_t i = 0; i < aln.aligned_a.size(); ++i) {
        const char rc = aln.aligned_a[i];
        const char qc = aln.aligned_b[i];
        if (rc == '-') {
            ops.push_back({EditKind::Insertion, ref_pos, '-', qc});
        } else if (qc == '-') {
            ops.push_back({EditKind::Deletion, ref_pos, rc, '-'});
            ++ref_pos;
        } else if (rc == qc) {
            ops.push_back({EditKind::Match, ref_pos, rc, qc});
            ++ref_pos;
        } else {
            ops.push_back({EditKind::Substitution, ref_pos, rc, qc});
            ++ref_pos;
        }
    }
    return ops;
}

ProfileMsa::ProfileMsa(const AlignScores &align_scores) : scores(align_scores)
{
}

double
ProfileMsa::columnScore(const Column &col, std::uint8_t code) const
{
    assert(reads_added > 0);
    std::uint32_t bases = 0;
    for (int b = 0; b < kNumBases; ++b)
        bases += col.counts[b];
    const double matches = col.counts[code];
    const double mismatches = static_cast<double>(bases) - matches;
    const double gaps = col.counts[4];
    return (matches * scores.match + mismatches * scores.mismatch +
            gaps * scores.gap) /
        static_cast<double>(reads_added);
}

double
ProfileMsa::columnGapScore(const Column &col) const
{
    assert(reads_added > 0);
    std::uint32_t bases = 0;
    for (int b = 0; b < kNumBases; ++b)
        bases += col.counts[b];
    // Gap against an existing gap costs nothing; against a base, the gap
    // penalty.
    return (static_cast<double>(bases) * scores.gap) /
        static_cast<double>(reads_added);
}

void
ProfileMsa::addRead(const std::string &read)
{
    std::vector<std::uint8_t> codes(read.size());
    for (std::size_t i = 0; i < read.size(); ++i) {
        const std::uint8_t code = charToCode(read[i]);
        if (code == 0xff)
            throw std::invalid_argument("ProfileMsa: non-ACGT character");
        codes[i] = code;
    }

    if (reads_added == 0) {
        columns.resize(read.size());
        for (std::size_t i = 0; i < read.size(); ++i)
            columns[i].counts[codes[i]] = 1;
        reads_added = 1;
        return;
    }

    const std::size_t m = columns.size();
    const std::size_t n = read.size();
    std::vector<double> dp((m + 1) * (n + 1));
    std::vector<std::uint8_t> trace((m + 1) * (n + 1));
    auto at = [n](std::size_t i, std::size_t j) { return i * (n + 1) + j; };
    enum : std::uint8_t { FromDiag = 0, FromUp = 1, FromLeft = 2 };

    dp[at(0, 0)] = 0.0;
    for (std::size_t i = 1; i <= m; ++i) {
        dp[at(i, 0)] = dp[at(i - 1, 0)] + columnGapScore(columns[i - 1]);
        trace[at(i, 0)] = FromUp;
    }
    for (std::size_t j = 1; j <= n; ++j) {
        // Inserting a new column: every existing read takes a gap.
        dp[at(0, j)] = dp[at(0, j - 1)] + scores.gap;
        trace[at(0, j)] = FromLeft;
    }
    for (std::size_t i = 1; i <= m; ++i) {
        const Column &col = columns[i - 1];
        const double gap_here = columnGapScore(col);
        for (std::size_t j = 1; j <= n; ++j) {
            const double diag =
                dp[at(i - 1, j - 1)] + columnScore(col, codes[j - 1]);
            const double up = dp[at(i - 1, j)] + gap_here;
            const double left = dp[at(i, j - 1)] + scores.gap;
            double best = diag;
            std::uint8_t dir = FromDiag;
            if (up > best) {
                best = up;
                dir = FromUp;
            }
            if (left > best) {
                best = left;
                dir = FromLeft;
            }
            dp[at(i, j)] = best;
            trace[at(i, j)] = dir;
        }
    }

    // Traceback, collecting operations front-to-back after a reverse.
    struct Step { std::uint8_t dir; std::size_t col; std::uint8_t code; };
    std::vector<Step> steps;
    steps.reserve(m + n);
    std::size_t i = m, j = n;
    while (i > 0 || j > 0) {
        const std::uint8_t dir = trace[at(i, j)];
        if (i > 0 && j > 0 && dir == FromDiag) {
            --i;
            --j;
            steps.push_back({FromDiag, i, codes[j]});
        } else if (i > 0 && (dir == FromUp || j == 0)) {
            --i;
            steps.push_back({FromUp, i, 0});
        } else {
            --j;
            steps.push_back({FromLeft, 0, codes[j]});
        }
    }
    std::reverse(steps.begin(), steps.end());

    std::vector<Column> merged;
    merged.reserve(columns.size() + n);
    for (const Step &step : steps) {
        switch (step.dir) {
          case FromDiag: {
            Column col = columns[step.col];
            ++col.counts[step.code];
            merged.push_back(col);
            break;
          }
          case FromUp: {
            Column col = columns[step.col];
            ++col.counts[4]; // read gaps this column
            merged.push_back(col);
            break;
          }
          case FromLeft: {
            Column col;
            col.counts[step.code] = 1;
            col.counts[4] = static_cast<std::uint32_t>(reads_added);
            merged.push_back(col);
            break;
          }
        }
    }
    columns = std::move(merged);
    ++reads_added;
}

std::string
ProfileMsa::consensus(std::size_t expected_length) const
{
    struct Pick
    {
        char base;
        std::uint32_t gaps;
        std::size_t order;
    };
    std::vector<Pick> picks;
    picks.reserve(columns.size());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        const Column &col = columns[i];
        int best_base = 0;
        for (int b = 1; b < kNumBases; ++b)
            if (col.counts[b] > col.counts[best_base])
                best_base = b;
        // A column is kept if some base strictly beats the gap count; ties
        // favour keeping the base so sparse coverage does not erase data.
        if (col.counts[best_base] == 0 ||
            col.counts[4] > col.counts[best_base]) {
            continue;
        }
        picks.push_back({baseToChar(static_cast<std::uint8_t>(best_base)),
                         col.counts[4], i});
    }

    if (expected_length > 0 && picks.size() > expected_length) {
        // Drop the x most indel-heavy columns (paper Section VII-C).
        const std::size_t x = picks.size() - expected_length;
        std::vector<std::size_t> idx(picks.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::stable_sort(idx.begin(), idx.end(),
                         [&picks](std::size_t a, std::size_t b) {
                             return picks[a].gaps > picks[b].gaps;
                         });
        std::vector<bool> drop(picks.size(), false);
        for (std::size_t i = 0; i < x; ++i)
            drop[idx[i]] = true;
        std::string out;
        out.reserve(expected_length);
        for (std::size_t i = 0; i < picks.size(); ++i)
            if (!drop[i])
                out.push_back(picks[i].base);
        return out;
    }

    std::string out;
    out.reserve(picks.size());
    for (const Pick &pick : picks)
        out.push_back(pick.base);
    return out;
}

} // namespace dnastore
