/**
 * @file
 * Global sequence alignment (Needleman-Wunsch).  Used for:
 *  - pairwise alignment of clean/noisy strand pairs when fitting
 *    data-driven channel models;
 *  - classifying realised channel errors for evaluation;
 *  - the profile-based multiple sequence alignment that underlies the
 *    Needleman-Wunsch consensus reconstructor (paper Section VII-C).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dnastore
{

/** Alignment scoring parameters (match/mismatch/gap, higher is better). */
struct AlignScores
{
    int match = 2;
    int mismatch = -1;
    int gap = -2;
};

/**
 * Result of a pairwise global alignment: both sequences padded with '-'
 * to equal length, plus the alignment score.
 */
struct PairwiseAlignment
{
    std::string aligned_a;
    std::string aligned_b;
    int score = 0;
};

/**
 * Needleman-Wunsch global alignment of a and b.
 * O(|a|*|b|) time and memory (traceback matrix).
 */
PairwiseAlignment
globalAlign(const std::string &a, const std::string &b,
            const AlignScores &scores = AlignScores{});

/** Edit-operation kinds observed in an alignment. */
enum class EditKind : std::uint8_t { Match, Substitution, Insertion, Deletion };

/**
 * One edit event derived from an alignment, positioned on the *reference*
 * (clean) sequence.  Insertions carry the inserted character; deletions
 * the deleted reference character.
 */
struct EditOp
{
    EditKind kind;
    /** Index into the reference sequence (for insertions: the gap slot). */
    std::size_t ref_pos;
    char ref_char;  //!< Reference character ('-' for insertions).
    char read_char; //!< Read character ('-' for deletions).
};

/**
 * Classify per-position edits between a reference and a read using a
 * global alignment.  Matches are included so callers can compute
 * per-position error rates directly.
 */
std::vector<EditOp>
classifyEdits(const std::string &reference, const std::string &read,
              const AlignScores &scores = AlignScores{});

/**
 * A column-profile multiple sequence alignment.  Reads are aligned one at
 * a time against the evolving profile; each column stores counts of
 * A/C/G/T and gap.  This is the portable stand-in for a SIMD partial-order
 * aligner: same algorithmic shape (global alignment to a growing MSA,
 * majority-vote consensus, indel-heavy column trimming), scalar
 * implementation.
 */
class ProfileMsa
{
  public:
    explicit ProfileMsa(const AlignScores &scores = AlignScores{});

    /** Add a read to the MSA (first read seeds the profile). */
    void addRead(const std::string &read);

    /** Number of reads added. */
    std::size_t numReads() const { return reads_added; }

    /** Number of alignment columns. */
    std::size_t numColumns() const { return columns.size(); }

    /** Count of base code b (0..3) in column col. */
    std::uint32_t
    baseCount(std::size_t col, std::uint8_t code) const
    {
        return columns.at(col).counts[code];
    }

    /** Count of gaps in column col. */
    std::uint32_t
    gapCount(std::size_t col) const
    {
        return columns.at(col).counts[4];
    }

    /**
     * Majority-vote consensus:
     *  - columns whose majority is a gap are dropped;
     *  - if the result still exceeds expected_length (nonzero), the excess
     *    columns with the highest gap (indel) counts are dropped, as per
     *    paper Section VII-C.
     */
    std::string consensus(std::size_t expected_length = 0) const;

  private:
    struct Column
    {
        // counts[0..3] = A,C,G,T; counts[4] = gap.
        std::array<std::uint32_t, 5> counts{};
    };

    /** Score of aligning read char code c against a column (profile avg). */
    double columnScore(const Column &col, std::uint8_t code) const;

    /** Penalty for a gap in the read against a column. */
    double columnGapScore(const Column &col) const;

    AlignScores scores;
    std::vector<Column> columns;
    std::size_t reads_added = 0;
};

} // namespace dnastore

