/**
 * @file
 * q-gram extraction helpers used by the clustering signatures (paper
 * Section VI).  A q-gram is a length-q substring; clustering compares
 * reads via the presence (q-gram signature) or first-occurrence position
 * (w-gram signature) of a random set of q-grams.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace dnastore
{

/** All distinct q-grams of s, in order of first occurrence. */
std::vector<std::string> distinctQGrams(const std::string &s, std::size_t q);

/**
 * Generate num_grams distinct random q-grams over ACGT, used as the
 * probe set for signatures.  Requires num_grams <= 4^q.
 */
std::vector<std::string>
randomQGramSet(Rng &rng, std::size_t q, std::size_t num_grams);

/**
 * Index of the first occurrence of pattern in s, or -1 if absent.
 * (Thin wrapper around std::string::find with a signed result, the form
 * the w-gram signature wants.)
 */
std::int32_t firstOccurrence(const std::string &s, const std::string &pattern);

} // namespace dnastore

