#include "dna/distance.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/hot.hh"

namespace dnastore
{

std::size_t
hammingDistance(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        throw std::invalid_argument("hammingDistance: length mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d += a[i] != b[i];
    return d;
}

std::size_t
levenshtein(const std::string &a, const std::string &b)
{
    // Keep the shorter string along the row to bound memory.
    const std::string &rows = a.size() >= b.size() ? a : b;
    const std::string &cols = a.size() >= b.size() ? b : a;
    const std::size_t m = cols.size();

    std::vector<std::size_t> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;

    for (std::size_t i = 1; i <= rows.size(); ++i) {
        curr[0] = i;
        const char ri = rows[i - 1];
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub = prev[j - 1] + (ri != cols[j - 1]);
            const std::size_t del = prev[j] + 1;
            const std::size_t ins = curr[j - 1] + 1;
            curr[j] = std::min({sub, del, ins});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

DNASTORE_HOT std::size_t
boundedLevenshtein(const std::string &a, const std::string &b,
                   std::size_t max_distance)
{
    const std::size_t la = a.size(), lb = b.size();
    const std::size_t len_gap = la > lb ? la - lb : lb - la;
    if (len_gap > max_distance)
        return max_distance + 1;
    if (max_distance == 0)
        return a == b ? 0 : 1;

    // Ukkonen's band: only cells with |i - j| <= max_distance can hold a
    // value <= max_distance.
    const std::string &rows = la >= lb ? a : b;
    const std::string &cols = la >= lb ? b : a;
    const std::size_t m = cols.size();
    const std::size_t big = max_distance + 1;

    std::vector<std::size_t> prev(m + 1, big), curr(m + 1, big);
    for (std::size_t j = 0; j <= std::min(m, max_distance); ++j)
        prev[j] = j;

    for (std::size_t i = 1; i <= rows.size(); ++i) {
        const std::size_t lo = i > max_distance ? i - max_distance : 0;
        const std::size_t hi = std::min(m, i + max_distance);
        if (lo >= 1)
            curr[lo - 1] = big; // stale cell from two rows ago
        curr[lo] = big;
        if (lo == 0)
            curr[0] = std::min<std::size_t>(i, big);
        std::size_t row_best = curr[lo];
        const char ri = rows[i - 1];
        for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
            const std::size_t sub = prev[j - 1] + (ri != cols[j - 1]);
            const std::size_t del = prev[j] + 1;
            const std::size_t ins = curr[j - 1] + 1;
            const std::size_t cell = std::min({sub, del, ins, big});
            curr[j] = cell;
            row_best = std::min(row_best, cell);
        }
        if (hi + 1 <= m)
            curr[hi + 1] = big; // fence for next row's j-1 access
        if (row_best > max_distance)
            return max_distance + 1; // whole band exceeded; can't recover
        std::swap(prev, curr);
    }
    return std::min(prev[m], big);
}

std::size_t
myersLevenshtein(const std::string &a, const std::string &b)
{
    // Pattern = shorter string (vertical axis): cost is
    // O(ceil(m/64) * n) word operations.
    const std::string &pattern = a.size() <= b.size() ? a : b;
    const std::string &text = a.size() <= b.size() ? b : a;
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m == 0)
        return n;

    constexpr std::size_t w = 64;
    const std::size_t blocks = (m + w - 1) / w;

    // Peq[c][j]: bit i of block j set iff pattern[j*64 + i] == c.
    std::array<std::vector<std::uint64_t>, 256> peq_storage;
    std::vector<std::uint64_t> zero_block(blocks, 0);
    // Only materialise rows for characters that occur (strands use a
    // tiny alphabet).
    std::array<std::vector<std::uint64_t> *, 256> peq{};
    for (std::size_t i = 0; i < m; ++i) {
        const auto c = static_cast<unsigned char>(pattern[i]);
        if (!peq[c]) {
            peq_storage[c].assign(blocks, 0);
            peq[c] = &peq_storage[c];
        }
        (*peq[c])[i / w] |= 1ULL << (i % w);
    }

    std::vector<std::uint64_t> vp(blocks, ~0ULL), vn(blocks, 0);
    std::size_t score = m;
    const std::uint64_t last_mask = 1ULL << ((m - 1) % w);
    const std::size_t last = blocks - 1;

    for (std::size_t j = 0; j < n; ++j) {
        const auto c = static_cast<unsigned char>(text[j]);
        const std::vector<std::uint64_t> &eq_row =
            peq[c] ? *peq[c] : zero_block;

        std::uint64_t add_carry = 0;
        // Horizontal deltas shift left across blocks; block 0's
        // incoming +1 encodes the top boundary row D[0][j] = j.
        std::uint64_t hp_carry = 1, hn_carry = 0;
        for (std::size_t blk = 0; blk < blocks; ++blk) {
            const std::uint64_t eq = eq_row[blk];
            const std::uint64_t xv = eq | vn[blk];

            // (Eq & VP) + VP with carry propagation across blocks.
            const std::uint64_t and_term = eq & vp[blk];
            std::uint64_t sum = and_term + vp[blk];
            std::uint64_t carry_out = sum < and_term;
            const std::uint64_t sum2 = sum + add_carry;
            carry_out += sum2 < sum;
            sum = sum2;
            add_carry = carry_out;

            const std::uint64_t xh = (sum ^ vp[blk]) | eq;
            std::uint64_t hp = vn[blk] | ~(xh | vp[blk]);
            std::uint64_t hn = vp[blk] & xh;

            if (blk == last) {
                if (hp & last_mask)
                    ++score;
                else if (hn & last_mask)
                    --score;
            }

            const std::uint64_t hp_out = hp >> (w - 1);
            const std::uint64_t hn_out = hn >> (w - 1);
            hp = (hp << 1) | hp_carry;
            hn = (hn << 1) | hn_carry;
            hp_carry = hp_out;
            hn_carry = hn_out;

            vp[blk] = hn | ~(xv | hp);
            vn[blk] = hp & xv;
        }
    }
    return score;
}

DNASTORE_HOT bool
withinEditDistance(const std::string &a, const std::string &b,
                   std::size_t max_distance)
{
    const std::size_t gap = a.size() > b.size() ? a.size() - b.size()
                                                : b.size() - a.size();
    if (gap > max_distance)
        return false;
    // Tight thresholds: the banded DP touches O(k * min_len) cells.
    // Wide thresholds: Myers' kernel is flat in k and wins.
    if (max_distance <= 8)
        return boundedLevenshtein(a, b, max_distance) <= max_distance;
    return myersLevenshtein(a, b) <= max_distance;
}

} // namespace dnastore
