/**
 * @file
 * Strand utilities.  A strand is represented as a std::string over the
 * upper-case alphabet ACGT; this keeps the sequence code simple, fast and
 * directly printable, matching how reads flow through the pipeline as
 * plain text.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/random.hh"

namespace dnastore
{

/** A DNA strand: a string over {A, C, G, T}. */
using Strand = std::string;

namespace strand
{

/** True if every character is one of A/C/G/T (upper case). */
bool isValid(const Strand &s);

/** Uniformly random strand of the given length. */
Strand random(Rng &rng, std::size_t length);

/** Fraction of G/C characters; 0 for the empty strand. */
double gcContent(const Strand &s);

/** Length of the longest homopolymer run (0 for the empty strand). */
std::size_t maxHomopolymerRun(const Strand &s);

/** Reverse complement (5'->3' flip of the opposite strand). */
Strand reverseComplement(const Strand &s);

/**
 * Pack payload bytes into nucleotides, two bits per base, MSB first.
 * A byte 0bB3B2B1B0 (bit pairs) becomes 4 nucleotides.
 */
[[nodiscard]] Strand fromBytes(const std::vector<std::uint8_t> &bytes);

/**
 * Unpack nucleotides back into bytes (inverse of fromBytes).
 * The strand length must be a multiple of 4; throws std::invalid_argument
 * otherwise or on non-ACGT characters.
 */
[[nodiscard]] std::vector<std::uint8_t> toBytes(const Strand &s);

/**
 * Non-throwing variant of toBytes for untrusted input: returns
 * std::nullopt when the length is not a multiple of 4 or a character is
 * not ACGT.
 */
[[nodiscard]] std::optional<std::vector<std::uint8_t>>
tryToBytes(const Strand &s);

/**
 * Encode an unsigned integer as fixed-width nucleotides (big-endian,
 * two bits per base).  Width must be large enough; throws otherwise.
 */
[[nodiscard]] Strand encodeNumber(std::uint64_t value,
                                  std::size_t num_bases);

/**
 * Decode a fixed-width nucleotide number (inverse of encodeNumber).
 * Throws std::invalid_argument on non-ACGT characters or an
 * overflow-length (> 32 base) field.
 */
[[nodiscard]] std::uint64_t decodeNumber(const Strand &s);

/**
 * Non-throwing variant of decodeNumber for untrusted input: returns
 * std::nullopt on non-ACGT characters or when the strand is longer than
 * 32 bases (a 64-bit value cannot represent it without truncation).
 */
[[nodiscard]] std::optional<std::uint64_t> tryDecodeNumber(const Strand &s);

/** Positions (0-based) where two equal-length strands differ. */
std::vector<std::size_t> mismatchPositions(const Strand &a, const Strand &b);

} // namespace strand

} // namespace dnastore

