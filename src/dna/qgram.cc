#include "dna/qgram.hh"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "dna/strand.hh"

namespace dnastore
{

std::vector<std::string>
distinctQGrams(const std::string &s, std::size_t q)
{
    std::vector<std::string> out;
    if (q == 0 || s.size() < q)
        return out;
    std::unordered_set<std::string> seen;
    for (std::size_t i = 0; i + q <= s.size(); ++i) {
        std::string gram = s.substr(i, q);
        if (seen.insert(gram).second)
            out.push_back(std::move(gram));
    }
    return out;
}

std::vector<std::string>
randomQGramSet(Rng &rng, std::size_t q, std::size_t num_grams)
{
    if (q == 0)
        throw std::invalid_argument("randomQGramSet: q must be positive");
    // 4^q possible grams; reject when the request cannot be satisfied.
    const double capacity = std::pow(4.0, static_cast<double>(q));
    if (static_cast<double>(num_grams) > capacity)
        throw std::invalid_argument("randomQGramSet: num_grams exceeds 4^q");

    std::unordered_set<std::string> seen;
    std::vector<std::string> out;
    out.reserve(num_grams);
    while (out.size() < num_grams) {
        std::string gram = strand::random(rng, q);
        if (seen.insert(gram).second)
            out.push_back(std::move(gram));
    }
    return out;
}

std::int32_t
firstOccurrence(const std::string &s, const std::string &pattern)
{
    const auto pos = s.find(pattern);
    return pos == std::string::npos ? -1 : static_cast<std::int32_t>(pos);
}

} // namespace dnastore
