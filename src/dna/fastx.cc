#include "dna/fastx.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dnastore
{

namespace
{

/** getline that tolerates trailing '\r' (CRLF files). */
bool
getCleanLine(std::istream &in, std::string &line)
{
    if (!std::getline(in, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

} // namespace

std::vector<FastqRecord>
readFastq(std::istream &in)
{
    std::vector<FastqRecord> records;
    std::string header, sequence, plus, quality;
    std::size_t line_no = 0;
    while (getCleanLine(in, header)) {
        ++line_no;
        if (header.empty())
            continue; // tolerate blank separator lines
        if (header[0] != '@') {
            throw std::runtime_error("FASTQ: expected '@' at line " +
                                     std::to_string(line_no));
        }
        if (!getCleanLine(in, sequence) || !getCleanLine(in, plus) ||
            !getCleanLine(in, quality)) {
            throw std::runtime_error("FASTQ: truncated record at line " +
                                     std::to_string(line_no));
        }
        line_no += 3;
        if (plus.empty() || plus[0] != '+') {
            throw std::runtime_error("FASTQ: expected '+' at line " +
                                     std::to_string(line_no - 1));
        }
        if (sequence.size() != quality.size()) {
            throw std::runtime_error(
                "FASTQ: sequence/quality length mismatch at line " +
                std::to_string(line_no));
        }
        records.push_back({header.substr(1), sequence, quality});
    }
    return records;
}

std::vector<FastqRecord>
readFastqFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open FASTQ file: " + path);
    return readFastq(in);
}

void
writeFastq(std::ostream &out, const std::vector<FastqRecord> &records)
{
    for (const auto &rec : records) {
        out << '@' << rec.id << '\n'
            << rec.sequence << '\n'
            << "+\n"
            << rec.quality << '\n';
    }
}

void
writeFastqFile(const std::string &path,
               const std::vector<FastqRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open FASTQ file for write: " + path);
    writeFastq(out, records);
    if (!out)
        throw std::runtime_error("write failed: " + path);
}

std::vector<FastaRecord>
readFasta(std::istream &in)
{
    std::vector<FastaRecord> records;
    std::string line;
    while (getCleanLine(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '>') {
            records.push_back({line.substr(1), ""});
        } else {
            if (records.empty())
                throw std::runtime_error("FASTA: sequence before header");
            records.back().sequence += line;
        }
    }
    return records;
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records)
{
    constexpr std::size_t wrap = 70;
    for (const auto &rec : records) {
        out << '>' << rec.id << '\n';
        for (std::size_t i = 0; i < rec.sequence.size(); i += wrap)
            out << rec.sequence.substr(i, wrap) << '\n';
    }
}

} // namespace dnastore
