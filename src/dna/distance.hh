/**
 * @file
 * String distances used throughout the pipeline.  Levenshtein (edit)
 * distance is the similarity metric for clustering and for evaluating
 * reconstruction quality (paper Section II-E); the banded variant bounds
 * the work when the caller only needs to know whether two reads are
 * within a merge threshold.
 */

#pragma once

#include <cstddef>
#include <string>

namespace dnastore
{

/**
 * Hamming distance between equal-length strings.
 * Throws std::invalid_argument on length mismatch.
 */
std::size_t hammingDistance(const std::string &a, const std::string &b);

/**
 * Exact Levenshtein (edit) distance: minimum number of single-character
 * insertions, deletions and substitutions transforming a into b.
 * O(|a|*|b|) time, O(min(|a|,|b|)) space.
 */
std::size_t levenshtein(const std::string &a, const std::string &b);

/**
 * Banded Levenshtein distance with cutoff.  Returns the exact distance if
 * it is <= max_distance, otherwise returns max_distance + 1.  Runs in
 * O(max_distance * min(|a|,|b|)) time.
 */
std::size_t boundedLevenshtein(const std::string &a, const std::string &b,
                               std::size_t max_distance);

/**
 * Myers' bit-parallel Levenshtein distance (blocked variant, Hyyro's
 * formulation): exact global edit distance in
 * O(ceil(min_len/64) * max_len) word operations.  This is the fast
 * kernel behind the clustering module's gray-zone comparisons, where
 * thresholds are too wide for the banded algorithm to win.
 */
std::size_t myersLevenshtein(const std::string &a, const std::string &b);

/**
 * Convenience: true iff levenshtein(a, b) <= max_distance.  Dispatches
 * between the banded DP (cheap for tight thresholds) and Myers'
 * bit-parallel kernel (cheaper for wide ones).
 */
bool withinEditDistance(const std::string &a, const std::string &b,
                        std::size_t max_distance);

} // namespace dnastore

