/**
 * @file
 * FASTA/FASTQ reading and writing.  Sequencing machines emit FASTQ; the
 * wetlab-data handling module (paper Section VIII) converts it into the
 * plain read lists the clustering module consumes.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dnastore
{

/** One FASTQ record: @id / sequence / + / quality. */
struct FastqRecord
{
    std::string id;
    std::string sequence;
    std::string quality; //!< Phred+33 characters, same length as sequence.
};

/** One FASTA record: >id / sequence (possibly wrapped). */
struct FastaRecord
{
    std::string id;
    std::string sequence;
};

/**
 * Parse FASTQ from a stream.  Throws std::runtime_error on structural
 * errors (missing lines, header markers, length mismatch between sequence
 * and quality).
 */
std::vector<FastqRecord> readFastq(std::istream &in);

/** Parse a FASTQ file; throws std::runtime_error if unreadable. */
std::vector<FastqRecord> readFastqFile(const std::string &path);

/** Serialise records as FASTQ. */
void writeFastq(std::ostream &out, const std::vector<FastqRecord> &records);

/** Write records to a FASTQ file; throws std::runtime_error on failure. */
void writeFastqFile(const std::string &path,
                    const std::vector<FastqRecord> &records);

/** Parse FASTA from a stream (multi-line sequences supported). */
std::vector<FastaRecord> readFasta(std::istream &in);

/** Serialise records as FASTA (sequences wrapped at 70 columns). */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &records);

} // namespace dnastore

