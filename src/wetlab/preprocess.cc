#include "wetlab/preprocess.hh"

#include "dna/distance.hh"

namespace dnastore
{

namespace
{

/**
 * Decide the orientation of a read relative to a primer pair.
 * Returns 0 = forward, 1 = reverse (needs flip), -1 = unrecognised.
 */
int
classifyOrientation(const Strand &read, const PrimerPair &pair,
                    std::size_t max_edit)
{
    if (read.size() < pair.forward.size())
        return -1;
    const std::string prefix = read.substr(0, pair.forward.size());
    const std::size_t d_fwd =
        boundedLevenshtein(prefix, pair.forward, max_edit);

    const Strand rc_rev = strand::reverseComplement(pair.reverse);
    const std::string prefix_rc = read.substr(0, rc_rev.size());
    const std::size_t d_rev = boundedLevenshtein(prefix_rc, rc_rev, max_edit);

    if (d_fwd > max_edit && d_rev > max_edit)
        return -1;
    return d_fwd <= d_rev ? 0 : 1;
}

} // namespace

PreprocessResult
preprocessReads(const std::vector<Strand> &raw_reads, const PrimerPair &pair,
                const WetlabPreprocessConfig &config)
{
    PreprocessResult result;
    result.total = raw_reads.size();
    for (const Strand &raw : raw_reads) {
        const int orientation =
            classifyOrientation(raw, pair, config.primer_max_edit);
        if (orientation < 0) {
            ++result.rejected;
            continue;
        }
        Strand oriented = orientation == 0
            ? raw
            : strand::reverseComplement(raw);
        if (orientation == 1)
            ++result.flipped;
        const auto payload =
            stripPrimers(pair, oriented, config.primer_max_edit);
        if (!payload) {
            ++result.rejected;
            continue;
        }
        result.reads.push_back(*payload);
    }
    return result;
}

PreprocessResult
preprocessFastq(const std::vector<FastqRecord> &records,
                const PrimerPair &pair, const WetlabPreprocessConfig &config)
{
    std::vector<Strand> raw;
    raw.reserve(records.size());
    for (const FastqRecord &rec : records)
        raw.push_back(rec.sequence);
    return preprocessReads(raw, pair, config);
}

std::vector<FastqRecord>
readsToFastq(const std::vector<Strand> &reads, const std::string &id_prefix)
{
    std::vector<FastqRecord> records;
    records.reserve(reads.size());
    for (std::size_t i = 0; i < reads.size(); ++i) {
        records.push_back({id_prefix + "_" + std::to_string(i), reads[i],
                           std::string(reads[i].size(), 'I')});
    }
    return records;
}

} // namespace dnastore
