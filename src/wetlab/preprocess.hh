/**
 * @file
 * Wetlab-data handling (paper Section VIII): turns raw FASTQ output of
 * a sequencer into the plain payload reads the clustering module
 * expects.  Sequenced reads come in both orientations, so each read is
 * matched against the file's primer pair (or its reverse complement),
 * flipped into 5'->3' orientation when needed, and stripped of its
 * primers; reads whose primers cannot be located are rejected.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "codec/primer.hh"
#include "dna/fastx.hh"
#include "dna/strand.hh"

namespace dnastore
{

/** Preprocessing knobs. */
struct WetlabPreprocessConfig
{
    /** Edit-distance tolerance when locating each primer. */
    std::size_t primer_max_edit = 5;
};

/** Outcome counters plus the surviving payload reads. */
struct PreprocessResult
{
    std::vector<Strand> reads;     //!< Payload-only, 5'->3'.
    std::size_t total = 0;         //!< Input records.
    std::size_t flipped = 0;       //!< Reverse-complemented reads.
    std::size_t rejected = 0;      //!< No recognisable primer pair.
};

/**
 * Preprocess sequencer output for one file (identified by its primer
 * pair).  Orientation is decided by whichever primer matches the read
 * prefix best: the forward primer (read is already 5'->3') or the
 * reverse complement of the reverse primer (read must be flipped).
 */
PreprocessResult
preprocessFastq(const std::vector<FastqRecord> &records,
                const PrimerPair &pair,
                const WetlabPreprocessConfig &config = {});

/** Same, operating on bare sequences (e.g. simulator output). */
PreprocessResult
preprocessReads(const std::vector<Strand> &raw_reads, const PrimerPair &pair,
                const WetlabPreprocessConfig &config = {});

/**
 * Package reads as FASTQ records with constant quality, emulating the
 * "convert to text" interchange used between wetlab and toolkit.
 */
std::vector<FastqRecord>
readsToFastq(const std::vector<Strand> &reads,
             const std::string &id_prefix = "read");

} // namespace dnastore

