#include "reconstruction/bma.hh"

#include <algorithm>
#include <array>

#include "dna/base.hh"

namespace dnastore
{

namespace detail
{

namespace
{

/** Most frequent base across all reads (fallback consensus filler). */
char
dominantBase(const std::vector<Strand> &reads)
{
    std::array<std::size_t, 4> counts{};
    for (const Strand &read : reads) {
        for (char c : read) {
            const std::uint8_t code = charToCode(c);
            if (code != 0xff)
                ++counts[code];
        }
    }
    std::size_t best = 0;
    for (std::size_t b = 1; b < 4; ++b)
        if (counts[b] > counts[best])
            best = b;
    return baseToChar(static_cast<std::uint8_t>(best));
}

} // namespace

Strand
bmaForward(const std::vector<Strand> &reads, std::size_t target_length,
           const BmaConfig &cfg)
{
    const char fallback = reads.empty() ? 'A' : dominantBase(reads);
    std::vector<std::size_t> ptr(reads.size(), 0);
    Strand consensus;
    consensus.reserve(target_length);

    while (consensus.size() < target_length) {
        // Majority vote over the bases at the current pointers.
        std::array<std::size_t, 4> votes{};
        bool any = false;
        for (std::size_t i = 0; i < reads.size(); ++i) {
            if (ptr[i] >= reads[i].size())
                continue;
            const std::uint8_t code = charToCode(reads[i][ptr[i]]);
            if (code == 0xff)
                continue;
            ++votes[code];
            any = true;
        }
        if (!any) {
            consensus.push_back(fallback);
            continue;
        }
        std::size_t m_code = 0;
        for (std::size_t b = 1; b < 4; ++b)
            if (votes[b] > votes[m_code])
                m_code = b;
        const char m = baseToChar(static_cast<std::uint8_t>(m_code));

        // Lookahead hints: the majority of what agreeing reads expose at
        // the next few offsets, i.e. the likely next consensus
        // characters.  Disagreeing reads are re-aligned against these.
        std::array<char, 4> hints{};
        std::size_t num_hints = std::min<std::size_t>(cfg.lookahead, 4);
        for (std::size_t k = 1; k <= num_hints; ++k) {
            std::array<std::size_t, 4> next_votes{};
            for (std::size_t i = 0; i < reads.size(); ++i) {
                const std::size_t p = ptr[i];
                if (p >= reads[i].size() || reads[i][p] != m)
                    continue;
                if (p + k < reads[i].size()) {
                    const std::uint8_t code = charToCode(reads[i][p + k]);
                    if (code != 0xff)
                        ++next_votes[code];
                }
            }
            std::size_t best_votes = 0;
            char hint = '\0';
            for (std::size_t b = 0; b < 4; ++b) {
                if (next_votes[b] > best_votes) {
                    best_votes = next_votes[b];
                    hint = baseToChar(static_cast<std::uint8_t>(b));
                }
            }
            hints[k - 1] = hint;
        }

        // Advance pointers, re-aligning disagreeing reads via lookahead:
        // score the substitution / deletion / insertion hypotheses by
        // how well the read's upcoming bases match the expected next
        // consensus characters, and adjust the pointer per the winner.
        for (std::size_t i = 0; i < reads.size(); ++i) {
            const std::size_t p = ptr[i];
            const Strand &read = reads[i];
            if (p >= read.size())
                continue;
            if (read[p] == m) {
                ++ptr[i];
                continue;
            }
            auto hypothesis_score = [&](std::size_t first_offset) {
                // Compare read[p + first_offset + k] against hints[k].
                int score = 0;
                for (std::size_t k = 0; k < num_hints; ++k) {
                    const std::size_t pos = p + first_offset + k;
                    if (hints[k] == '\0' || pos >= read.size())
                        break;
                    score += read[pos] == hints[k] ? 1 : -1;
                }
                return score;
            };
            // Substitution: read[p] replaced m; the following bases line
            // up with the hints starting at p+1.
            const int sub_score = hypothesis_score(1);
            // Deletion: m is missing from this read; read[p] itself
            // should match the *next* consensus character.
            const int del_score = hypothesis_score(0);
            // Insertion: read[p] is extra; read[p+1] should be m and the
            // bases after it line up with the hints.
            int ins_score = -1;
            if (p + 1 < read.size() && read[p + 1] == m)
                ins_score = 1 + hypothesis_score(2);

            if (ins_score > sub_score && ins_score > del_score)
                ptr[i] = p + 2; // drop the insertion, consume m
            else if (del_score > sub_score)
                ; // hold: read[p] aligns with the next consensus char
            else
                ++ptr[i]; // substitution (default on ties)
        }

        consensus.push_back(m);
    }
    return consensus;
}

} // namespace detail

Strand
BmaReconstructor::reconstruct(const std::vector<Strand> &reads,
                              std::size_t expected_length) const
{
    return detail::bmaForward(reads, expected_length, cfg);
}

Strand
DoubleSidedBmaReconstructor::reconstruct(const std::vector<Strand> &reads,
                                         std::size_t expected_length) const
{
    const std::size_t left_len = (expected_length + 1) / 2;
    const std::size_t right_len = expected_length - left_len;

    const Strand left = detail::bmaForward(reads, left_len, cfg);

    std::vector<Strand> reversed(reads.size());
    for (std::size_t i = 0; i < reads.size(); ++i)
        reversed[i] = Strand(reads[i].rbegin(), reads[i].rend());
    Strand right = detail::bmaForward(reversed, right_len, cfg);
    std::reverse(right.begin(), right.end());

    return left + right;
}

} // namespace dnastore
