/**
 * @file
 * Trace-reconstruction module interface (paper Section VII): given a
 * cluster of noisy reads of one encoded strand, produce the best
 * estimate of the original strand.
 */

#pragma once

#include <string>
#include <vector>

#include "dna/strand.hh"

namespace dnastore
{

/** One trace-reconstruction (consensus-finding) algorithm. */
class Reconstructor
{
  public:
    virtual ~Reconstructor() = default;

    /**
     * Reconstruct the original strand from a cluster of noisy reads.
     *
     * @param reads           Noisy reads of one strand (non-empty).
     * @param expected_length Known encoded strand length; the result is
     *                        exactly this long.
     */
    virtual Strand reconstruct(const std::vector<Strand> &reads,
                               std::size_t expected_length) const = 0;

    /** Human-readable module name. */
    virtual std::string name() const = 0;
};

/**
 * Reconstruct every cluster, optionally in parallel.
 *
 * @param clusters        Read groups (e.g. Clustering::clusters
 *                        resolved to actual reads).
 * @param expected_length Encoded strand length.
 * @param num_threads     1 = sequential.
 */
std::vector<Strand>
reconstructAll(const Reconstructor &algo,
               const std::vector<std::vector<Strand>> &clusters,
               std::size_t expected_length, std::size_t num_threads = 1);

} // namespace dnastore

