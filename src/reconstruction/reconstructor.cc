#include "reconstruction/reconstructor.hh"

#include "util/thread_pool.hh"

namespace dnastore
{

std::vector<Strand>
reconstructAll(const Reconstructor &algo,
               const std::vector<std::vector<Strand>> &clusters,
               std::size_t expected_length, std::size_t num_threads)
{
    std::vector<Strand> out(clusters.size());
    if (num_threads > 1) {
        ThreadPool pool(num_threads);
        pool.parallelFor(0, clusters.size(), [&](std::size_t i) {
            out[i] = algo.reconstruct(clusters[i], expected_length);
        });
    } else {
        for (std::size_t i = 0; i < clusters.size(); ++i)
            out[i] = algo.reconstruct(clusters[i], expected_length);
    }
    return out;
}

} // namespace dnastore
