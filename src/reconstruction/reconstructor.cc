#include "reconstruction/reconstructor.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/hot.hh"
#include "util/thread_pool.hh"

namespace dnastore
{

DNASTORE_HOT std::vector<Strand>
reconstructAll(const Reconstructor &algo,
               const std::vector<std::vector<Strand>> &clusters,
               std::size_t expected_length, std::size_t num_threads)
{
    std::vector<Strand> out(clusters.size());
    std::uint64_t reads_seen = 0;
    for (const auto &cluster : clusters)
        reads_seen += cluster.size();
    if (num_threads > 1) {
        ThreadPool pool(num_threads);
        pool.parallelFor(0, clusters.size(), [&](std::size_t i) {
            obs::Span span("reconstruction/cluster");
            out[i] = algo.reconstruct(clusters[i], expected_length);
        });
    } else {
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            obs::Span span("reconstruction/cluster");
            out[i] = algo.reconstruct(clusters[i], expected_length);
        }
    }
    obs::metrics()
        .counter("reconstruction.clusters_total")
        .add(clusters.size());
    obs::metrics().counter("reconstruction.reads_total").add(reads_seen);
    return out;
}

} // namespace dnastore
