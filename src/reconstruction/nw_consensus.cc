#include "reconstruction/nw_consensus.hh"

#include <algorithm>
#include <array>

#include "dna/base.hh"
#include "obs/metrics.hh"
#include "util/hot.hh"

namespace dnastore
{

namespace
{

/** Share of polish votes cast against the winning base, per position. */
obs::FixedHistogram &
disagreementHistogram()
{
    static obs::FixedHistogram &hist = obs::metrics().histogram(
        "reconstruction.consensus_disagreement_percent",
        obs::percentBuckets());
    return hist;
}

} // namespace

DNASTORE_HOT Strand
NwConsensusReconstructor::reconstruct(const std::vector<Strand> &reads,
                                      std::size_t expected_length) const
{
    if (reads.empty())
        return Strand(expected_length, 'A');

    // Use up to max_reads reads, preferring those whose length is
    // closest to the expected strand length (least-mutilated reads seed
    // the best profile).
    std::vector<std::size_t> order(reads.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto closeness = [&](std::size_t i) {
        const std::size_t len = reads[i].size();
        return len > expected_length ? len - expected_length
                                     : expected_length - len;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return closeness(a) < closeness(b);
                     });
    std::size_t use = reads.size();
    if (cfg.max_reads > 0)
        use = std::min(use, cfg.max_reads);

    ProfileMsa msa(cfg.scores);
    for (std::size_t i = 0; i < use; ++i) {
        if (!reads[order[i]].empty())
            msa.addRead(reads[order[i]]);
    }
    if (msa.numReads() == 0)
        return Strand(expected_length, 'A');

    Strand consensus = msa.consensus(expected_length);

    // Polish: re-align every used read against the draft consensus and
    // re-vote per consensus position.  The draft's own base casts one
    // tie-breaking vote so sparse coverage cannot erase it.
    for (std::size_t pass = 0;
         pass < cfg.refine_passes && !consensus.empty(); ++pass) {
        std::vector<std::array<std::uint32_t, 4>> votes(
            consensus.size(), std::array<std::uint32_t, 4>{});
        for (std::size_t i = 0; i < use; ++i) {
            const Strand &read = reads[order[i]];
            if (read.empty())
                continue;
            const auto ops = classifyEdits(consensus, read, cfg.scores);
            for (const EditOp &op : ops) {
                if (op.kind != EditKind::Match &&
                    op.kind != EditKind::Substitution) {
                    continue;
                }
                const std::uint8_t code = charToCode(op.read_char);
                if (code != 0xff && op.ref_pos < votes.size())
                    ++votes[op.ref_pos][code];
            }
        }
        Strand polished = consensus;
        for (std::size_t pos = 0; pos < consensus.size(); ++pos) {
            const std::uint8_t current = charToCode(consensus[pos]);
            std::uint8_t best = current;
            std::uint32_t best_votes =
                current == 0xff ? 0 : votes[pos][current] + 1;
            std::uint32_t total_votes = current == 0xff ? 0 : 1;
            for (std::uint8_t b = 0; b < 4; ++b) {
                total_votes += votes[pos][b];
                if (votes[pos][b] > best_votes) {
                    best_votes = votes[pos][b];
                    best = b;
                }
            }
            if (pass == 0 && total_votes > 0) {
                disagreementHistogram().observe(
                    100.0 * static_cast<double>(total_votes - best_votes) /
                    static_cast<double>(total_votes));
            }
            if (best != 0xff)
                polished[pos] = baseToChar(best);
        }
        if (polished == consensus)
            break;
        consensus = std::move(polished);
    }

    // The MSA can come up short when coverage is thin; pad with the
    // overall majority base so the decoder sees a full-length strand.
    if (consensus.size() < expected_length) {
        std::array<std::size_t, 4> counts{};
        for (const Strand &read : reads)
            for (char c : read) {
                const std::uint8_t code = charToCode(c);
                if (code != 0xff)
                    ++counts[code];
            }
        std::size_t best = 0;
        for (std::size_t b = 1; b < 4; ++b)
            if (counts[b] > counts[best])
                best = b;
        consensus.append(expected_length - consensus.size(),
                         baseToChar(static_cast<std::uint8_t>(best)));
    }
    return consensus;
}

} // namespace dnastore
