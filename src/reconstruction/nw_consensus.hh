/**
 * @file
 * Needleman-Wunsch consensus reconstruction (paper Section VII-C): the
 * cluster's reads are combined into a multiple sequence alignment by
 * global alignment against an evolving column profile (the portable
 * counterpart of the SIMD partial-order aligner the paper builds on);
 * the consensus is the per-column majority vote, and if it exceeds the
 * expected strand length, the x most indel-heavy columns are dropped.
 */

#pragma once

#include "dna/align.hh"
#include "reconstruction/reconstructor.hh"

namespace dnastore
{

/** Tunables of the NW consensus reconstructor. */
struct NwConsensusConfig
{
    AlignScores scores{1, -1, -1};
    /**
     * Cap on the reads aligned per cluster (0 = no cap).  Alignment
     * cost grows linearly in reads, and beyond a few dozen reads the
     * consensus no longer improves; the cap keeps high-coverage runs
     * fast (cf. Table III, where NWA wins at coverage 50).
     */
    std::size_t max_reads = 32;
    /**
     * Polishing passes: each pass re-aligns every read against the
     * current consensus and re-votes per consensus position, washing
     * out the order-dependence of the incremental profile build.
     */
    std::size_t refine_passes = 0;
};

/** Profile-MSA Needleman-Wunsch consensus. */
class NwConsensusReconstructor : public Reconstructor
{
  public:
    explicit NwConsensusReconstructor(NwConsensusConfig config = {})
        : cfg(config)
    {
    }

    Strand reconstruct(const std::vector<Strand> &reads,
                       std::size_t expected_length) const override;

    std::string name() const override { return "needleman-wunsch"; }

  private:
    NwConsensusConfig cfg;
};

} // namespace dnastore

