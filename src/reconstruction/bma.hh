/**
 * @file
 * BMA-lookahead trace reconstruction (paper Section VII-A, following
 * Organick et al.) and its double-sided variant (Section VII-B).
 *
 * Single-sided BMA builds the consensus left to right with one pointer
 * per read; reads that disagree with the majority are re-aligned by a
 * small lookahead that guesses whether an insertion, deletion or
 * substitution occurred.  Misalignment propagates rightward, so later
 * indexes reconstruct less reliably.  Double-sided BMA runs the same
 * procedure from both ends to the middle, halving the propagation depth
 * and concentrating the residual errors mid-strand.
 */

#pragma once

#include "reconstruction/reconstructor.hh"

namespace dnastore
{

/** Tunables shared by the BMA variants. */
struct BmaConfig
{
    /**
     * Lookahead window (in bases) used to score the insertion /
     * deletion / substitution hypotheses when a read disagrees with the
     * majority: the read's upcoming bases are matched against the
     * likely next consensus characters.
     */
    std::size_t lookahead = 3;
};

/** Single-sided (left-to-right) BMA-lookahead. */
class BmaReconstructor : public Reconstructor
{
  public:
    explicit BmaReconstructor(BmaConfig config = {}) : cfg(config) {}

    Strand reconstruct(const std::vector<Strand> &reads,
                       std::size_t expected_length) const override;

    std::string name() const override { return "bma"; }

  private:
    BmaConfig cfg;
};

/** Double-sided BMA: forward for the left half, backward for the right. */
class DoubleSidedBmaReconstructor : public Reconstructor
{
  public:
    explicit DoubleSidedBmaReconstructor(BmaConfig config = {}) : cfg(config)
    {
    }

    Strand reconstruct(const std::vector<Strand> &reads,
                       std::size_t expected_length) const override;

    std::string name() const override { return "double-sided-bma"; }

  private:
    BmaConfig cfg;
};

namespace detail
{

/**
 * Core left-to-right BMA producing target_length consensus characters.
 * Exposed so the double-sided variant and the tests can drive it
 * directly.
 */
Strand bmaForward(const std::vector<Strand> &reads,
                  std::size_t target_length, const BmaConfig &cfg);

} // namespace detail

} // namespace dnastore

