/**
 * @file
 * Quality-aware archival with DNAMapper (paper Section IV-C).
 *
 * A synthetic 16-bit grayscale image is stored twice under harsh
 * conditions (low coverage, high error rate) that leave some
 * Reed-Solomon rows uncorrectable:
 *
 *  - Baseline layout: corrupted rows hit high and low pixel bytes alike;
 *  - DNAMapper: the significant (high) bytes of each pixel are mapped to
 *    reliable strand positions, so residual corruption lands in the
 *    low-order bytes and the image degrades gracefully.
 *
 * The example reports the mean absolute pixel error of both layouts.
 *
 * Usage:
 *   image_archive [--width=N] [--height=N] [--error-rate=P] [--coverage=N]
 */

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "reconstruction/bma.hh"
#include "simulator/iid_channel.hh"
#include "util/args.hh"
#include "util/random.hh"
#include "util/table.hh"

using namespace dnastore;

namespace
{

/** A synthetic image: smooth gradient plus concentric rings. */
std::vector<std::uint16_t>
makeImage(std::size_t width, std::size_t height)
{
    std::vector<std::uint16_t> pixels(width * height);
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            const double cx = static_cast<double>(x) -
                static_cast<double>(width) / 2.0;
            const double cy = static_cast<double>(y) -
                static_cast<double>(height) / 2.0;
            const double r = std::sqrt(cx * cx + cy * cy);
            const double v = 0.5 + 0.25 * std::sin(r / 3.0) +
                0.25 * static_cast<double>(x + y) /
                    static_cast<double>(width + height);
            pixels[y * width + x] =
                static_cast<std::uint16_t>(v * 65535.0);
        }
    }
    return pixels;
}

/** Pixels to bytes: big-endian, so even offsets are significant. */
std::vector<std::uint8_t>
toBytes(const std::vector<std::uint16_t> &pixels)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(pixels.size() * 2);
    for (std::uint16_t p : pixels) {
        bytes.push_back(static_cast<std::uint8_t>(p >> 8));
        bytes.push_back(static_cast<std::uint8_t>(p));
    }
    return bytes;
}

std::vector<std::uint16_t>
fromBytes(const std::vector<std::uint8_t> &bytes)
{
    std::vector<std::uint16_t> pixels(bytes.size() / 2);
    for (std::size_t i = 0; i < pixels.size(); ++i) {
        pixels[i] = static_cast<std::uint16_t>(
            (bytes[2 * i] << 8) | bytes[2 * i + 1]);
    }
    return pixels;
}

double
meanAbsoluteError(const std::vector<std::uint16_t> &a,
                  const std::vector<std::uint16_t> &b)
{
    double total = 0;
    const std::size_t n = std::min(a.size(), b.size());
    if (n == 0)
        return 65535.0;
    for (std::size_t i = 0; i < n; ++i)
        total += std::abs(static_cast<double>(a[i]) -
                          static_cast<double>(b[i]));
    total += 65535.0 * static_cast<double>(a.size() - n); // missing tail
    return total / static_cast<double>(a.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t width =
        static_cast<std::size_t>(args.getInt("width", 48));
    const std::size_t height =
        static_cast<std::size_t>(args.getInt("height", 48));
    const double error_rate = args.getDouble("error-rate", 0.07);
    const double coverage = args.getDouble("coverage", 8.0);

    const auto image = makeImage(width, height);
    const auto bytes = toBytes(image);

    // Priorities for the quality-aware run: the high byte of each pixel
    // is class 0 (important), the low byte class 1.  The control run
    // uses a single class for all data bytes, which protects the stream
    // header identically but spreads pixel bytes blindly — isolating
    // exactly the effect of quality-aware mapping.
    std::vector<std::uint32_t> quality_aware(bytes.size());
    for (std::size_t i = 0; i < quality_aware.size(); ++i)
        quality_aware[i] = static_cast<std::uint32_t>(i % 2);
    const std::vector<std::uint32_t> uniform(bytes.size(), 0);

    Table table;
    table.header({"mapping", "decode ok", "decoding stage", "failed rows",
                  "dropped clusters", "mean abs pixel error"});

    for (const bool aware : {false, true}) {
        MatrixCodecConfig codec_cfg;
        codec_cfg.payload_nt = 120;
        codec_cfg.index_nt = 12;
        codec_cfg.rs_n = 60;
        codec_cfg.rs_k = 48; // thin parity: harsh conditions WILL break rows
        codec_cfg.scheme = LayoutScheme::DNAMapper;
        codec_cfg.priorities = aware ? quality_aware : uniform;
        // Single-sided BMA reconstructs early strand positions reliably
        // and degrades toward the 3' end, so reliability rank == row
        // order (unlike the double-sided default, which favours edges).
        codec_cfg.row_reliability_order.resize(
            codec_cfg.bytesPerMolecule());
        for (std::size_t r = 0; r < codec_cfg.bytesPerMolecule(); ++r)
            codec_cfg.row_reliability_order[r] = r;

        MatrixEncoder encoder(codec_cfg);
        MatrixDecoder decoder(codec_cfg);
        IidChannel channel(
            IidChannelConfig::fromTotalErrorRate(error_rate));
        RashtchianClusterer clusterer(
            RashtchianClustererConfig::forErrorRate(
                error_rate, codec_cfg.strandLength()));
        // Single-sided BMA on purpose: its strong positional reliability
        // skew is exactly what DNAMapper exploits.
        BmaReconstructor reconstructor;

        PipelineConfig pipe_cfg;
        pipe_cfg.coverage =
            CoverageModel(coverage, CoverageDistribution::Poisson);
        pipe_cfg.seed = 2024;
        // Tiny clusters are mostly clustering junk; reconstructing them
        // yields strands with valid-looking but wrong indexes.
        pipe_cfg.min_cluster_size = 3;
        Pipeline pipeline(
            {&encoder, &decoder, &channel, &clusterer, &reconstructor},
            pipe_cfg);

        const auto result = pipeline.run(bytes);
        const auto recovered_pixels = fromBytes(result.report.data);
        const double error = meanAbsoluteError(image, recovered_pixels);

        table.row({aware ? "quality-aware" : "uniform",
                   result.report.ok ? "yes" : "no",
                   stageStatusName(result.status.decoding),
                   Table::fmt(result.report.failed_rows),
                   Table::fmt(result.dropped_clusters),
                   Table::fmt(error, 1)});
    }

    std::cout << "Storing a " << width << "x" << height
              << " 16-bit image at error rate " << error_rate
              << ", coverage " << coverage << ":\n\n"
              << table.text()
              << "\nDNAMapper keeps the significant bytes on reliable "
                 "strand positions,\nso the same wetlab damage costs far "
                 "less image quality.\n";
    return 0;
}
