/**
 * @file
 * Handling real sequencer output (paper Section VIII).
 *
 * The wetlab path of the toolkit replaces the simulation module with
 * FASTQ data from an actual sequencing run.  This example emulates that
 * flow end to end:
 *
 *   1. a file is encoded and "synthesized" with primers into molecules;
 *   2. the virtual wetlab channel plays the role of the sequencer and a
 *      FASTQ file is written to disk (both strand orientations, skewed
 *      coverage, complex noise);
 *   3. the FASTQ file is read back, reads are oriented and trimmed, and
 *      the retrieval pipeline recovers the original file.
 *
 * Point --fastq at a real Nanopore/Illumina FASTQ of your own pool to
 * run step 3 on actual wetlab data.
 *
 * Usage:
 *   wetlab_fastq [--fastq=path] [--coverage=N] [--base-error=P]
 */

#include <iostream>
#include <string>
#include <vector>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "core/pool.hh"
#include "dna/fastx.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/sequencing_run.hh"
#include "simulator/virtual_wetlab.hh"
#include "util/args.hh"
#include "wetlab/preprocess.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string fastq_path =
        args.get("fastq", "/tmp/dnastore_wetlab_run.fastq");
    const double coverage = args.getDouble("coverage", 25.0);
    const double base_error = args.getDouble("base-error", 0.04);

    Rng rng(77);
    const PrimerLibrary library = PrimerLibrary::design(rng, 2);
    const PrimerPair key = library.pairFor(0);

    const std::string payload_text =
        "Section VIII: fastq in, file out. Reads arrive in both "
        "orientations and must be flipped and trimmed before clustering.";
    const std::vector<std::uint8_t> data(payload_text.begin(),
                                         payload_text.end());

    MatrixCodecConfig codec_cfg;
    codec_cfg.payload_nt = 120;
    codec_cfg.index_nt = 12;
    codec_cfg.rs_n = 60;
    codec_cfg.rs_k = 44;
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);

    // --- Steps 1+2: synthesize and "sequence" into a FASTQ file. ---
    DnaPool pool;
    pool.store(key, encoder.encode(data));

    VirtualWetlabConfig channel_cfg;
    channel_cfg.base_error_rate = base_error;
    VirtualWetlabChannel channel(channel_cfg);
    CoverageModel cov(coverage, CoverageDistribution::LogNormalSkew);
    auto run = simulateSequencing(pool.all(), channel, cov, rng);
    for (std::size_t i = 0; i < run.reads.size(); i += 2)
        run.reads[i] = strand::reverseComplement(run.reads[i]);
    writeFastqFile(fastq_path, readsToFastq(run.reads, "nanopore"));
    std::cout << "wrote " << run.reads.size() << " reads to " << fastq_path
              << "\n";

    // --- Step 3: from FASTQ back to the file. ---
    const auto records = readFastqFile(fastq_path);
    std::cout << "parsed " << records.size() << " FASTQ records\n";

    WetlabPreprocessConfig pre_cfg;
    pre_cfg.primer_max_edit = 6;
    const PreprocessResult pre = preprocessFastq(records, key, pre_cfg);
    std::cout << "preprocessing kept " << pre.reads.size() << " reads ("
              << pre.flipped << " flipped, " << pre.rejected
              << " rejected)\n";

    RashtchianClusterer clusterer(
        RashtchianClustererConfig::forErrorRate(
            2.0 * base_error, codec_cfg.strandLength()));
    NwConsensusReconstructor reconstructor;
    PipelineConfig pipe_cfg;
    Pipeline pipeline(
        {&encoder, &decoder, &channel, &clusterer, &reconstructor},
        pipe_cfg);
    const auto result = pipeline.runFromReads(
        pre.reads, codec_cfg.strandLength(),
        encoder.unitsForSize(data.size()));

    const std::string recovered(result.report.data.begin(),
                                result.report.data.end());
    std::cout << "clusters: " << result.clusters << " ("
              << result.dropped_clusters << " dropped, "
              << result.malformed_reads << " malformed reads)"
              << ", RS rows failed: " << result.report.failed_rows
              << "\ndecode ok: " << (result.report.ok ? "yes" : "NO")
              << " (decoding stage "
              << stageStatusName(result.status.decoding) << ")"
              << "\nrecovered: " << recovered << "\n";

    if (!result.report.ok || recovered != payload_text) {
        std::cerr << "wetlab round trip FAILED\n";
        return 1;
    }
    std::cout << "wetlab round trip OK\n";
    return 0;
}
