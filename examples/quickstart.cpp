/**
 * @file
 * Quickstart: store a message in simulated DNA and get it back.
 *
 * This walks the entire pipeline of the toolkit (paper Fig. 1) in its
 * default configuration:
 *
 *   encode -> simulate wetlab -> cluster -> reconstruct -> decode
 *
 * Usage:
 *   quickstart [--message="text"] [--coverage=N] [--error-rate=P]
 *              [--metrics-json=PATH] [--trace-json=PATH]
 *
 * --metrics-json writes the machine-readable run report (schema
 * dnastore.run_report); --trace-json writes a Chrome trace_event file
 * for chrome://tracing or Perfetto.  See docs/OBSERVABILITY.md.
 */

#include <iostream>
#include <string>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "core/run_report.hh"
#include "obs/span.hh"
#include "obs/trace_export.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "util/args.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string message = args.get(
        "message",
        "DNA data storage: write bytes as A/C/G/T, read them back with "
        "sequencing, fix the noise with clustering, consensus and "
        "Reed-Solomon codes.");
    const double coverage = args.getDouble("coverage", 10.0);
    const double error_rate = args.getDouble("error-rate", 0.06);

    // 1. Configure the codec: 120-nt payloads (30 bytes per molecule),
    //    RS(60, 40) across molecules, 12-nt index field.
    MatrixCodecConfig codec_cfg;
    codec_cfg.payload_nt = 120;
    codec_cfg.index_nt = 12;
    codec_cfg.rs_n = 60;
    codec_cfg.rs_k = 40;
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);

    // 2. Pick a wetlab model: the classic i.i.d. IDS channel here.
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));

    // 3. Clustering and trace reconstruction modules.
    RashtchianClusterer clusterer(
        RashtchianClustererConfig::forErrorRate(
            error_rate, codec_cfg.strandLength()));
    NwConsensusReconstructor reconstructor;

    // 4. Wire the pipeline.
    PipelineConfig pipe_cfg;
    pipe_cfg.coverage =
        CoverageModel(coverage, CoverageDistribution::Poisson);
    Pipeline pipeline(
        {&encoder, &decoder, &channel, &clusterer, &reconstructor},
        pipe_cfg);

    // 5. Store and retrieve — optionally with the observability layer
    //    capturing a span trace and a metrics report of the run.
    const std::string metrics_path = args.get("metrics-json", "");
    const std::string trace_path = args.get("trace-json", "");
    obs::TraceSink trace_sink;
    if (!trace_path.empty())
        obs::installTraceSink(&trace_sink);

    const std::vector<std::uint8_t> data(message.begin(), message.end());
    const PipelineResult result = pipeline.run(data);

    if (!trace_path.empty()) {
        obs::installTraceSink(nullptr);
        if (!obs::writeChromeTrace(trace_sink, trace_path)) {
            std::cerr << "could not write " << trace_path << "\n";
            return 1;
        }
        std::cout << "trace written       : " << trace_path << " ("
                  << trace_sink.size() << " events)\n";
    }
    if (!metrics_path.empty()) {
        RunInfo info;
        info["tool"] = "quickstart";
        info["channel"] = channel.name();
        info["clusterer"] = clusterer.name();
        info["reconstructor"] = reconstructor.name();
        info["coverage"] = std::to_string(coverage);
        info["error_rate"] = std::to_string(error_rate);
        info["input_bytes"] = std::to_string(data.size());
        if (!writeRunReport(metrics_path, result, info)) {
            std::cerr << "could not write " << metrics_path << "\n";
            return 1;
        }
        std::cout << "metrics written     : " << metrics_path << "\n";
    }

    std::cout << "encoded strands     : " << result.encoded_strands << "\n"
              << "sequenced reads     : " << result.reads << "\n"
              << "clusters found      : " << result.clusters << " ("
              << result.dropped_clusters << " below min size)\n"
              << "clustering accuracy : " << result.clustering_accuracy
              << "\n"
              << "perfect consensus   : " << result.perfect_reconstructions
              << "\n"
              << "RS rows failed      : " << result.report.failed_rows
              << "\n"
              << "decoding stage      : "
              << stageStatusName(result.status.decoding) << "\n"
              << "decode ok           : "
              << (result.report.ok ? "yes" : "NO") << "\n";

    const std::string recovered(result.report.data.begin(),
                                result.report.data.end());
    std::cout << "recovered message   : " << recovered << "\n";

    if (!result.report.ok || recovered != message) {
        std::cerr << "round trip FAILED\n";
        return 1;
    }
    std::cout << "round trip OK\n";
    return 0;
}
