/**
 * @file
 * Random access in a shared DNA pool (paper Sections II-E/F).
 *
 * Three files are stored in one test tube, each tagged with its own PCR
 * primer pair — the pool behaves as a key-value store whose keys are
 * primer pairs.  One file is then retrieved: PCR amplifies only its
 * molecules, the amplified product is sequenced through a noisy
 * channel, reads are preprocessed (orientation + primer trimming) and
 * fed to the retrieval half of the pipeline.
 *
 * Usage:
 *   random_access [--fetch=0|1|2] [--error-rate=P] [--coverage=N]
 */

#include <iostream>
#include <string>
#include <vector>

#include "codec/matrix_codec.hh"
#include "core/pipeline.hh"
#include "core/pool.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/iid_channel.hh"
#include "simulator/sequencing_run.hh"
#include "util/args.hh"
#include "wetlab/preprocess.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t fetch =
        static_cast<std::size_t>(args.getInt("fetch", 1));
    const double error_rate = args.getDouble("error-rate", 0.04);
    const double coverage = args.getDouble("coverage", 12.0);
    if (fetch > 2) {
        std::cerr << "--fetch must be 0, 1 or 2\n";
        return 1;
    }

    Rng rng(4242);

    // Design a primer library: two 20-nt primers per file, mutually
    // separated in Hamming distance so PCR stays specific.
    const PrimerLibrary library = PrimerLibrary::design(rng, 6);

    const std::vector<std::string> contents = {
        "file-0: climate sensor archive, 2031-01",
        "file-1: the quick brown fox jumps over the lazy dog, forever "
        "archived in nucleotides",
        "file-2: backup of the backup of the backup",
    };

    MatrixCodecConfig codec_cfg;
    codec_cfg.payload_nt = 120;
    codec_cfg.index_nt = 12;
    codec_cfg.rs_n = 60;
    codec_cfg.rs_k = 40;
    MatrixEncoder encoder(codec_cfg);
    MatrixDecoder decoder(codec_cfg);

    // Store all three files into one pool.
    DnaPool pool;
    for (std::size_t f = 0; f < contents.size(); ++f) {
        const std::vector<std::uint8_t> data(contents[f].begin(),
                                             contents[f].end());
        pool.store(library.pairFor(f), encoder.encode(data));
    }
    std::cout << "pool holds " << pool.size()
              << " molecules from 3 files\n";

    // PCR random access: amplify only the requested file's molecules.
    const PrimerPair key = library.pairFor(fetch);
    PcrConfig pcr_cfg;
    pcr_cfg.off_target_rate = 0.002; // a touch of contamination
    const PcrProduct product = amplify(pool, key, rng, pcr_cfg);
    std::cout << "PCR amplified " << product.on_target << " on-target and "
              << product.off_target << " off-target molecules\n";

    // Sequencing: noisy reads, half of them reverse-oriented.
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(error_rate));
    CoverageModel cov(coverage, CoverageDistribution::Poisson);
    auto run = simulateSequencing(product.molecules, channel, cov, rng);
    for (std::size_t i = 0; i < run.reads.size(); i += 2)
        run.reads[i] = strand::reverseComplement(run.reads[i]);
    std::cout << "sequencer produced " << run.reads.size() << " reads\n";

    // Wetlab preprocessing: orientation fix + primer trimming.
    WetlabPreprocessConfig pre_cfg;
    pre_cfg.primer_max_edit = 5;
    const PreprocessResult pre = preprocessReads(run.reads, key, pre_cfg);
    std::cout << "preprocessing kept " << pre.reads.size() << " reads ("
              << pre.flipped << " flipped, " << pre.rejected
              << " rejected)\n";

    // Retrieval half of the pipeline: cluster, reconstruct, decode.
    RashtchianClusterer clusterer(
        RashtchianClustererConfig::forErrorRate(
            error_rate, codec_cfg.strandLength()));
    NwConsensusReconstructor reconstructor;
    PipelineConfig pipe_cfg;
    Pipeline pipeline(
        {&encoder, &decoder, &channel, &clusterer, &reconstructor},
        pipe_cfg);
    const auto result = pipeline.runFromReads(
        pre.reads, codec_cfg.strandLength(),
        encoder.unitsForSize(contents[fetch].size()));

    const std::string recovered(result.report.data.begin(),
                                result.report.data.end());
    std::cout << "decode ok: " << (result.report.ok ? "yes" : "NO")
              << " (decoding stage "
              << stageStatusName(result.status.decoding) << ", "
              << result.dropped_clusters << " clusters dropped)"
              << "\nrecovered: " << recovered << "\n";

    if (!result.report.ok || recovered != contents[fetch]) {
        std::cerr << "random access FAILED\n";
        return 1;
    }
    std::cout << "random access OK: retrieved file " << fetch
              << " without touching the others\n";
    return 0;
}
