/**
 * @file
 * Random access in a shared DNA pool via the archive layer (paper
 * Sections II-E/F).
 *
 * Three files are stored into ONE archive — one mixed test tube of
 * primer-tagged molecules plus a CRC-guarded manifest.  Every file
 * shard carries its own PCR primer pair, so the pool behaves as a
 * key-value store whose keys are primer pairs.  One file is then
 * retrieved by name: the archive PCR-selects its shards, sequences the
 * amplified product through a noisy channel, preprocesses the reads
 * (orientation + primer trimming) and runs the retrieval half of the
 * pipeline per shard.
 *
 * Usage:
 *   random_access [--fetch=0|1|2] [--error-rate=P] [--coverage=N]
 *                 [--dir=PATH]
 */

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "archive/archive.hh"
#include "util/args.hh"

using namespace dnastore;

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t fetch =
        static_cast<std::size_t>(args.getInt("fetch", 1));
    if (fetch > 2) {
        std::cerr << "--fetch must be 0, 1 or 2\n";
        return 1;
    }

    const std::vector<std::string> names = {"climate", "fox", "backup"};
    const std::vector<std::string> contents = {
        "file-0: climate sensor archive, 2031-01",
        "file-1: the quick brown fox jumps over the lazy dog, forever "
        "archived in nucleotides",
        "file-2: backup of the backup of the backup",
    };

    // One archive = one test tube.  Small shards so even these short
    // files demonstrate per-shard primer addressing.
    archive::ArchiveParams params;
    params.codec.payload_nt = 120;
    params.codec.index_nt = 12;
    params.codec.rs_n = 60;
    params.codec.rs_k = 40;
    params.max_shard_bytes = 64;

    const std::string dir =
        args.get("dir", "/tmp/dnastore_random_access_example");
    std::error_code ec;
    std::filesystem::remove_all(dir, ec); // fresh demo archive each run
    auto opened = archive::Archive::create(dir, params);
    if (!opened.ok()) {
        std::cerr << "cannot create archive: " << opened.error << "\n";
        return 1;
    }
    archive::Archive &tube = *opened.archive;

    for (std::size_t f = 0; f < contents.size(); ++f) {
        const std::vector<std::uint8_t> data(contents[f].begin(),
                                             contents[f].end());
        const auto put = tube.put(names[f], data);
        if (!put.ok()) {
            std::cerr << "put failed: " << put.error << "\n";
            return 1;
        }
        std::cout << "stored '" << names[f] << "' as " << put.shards
                  << " shard(s), " << put.strands << " molecules\n";
    }
    std::cout << "pool holds " << tube.poolSize()
              << " molecules from 3 files (plus the DNA manifest)\n";

    // Random access by name: PCR + sequencing + per-shard decode.
    archive::RetrievalConfig retrieval;
    retrieval.error_rate = args.getDouble("error-rate", 0.04);
    retrieval.coverage = args.getDouble("coverage", 12.0);
    retrieval.pcr_off_target = 0.002; // a touch of contamination
    const auto result = tube.get(names[fetch], retrieval);
    for (const auto &shard : result.shards)
        std::cout << "shard pair " << shard.pair_id << ": "
                  << (shard.ok ? "ok" : "FAILED") << " (" << shard.reads
                  << " reads, " << shard.clusters << " clusters, decoding "
                  << stageStatusName(shard.stages.decoding) << ")\n";

    const std::string recovered(result.data.begin(), result.data.end());
    std::cout << "recovered: " << recovered << "\n";
    if (!result.ok() || recovered != contents[fetch]) {
        std::cerr << "random access FAILED: " << result.error << "\n";
        return 1;
    }

    // Bonus: the archive is self-describing — decode the manifest copy
    // stored in DNA under the reserved primer pair 0.
    const auto manifest = tube.decodeManifestFromDna(retrieval);
    if (manifest.manifest) {
        std::cout << "DNA-decoded manifest lists "
                  << manifest.manifest->objects.size() << " objects\n";
    } else {
        std::cerr << "DNA manifest decode FAILED: " << manifest.error
                  << "\n";
        return 1;
    }

    std::cout << "random access OK: retrieved '" << names[fetch]
              << "' without touching the others\n";
    return 0;
}
