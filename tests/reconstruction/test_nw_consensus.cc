/**
 * @file
 * Tests for the Needleman-Wunsch profile-MSA consensus reconstructor.
 */

#include <gtest/gtest.h>

#include "reconstruction/bma.hh"
#include "reconstruction/nw_consensus.hh"
#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"

namespace dnastore
{
namespace
{

TEST(NwConsensus, CleanReadsReproduceExactly)
{
    Rng rng(1);
    const Strand s = strand::random(rng, 120);
    const std::vector<Strand> reads(6, s);
    NwConsensusReconstructor nw;
    EXPECT_EQ(nw.reconstruct(reads, 120), s);
}

TEST(NwConsensus, OutputLengthMatchesExpected)
{
    Rng rng(2);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.12));
    NwConsensusReconstructor nw;
    for (int trial = 0; trial < 20; ++trial) {
        const Strand s = strand::random(rng, 90);
        std::vector<Strand> reads;
        for (int c = 0; c < 8; ++c)
            reads.push_back(channel.transmit(s, rng));
        EXPECT_EQ(nw.reconstruct(reads, 90).size(), 90u);
    }
}

TEST(NwConsensus, EmptyClusterFallsBack)
{
    NwConsensusReconstructor nw;
    const Strand out = nw.reconstruct({}, 10);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_TRUE(strand::isValid(out));
}

TEST(NwConsensus, ClusterOfEmptyReadsFallsBack)
{
    NwConsensusReconstructor nw;
    const Strand out = nw.reconstruct({"", ""}, 10);
    EXPECT_EQ(out.size(), 10u);
}

TEST(NwConsensus, HighAccuracyAtModerateError)
{
    Rng rng(3);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    NwConsensusReconstructor nw;
    std::size_t perfect = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        const Strand s = strand::random(rng, 120);
        std::vector<Strand> reads;
        for (int c = 0; c < 10; ++c)
            reads.push_back(channel.transmit(s, rng));
        perfect += nw.reconstruct(reads, 120) == s;
    }
    EXPECT_GT(perfect, 280); // ~ matches Fig. 6's "NW is best" claim
}

TEST(NwConsensus, OutperformsBmaAtModerateError)
{
    Rng rng(4);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    NwConsensusReconstructor nw;
    BmaReconstructor bma;
    std::vector<Strand> originals, rec_nw, rec_bma;
    for (int t = 0; t < 250; ++t) {
        const Strand s = strand::random(rng, 120);
        originals.push_back(s);
        std::vector<Strand> reads;
        for (int c = 0; c < 10; ++c)
            reads.push_back(channel.transmit(s, rng));
        rec_nw.push_back(nw.reconstruct(reads, 120));
        rec_bma.push_back(bma.reconstruct(reads, 120));
    }
    const auto p_nw = measureReconstruction(originals, rec_nw);
    const auto p_bma = measureReconstruction(originals, rec_bma);
    EXPECT_GT(p_nw.perfect_strands, p_bma.perfect_strands);
}

TEST(NwConsensus, ReadCapKeepsQuality)
{
    Rng rng(5);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    NwConsensusConfig cfg;
    cfg.max_reads = 12;
    NwConsensusReconstructor capped(cfg);
    std::size_t perfect = 0;
    for (int t = 0; t < 100; ++t) {
        const Strand s = strand::random(rng, 100);
        std::vector<Strand> reads;
        for (int c = 0; c < 50; ++c) // coverage 50, cap at 12
            reads.push_back(channel.transmit(s, rng));
        perfect += capped.reconstruct(reads, 100) == s;
    }
    EXPECT_GT(perfect, 90u);
}

TEST(NwConsensus, RefinePassesDoNotHurt)
{
    Rng rng(7);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.09));
    NwConsensusConfig plain_cfg;
    plain_cfg.refine_passes = 0;
    NwConsensusConfig refined_cfg;
    refined_cfg.refine_passes = 2;
    NwConsensusReconstructor plain(plain_cfg);
    NwConsensusReconstructor refined(refined_cfg);
    std::size_t plain_perfect = 0, refined_perfect = 0;
    for (int t = 0; t < 120; ++t) {
        const Strand s = strand::random(rng, 100);
        std::vector<Strand> reads;
        for (int c = 0; c < 8; ++c)
            reads.push_back(channel.transmit(s, rng));
        plain_perfect += plain.reconstruct(reads, 100) == s;
        refined_perfect += refined.reconstruct(reads, 100) == s;
    }
    EXPECT_GE(refined_perfect + 5, plain_perfect);
}

TEST(NwConsensus, SingleNoisyReadIsBestEffort)
{
    Rng rng(6);
    const Strand s = strand::random(rng, 60);
    NwConsensusReconstructor nw;
    const Strand out = nw.reconstruct({s}, 60);
    EXPECT_EQ(out, s);
}

} // namespace
} // namespace dnastore
