/**
 * @file
 * Tests for BMA-lookahead and double-sided BMA trace reconstruction.
 */

#include <gtest/gtest.h>

#include "reconstruction/bma.hh"
#include "simulator/error_profile.hh"
#include "simulator/iid_channel.hh"

namespace dnastore
{
namespace
{

std::vector<std::vector<Strand>>
makeClusters(Rng &rng, const Channel &channel, std::size_t count,
             std::size_t coverage, std::size_t length,
             std::vector<Strand> &originals)
{
    std::vector<std::vector<Strand>> clusters;
    for (std::size_t i = 0; i < count; ++i) {
        const Strand s = strand::random(rng, length);
        originals.push_back(s);
        std::vector<Strand> reads;
        for (std::size_t c = 0; c < coverage; ++c)
            reads.push_back(channel.transmit(s, rng));
        clusters.push_back(std::move(reads));
    }
    return clusters;
}

TEST(Bma, CleanReadsReproduceExactly)
{
    Rng rng(1);
    const Strand s = strand::random(rng, 100);
    const std::vector<Strand> reads(7, s);
    BmaReconstructor bma;
    EXPECT_EQ(bma.reconstruct(reads, 100), s);
    DoubleSidedBmaReconstructor dbma;
    EXPECT_EQ(dbma.reconstruct(reads, 100), s);
}

TEST(Bma, OutputLengthAlwaysMatchesExpected)
{
    Rng rng(2);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.1));
    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    for (int trial = 0; trial < 20; ++trial) {
        const Strand s = strand::random(rng, 80);
        std::vector<Strand> reads;
        for (int c = 0; c < 6; ++c)
            reads.push_back(channel.transmit(s, rng));
        EXPECT_EQ(bma.reconstruct(reads, 80).size(), 80u);
        EXPECT_EQ(dbma.reconstruct(reads, 80).size(), 80u);
    }
}

TEST(Bma, SingleCleanReadCopies)
{
    BmaReconstructor bma;
    EXPECT_EQ(bma.reconstruct({"ACGTACGT"}, 8), "ACGTACGT");
}

TEST(Bma, MajorityOverridesSingleSubstitution)
{
    BmaReconstructor bma;
    const std::vector<Strand> reads = {"ACGTACGT", "ACGAACGT", "ACGTACGT"};
    EXPECT_EQ(bma.reconstruct(reads, 8), "ACGTACGT");
}

TEST(Bma, RealignsAfterDeletion)
{
    BmaReconstructor bma;
    // Middle read lost index 2 ('G').
    const std::vector<Strand> reads = {"ACGTACGTAA", "ACTACGTAA",
                                       "ACGTACGTAA"};
    EXPECT_EQ(bma.reconstruct(reads, 10), "ACGTACGTAA");
}

TEST(Bma, RealignsAfterInsertion)
{
    BmaReconstructor bma;
    const std::vector<Strand> reads = {"ACGTACGTAA", "ACTGTACGTAA",
                                       "ACGTACGTAA"};
    EXPECT_EQ(bma.reconstruct(reads, 10), "ACGTACGTAA");
}

TEST(Bma, EmptyClusterFillsDeterministically)
{
    BmaReconstructor bma;
    const Strand out = bma.reconstruct({}, 12);
    EXPECT_EQ(out.size(), 12u);
    EXPECT_TRUE(strand::isValid(out));
}

TEST(Bma, HighAccuracyAtLowError)
{
    Rng rng(3);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.03));
    std::vector<Strand> originals;
    const auto clusters =
        makeClusters(rng, channel, 300, 10, 120, originals);
    BmaReconstructor bma;
    std::vector<Strand> reconstructed;
    for (const auto &cluster : clusters)
        reconstructed.push_back(bma.reconstruct(cluster, 120));
    const auto profile = measureReconstruction(originals, reconstructed);
    EXPECT_GT(profile.perfect_strands, 280u);
}

TEST(Bma, ErrorGrowsAlongTheStrand)
{
    // Paper Section VII-A: misalignment propagates rightward.
    Rng rng(4);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.09));
    std::vector<Strand> originals;
    const auto clusters =
        makeClusters(rng, channel, 400, 10, 120, originals);
    BmaReconstructor bma;
    std::vector<Strand> reconstructed;
    for (const auto &cluster : clusters)
        reconstructed.push_back(bma.reconstruct(cluster, 120));
    const auto profile = measureReconstruction(originals, reconstructed);
    double head = 0, tail = 0;
    for (std::size_t i = 0; i < 30; ++i) {
        head += profile.error_rate[i];
        tail += profile.error_rate[90 + i];
    }
    EXPECT_GT(tail, head * 2.0);
}

TEST(DoubleSidedBma, ConcentratesErrorsInTheMiddle)
{
    // Paper Section VII-B / Fig. 6: DBMA halves the propagation depth
    // and peaks mid-strand.
    Rng rng(5);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.09));
    std::vector<Strand> originals;
    const auto clusters =
        makeClusters(rng, channel, 400, 10, 120, originals);
    DoubleSidedBmaReconstructor dbma;
    std::vector<Strand> reconstructed;
    for (const auto &cluster : clusters)
        reconstructed.push_back(dbma.reconstruct(cluster, 120));
    const auto profile = measureReconstruction(originals, reconstructed);
    double edges = 0, middle = 0;
    for (std::size_t i = 0; i < 20; ++i) {
        edges += profile.error_rate[i] + profile.error_rate[119 - i];
        middle += profile.error_rate[50 + i];
    }
    EXPECT_GT(middle, edges);
}

TEST(DoubleSidedBma, BeatsSingleSidedOnMeanError)
{
    Rng rng(6);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.09));
    std::vector<Strand> originals;
    const auto clusters =
        makeClusters(rng, channel, 300, 10, 120, originals);
    BmaReconstructor bma;
    DoubleSidedBmaReconstructor dbma;
    std::vector<Strand> rec_bma, rec_dbma;
    for (const auto &cluster : clusters) {
        rec_bma.push_back(bma.reconstruct(cluster, 120));
        rec_dbma.push_back(dbma.reconstruct(cluster, 120));
    }
    const auto p_bma = measureReconstruction(originals, rec_bma);
    const auto p_dbma = measureReconstruction(originals, rec_dbma);
    EXPECT_LT(p_dbma.mean_error_rate, p_bma.mean_error_rate);
}

TEST(DoubleSidedBma, OddLengthSplitsCorrectly)
{
    Rng rng(7);
    const Strand s = strand::random(rng, 99);
    const std::vector<Strand> reads(5, s);
    DoubleSidedBmaReconstructor dbma;
    EXPECT_EQ(dbma.reconstruct(reads, 99), s);
}

TEST(ReconstructAll, ParallelMatchesSequential)
{
    Rng rng(8);
    IidChannel channel(IidChannelConfig::fromTotalErrorRate(0.06));
    std::vector<Strand> originals;
    const auto clusters =
        makeClusters(rng, channel, 60, 8, 100, originals);
    BmaReconstructor bma;
    const auto seq = reconstructAll(bma, clusters, 100, 1);
    const auto par = reconstructAll(bma, clusters, 100, 4);
    EXPECT_EQ(seq, par);
}

} // namespace
} // namespace dnastore
