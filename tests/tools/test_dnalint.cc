/**
 * @file
 * Unit tests for the dnalint rule engine (tools/dnalint), driven by
 * fixture sources so every rule's positive and negative cases are
 * pinned down without touching the real tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dnalint/dnalint.hh"

namespace
{

using dnalint::AllRules;
using dnalint::checkFile;
using dnalint::checkProject;
using dnalint::Finding;
using dnalint::lex;
using dnalint::LintContext;
using dnalint::Token;
using dnalint::TokenKind;

std::vector<std::string>
tokenTexts(const std::string &src)
{
    std::vector<std::string> texts;
    for (const Token &tok : lex(src))
        texts.push_back(tok.text);
    return texts;
}

bool
hasRule(const std::vector<Finding> &findings, dnalint::Rule rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [rule](const Finding &f) { return f.rule == rule; });
}

LintContext
emptyContext()
{
    LintContext ctx;
    ctx.selfcontain_harness_wired = true;
    return ctx;
}

// ---------------------------------------------------------------- lexer

TEST(DnalintLexer, StripsCommentsAndStrings)
{
    const std::string src = R"cpp(
        int a; // comment with throw and mt19937
        /* block comment
           throw std::mt19937 */
        const char *s = "throw mt19937";
        char c = 't';
        int b;
    )cpp";
    const auto texts = tokenTexts(src);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "throw"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "mt19937"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "int"), 2);
}

TEST(DnalintLexer, StripsRawStrings)
{
    const std::string src =
        "auto s = R\"(throw inside raw string)\"; int after;";
    const auto texts = tokenTexts(src);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "throw"), 0);
    EXPECT_EQ(std::count(texts.begin(), texts.end(), "after"), 1);
}

TEST(DnalintLexer, FoldsPreprocessorDirectives)
{
    const std::string src = "#include \"dna/strand.hh\"\nint x;\n";
    const auto tokens = lex(src);
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, TokenKind::Directive);
    EXPECT_EQ(tokens[0].text, "#include \"dna/strand.hh\"");
    EXPECT_EQ(tokens[0].line, 1u);
}

TEST(DnalintLexer, TracksLineNumbers)
{
    const auto tokens = lex("int a;\n\nint b;\n");
    ASSERT_EQ(tokens.size(), 6u);
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[3].line, 3u);
}

// ------------------------------------------------------- R1 nodiscard

TEST(DnalintR1, FlagsUnannotatedFallibleApi)
{
    const std::string src = R"cpp(
        #pragma once
        namespace x {
        std::optional<int> tryParse(const std::string &s);
        }
    )cpp";
    const auto findings =
        checkFile("src/x/y.hh", src, emptyContext(), AllRules);
    ASSERT_TRUE(hasRule(findings, dnalint::R1_Nodiscard));
    EXPECT_NE(findings[0].message.find("tryParse"), std::string::npos);
}

TEST(DnalintR1, AcceptsAnnotatedApi)
{
    const std::string src = R"cpp(
        #pragma once
        [[nodiscard]] std::optional<int> tryParse(const std::string &s);
        [[nodiscard]] std::vector<std::uint8_t> decodeRow(int r);
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R1_Nodiscard));
}

TEST(DnalintR1, NestedTemplateReturnTypeIsADeclaration)
{
    const std::string src = R"cpp(
        #pragma once
        std::optional<std::vector<std::uint8_t>> tryToBytes(const S &s);
    )cpp";
    EXPECT_TRUE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                        dnalint::R1_Nodiscard));
}

TEST(DnalintR1, IgnoresVoidReturnsAndCallSites)
{
    const std::string src = R"cpp(
        #pragma once
        void encodeInto(std::vector<int> &out);
        inline int consume(const S &s)
        {
            return helper::tryParse(s).value_or(0);
        }
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", src, emptyContext()),
                         dnalint::R1_Nodiscard));
}

TEST(DnalintR1, IgnoresNonMatchingNamesAndNonSrcHeaders)
{
    const std::string plain = R"cpp(
        #pragma once
        int size() const;
        double total() const;
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", plain, emptyContext()),
                         dnalint::R1_Nodiscard));

    const std::string fallible = R"cpp(
        #pragma once
        std::optional<int> tryParse(const std::string &s);
    )cpp";
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.hh", fallible, emptyContext()),
                         dnalint::R1_Nodiscard));
}

// --------------------------------------------------- R2 throw boundary

TEST(DnalintR2, FlagsThrowOutsideWhitelist)
{
    const std::string src = R"cpp(
        void f() { throw std::runtime_error("boom"); }
    )cpp";
    const auto findings = checkFile("src/x/y.cc", src, emptyContext());
    ASSERT_TRUE(hasRule(findings, dnalint::R2_ThrowBoundary));
    EXPECT_EQ(findings[0].line, 2u);
}

TEST(DnalintR2, AcceptsWhitelistedFileAndNonSrcTrees)
{
    const std::string src = "void f() { throw 1; }\n";
    LintContext ctx = emptyContext();
    ctx.throw_allowlist.insert("src/x/y.cc");
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, ctx),
                         dnalint::R2_ThrowBoundary));
    // R2 scopes to src/: test code may throw freely.
    EXPECT_FALSE(hasRule(checkFile("tests/x/y.cc", src, emptyContext()),
                         dnalint::R2_ThrowBoundary));
}

TEST(DnalintR2, ThrowInCommentDoesNotCount)
{
    const std::string src = "// throws std::invalid_argument\nint x;\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", src, emptyContext()),
                         dnalint::R2_ThrowBoundary));
}

TEST(DnalintR2, StaleWhitelistEntriesAreFlagged)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/a.cc", "src/b.cc"};
    ctx.throw_allowlist = {"src/a.cc", "src/b.cc", "src/gone.cc"};
    // Only a.cc still throws.
    const auto findings = checkProject(ctx, {"src/a.cc"});
    // b.cc is stale (no throw), gone.cc is stale (missing).
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R2_ThrowBoundary;
                            }),
              2);
}

// ------------------------------------------------ R3 self-containment

TEST(DnalintR3, UnwiredHarnessIsFlagged)
{
    LintContext ctx;
    ctx.selfcontain_harness_wired = false;
    EXPECT_TRUE(hasRule(checkProject(ctx, {}), dnalint::R3_SelfContainment));
    ctx.selfcontain_harness_wired = true;
    EXPECT_FALSE(
        hasRule(checkProject(ctx, {}), dnalint::R3_SelfContainment));
}

// ------------------------------------------------- R4 include hygiene

TEST(DnalintR4, FlagsRelativeProjectInclude)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/ecc/gf256.hh", "src/ecc/gf256.cc"};
    const std::string src = "#include \"gf256.hh\"\n";
    const auto findings = checkFile("src/ecc/gf256.cc", src, ctx);
    ASSERT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    EXPECT_NE(findings[0].message.find("ecc/gf256.hh"), std::string::npos);
}

TEST(DnalintR4, AcceptsFullPathAndTopTreeIncludes)
{
    LintContext ctx = emptyContext();
    ctx.project_files = {"src/ecc/gf256.hh", "tools/dnalint/dnalint.hh"};
    EXPECT_FALSE(hasRule(
        checkFile("src/ecc/gf256.cc", "#include \"ecc/gf256.hh\"\n", ctx),
        dnalint::R4_IncludeHygiene));
    // Non-src trees may also include from their own top directory.
    EXPECT_FALSE(hasRule(checkFile("tools/dnalint/main.cc",
                                   "#include \"dnalint/dnalint.hh\"\n", ctx),
                         dnalint::R4_IncludeHygiene));
    // tools/ is a global -I root like src/: resolvable from any tree.
    EXPECT_FALSE(hasRule(checkFile("tests/tools/test_dnalint.cc",
                                   "#include \"dnalint/dnalint.hh\"\n", ctx),
                         dnalint::R4_IncludeHygiene));
}

TEST(DnalintR4, FlagsUnresolvableQuotedInclude)
{
    const auto findings = checkFile(
        "src/x/y.cc", "#include \"no/such/file.hh\"\n", emptyContext());
    EXPECT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    // Angle includes are system headers: out of scope.
    EXPECT_FALSE(hasRule(
        checkFile("src/x/y.cc", "#include <vector>\n", emptyContext()),
        dnalint::R4_IncludeHygiene));
}

TEST(DnalintR4, HeadersMustOpenWithPragmaOnce)
{
    const std::string guarded = R"cpp(
        #ifndef X_HH
        #define X_HH
        int x;
        #endif // X_HH
    )cpp";
    const auto findings = checkFile("src/x/y.hh", guarded, emptyContext());
    ASSERT_TRUE(hasRule(findings, dnalint::R4_IncludeHygiene));
    EXPECT_NE(findings[0].message.find("#pragma once"), std::string::npos);

    const std::string pragma = "#pragma once\nint x;\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.hh", pragma, emptyContext()),
                         dnalint::R4_IncludeHygiene));
    // Sources have no guard requirement.
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", "int x;\n", emptyContext()),
                         dnalint::R4_IncludeHygiene));
}

// ----------------------------------------------------- R5 seed audit

TEST(DnalintR5, FlagsAdHocRandomness)
{
    const std::string src = R"cpp(
        #include <random>
        std::mt19937 gen(std::random_device{}());
        long t = time(NULL);
    )cpp";
    const auto findings = checkFile("tests/x/y.cc", src, emptyContext());
    EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == dnalint::R5_SeedAudit;
                            }),
              3);
}

TEST(DnalintR5, RandomModuleAndLiteralsAreExempt)
{
    const std::string src = "std::mt19937 engine;\n";
    EXPECT_FALSE(hasRule(checkFile("src/util/random.hh", src, emptyContext()),
                         dnalint::R5_SeedAudit));
    // Identifier inside a string literal: stripped by the lexer.
    const std::string quoted = "const char *s = \"mt19937 rand\";\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", quoted, emptyContext()),
                         dnalint::R5_SeedAudit));
    // `random` (the project wrapper) is not a banned identifier.
    const std::string wrapper = "Strand random(Rng &rng, std::size_t n);\n";
    EXPECT_FALSE(hasRule(checkFile("src/x/y.cc", wrapper, emptyContext()),
                         dnalint::R5_SeedAudit));
}

// ------------------------------------------------------------- output

TEST(DnalintFormat, RendersPathLineRuleMessage)
{
    const Finding finding{"src/a.cc", 12, dnalint::R2_ThrowBoundary, "msg"};
    EXPECT_EQ(dnalint::format(finding), "src/a.cc:12: [R2] msg");
    const Finding project{"", 0, dnalint::R3_SelfContainment, "msg"};
    EXPECT_EQ(dnalint::format(project), "(project):0: [R3] msg");
}

} // namespace
